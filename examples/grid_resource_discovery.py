#!/usr/bin/env python3
"""Grid resource discovery (Section 3, Table 2) over a broker overlay.

Services announce the job profiles they can host through subscriptions;
jobs are published with their resource requirements and must reach every
fitting service.  The example runs the same workload over a 12-broker
random tree under the three covering policies and reports the traffic and
delivery metrics of each.

Run with::

    python examples/grid_resource_discovery.py [--services 120] [--jobs 200]
"""

import argparse

import numpy as np

from repro.broker import BrokerNetwork, CoveringPolicy, random_tree_topology
from repro.workloads import GridWorkload


def run_policy(policy, services, jobs, seed):
    """Build the overlay, register the services and publish the jobs."""
    network = BrokerNetwork(
        random_tree_topology(12, seed),
        policy=policy,
        delta=1e-6,
        max_iterations=300,
        rng=seed,
    )
    rng = np.random.default_rng(seed)
    broker_ids = network.broker_ids

    # Each service attaches to a random broker and announces its capability.
    for index, subscription in enumerate(services):
        service_id = subscription.subscriber or f"service-{index}"
        broker = broker_ids[int(rng.integers(0, len(broker_ids)))]
        network.attach_client(service_id, broker)
        network.subscribe(service_id, subscription)

    # Jobs are submitted at random brokers and routed to fitting services.
    for index, job in enumerate(jobs):
        client = f"gateway-{index % len(broker_ids)}"
        if client not in network.clients:
            network.attach_client(client, broker_ids[index % len(broker_ids)])
        network.publish(client, job)
    return network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--services", type=int, default=120)
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2006)
    arguments = parser.parse_args()

    workload = GridWorkload(rng=arguments.seed)
    services = workload.service_subscriptions(arguments.services)
    jobs = [
        workload.job_publication(job_id=f"job-{index}")
        for index in range(arguments.jobs // 2)
    ]
    # Half of the jobs are crafted to fit a specific service so that the
    # delivery paths are genuinely exercised.
    jobs += [
        workload.matching_job(services[index % len(services)], job_id=f"fit-{index}")
        for index in range(arguments.jobs - len(jobs))
    ]

    print(
        f"Grid resource discovery: {arguments.services} services, "
        f"{len(jobs)} jobs, 12-broker random tree\n"
    )
    header = (
        f"{'policy':<12}{'sub msgs':>10}{'suppressed':>12}{'pub msgs':>10}"
        f"{'notifications':>15}{'missed':>8}{'table entries':>15}"
    )
    print(header)
    print("-" * len(header))
    for policy in (CoveringPolicy.NONE, CoveringPolicy.PAIRWISE, CoveringPolicy.GROUP):
        # Fresh copies of the subscriptions so every run is independent.
        fresh = [
            subscription.replace(subscription_id=f"{subscription.id}-{policy.value}")
            for subscription in services
        ]
        network = run_policy(policy, fresh, jobs, arguments.seed)
        metrics = network.metrics
        print(
            f"{policy.value:<12}{metrics.subscription_messages:>10}"
            f"{metrics.suppressed_subscriptions:>12}{metrics.publication_messages:>10}"
            f"{metrics.notifications:>15}{metrics.missed_notifications:>8}"
            f"{network.total_routing_entries():>15}"
        )

    print(
        "\nThe covering policies cut the subscription traffic and the routing"
        "\nstate while delivering (essentially) the same notifications; the"
        "\ngroup policy additionally suppresses subscriptions that are only"
        "\ncovered by a *union* of service announcements."
    )


if __name__ == "__main__":
    main()
