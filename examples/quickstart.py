#!/usr/bin/env python3
"""Quickstart: probabilistic group-subsumption checking in a few lines.

The script reproduces the paper's worked example (Table 3 / Figure 2):
two subscriptions ``s1`` and ``s2`` jointly cover a third subscription
``s`` even though neither covers it alone.  The classical pair-wise check
therefore misses the redundancy, while the probabilistic pipeline —
conflict table, fast decisions, MCS reduction and the Monte Carlo RSPC —
detects it with a configurable error bound.

Run with::

    python examples/quickstart.py
"""

from repro import Schema, Subscription, SubsumptionChecker
from repro.core import ConflictTable, PairwiseCoverageChecker, exact_group_cover


def main() -> None:
    # 1. Define the attribute space: two integer attributes x1, x2.
    schema = Schema.uniform_integer(2, 0, 10_000, prefix="x")

    # 2. The existing subscriptions (already propagated through the system).
    s1 = Subscription.from_constraints(
        schema, {"x1": (820, 850), "x2": (1001, 1007)}, subscription_id="s1"
    )
    s2 = Subscription.from_constraints(
        schema, {"x1": (840, 880), "x2": (1002, 1009)}, subscription_id="s2"
    )

    # 3. A new subscription arrives.  Should it be propagated further?
    s = Subscription.from_constraints(
        schema, {"x1": (830, 870), "x2": (1003, 1006)}, subscription_id="s"
    )

    print("New subscription:")
    print(s.describe())
    print()

    # 4. The classical pair-wise check cannot see the joint cover.
    pairwise = PairwiseCoverageChecker.check(s, [s1, s2])
    print(f"pair-wise covered?        {pairwise.covered}")

    # 5. The conflict table (Definition 2) relates s to the negated simple
    #    predicates of s1 and s2 — this is Table 5 of the paper.
    table = ConflictTable(s, [s1, s2])
    print("\nConflict table (Table 5):")
    print(table.render())

    # 6. The probabilistic checker answers the *group* subsumption question.
    checker = SubsumptionChecker(delta=1e-9, rng=2006)
    result = checker.check(s, [s1, s2])
    print("\nProbabilistic group-subsumption check:")
    print(f"  answer             : {result.answer.value}")
    print(f"  decision method    : {result.method.value}")
    print(f"  rho_w estimate     : {result.rho_w:.4f}")
    print(f"  trials performed   : {result.iterations_performed}")
    print(f"  residual error     : {result.error_bound:.2e}")

    # 7. Cross-check against the exact (exponential-time) oracle.
    print(f"\nexact oracle agrees?      {exact_group_cover(s, [s1, s2]) == result.covered}")

    # 8. The practical consequence: s is redundant and need not be
    #    forwarded, saving subscription traffic and matching work.
    if result.covered:
        print("\n=> the new subscription is covered by the union of s1 and s2;")
        print("   a broker would NOT forward it to its neighbours.")


if __name__ == "__main__":
    main()
