#!/usr/bin/env python3
"""Bike-rental scenario (Section 3, Table 1) on a single matching node.

A fleet of rental posts publishes bicycle availability events; registered
users subscribe with their rental preferences (bike category, frame size,
brand, area, time window).  The example drives the full matching engine
(Algorithm 5) under the probabilistic *group* covering policy and compares
the size of the subscription set it has to keep active with the classical
pair-wise policy and plain flooding.

Run with::

    python examples/bike_rental_pubsub.py [--users 400] [--events 300]
"""

import argparse

from repro.core import SubsumptionChecker
from repro.core.store import CoveringPolicyName
from repro.matching import MatchingEngine
from repro.workloads import BikeRentalWorkload


def build_engines(seed: int) -> dict:
    """One matching engine per covering policy."""
    return {
        "flooding": MatchingEngine(policy=CoveringPolicyName.NONE),
        "pair-wise": MatchingEngine(policy=CoveringPolicyName.PAIRWISE),
        "group (probabilistic)": MatchingEngine(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, max_iterations=500, rng=seed),
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=400, help="number of subscribers")
    parser.add_argument("--events", type=int, default=300, help="number of publications")
    parser.add_argument("--seed", type=int, default=2006, help="random seed")
    arguments = parser.parse_args()

    workload = BikeRentalWorkload(rng=arguments.seed)
    subscriptions = workload.subscriptions(arguments.users)
    engines = build_engines(arguments.seed)

    print(f"Registering {arguments.users} user subscriptions "
          f"over schema {workload.schema.names} ...")
    for name, engine in engines.items():
        for subscription in subscriptions:
            engine.subscribe(
                subscription.replace(subscription_id=f"{subscription.id}-{name}")
            )

    print(f"\n{'policy':<24}{'active':>8}{'covered':>9}{'RSPC iterations':>17}")
    for name, engine in engines.items():
        stats = engine.store.stats
        print(
            f"{name:<24}{len(engine.active_subscriptions):>8}"
            f"{len(engine.covered_subscriptions):>9}"
            f"{int(stats['rspc_iterations']):>17}"
        )

    # Publish availability events: half purely random, half guaranteed to
    # interest someone (a post near a subscriber announcing a matching bike).
    print(f"\nPublishing {arguments.events} availability events ...")
    publications = []
    for index in range(arguments.events):
        if index % 2 == 0 or not subscriptions:
            publications.append(workload.publication(publisher=f"post-{index}"))
        else:
            target = subscriptions[index % len(subscriptions)]
            publications.append(
                workload.matching_publication(target, publisher=f"post-{index}")
            )

    reference_notifications = None
    print(f"\n{'policy':<24}{'notifications':>14}{'active tests':>14}{'covered tests':>15}")
    for name, engine in engines.items():
        notified = 0
        for publication in publications:
            notified += len(engine.match(publication).subscribers)
        if reference_notifications is None:
            reference_notifications = notified
        print(
            f"{name:<24}{notified:>14}{engine.stats['active_tests']:>14}"
            f"{engine.stats['covered_tests']:>15}"
        )

    print(
        "\nAll policies deliver the same notifications (the probabilistic one"
        "\nmay lose a vanishing fraction bounded by delta), while the covering"
        "\npolicies keep far fewer subscriptions in the active set — exactly"
        "\nthe trade-off the paper advocates for resource-scarce deployments."
    )


if __name__ == "__main__":
    main()
