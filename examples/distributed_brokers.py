#!/usr/bin/env python3
"""The Figure 1 walkthrough: reverse path forwarding with covering.

Reconstructs the 9-broker overlay of the paper's Figure 1, issues the two
subscriptions ``s1`` and ``s2 ⊑ s1`` and the two publications ``n1``/``n2``
and prints which brokers carried which message — showing how the covering
relationship prunes the subscription traffic while the delivery trees still
reach every interested subscriber.  It then quantifies the Proposition 5
trade-off: how likely a publication still finds its way when a
subscription is erroneously withheld (Eq. 2).

Run with::

    python examples/distributed_brokers.py
"""

from repro.broker import BrokerNetwork, CoveringPolicy
from repro.broker.chain import ChainModel
from repro.model import Publication, Schema, Subscription


def build_network(policy=CoveringPolicy.PAIRWISE) -> BrokerNetwork:
    """The Figure 1 topology (a tree of nine brokers)."""
    edges = [
        ("B1", "B3"),
        ("B2", "B3"),
        ("B3", "B4"),
        ("B4", "B5"),
        ("B4", "B6"),
        ("B4", "B7"),
        ("B7", "B8"),
        ("B7", "B9"),
    ]
    return BrokerNetwork(edges, policy=policy, rng=2006)


def main() -> None:
    schema = Schema.uniform_integer(2, 0, 100, prefix="x")
    network = build_network()

    network.attach_client("S1", "B1")
    network.attach_client("S2", "B6")
    network.attach_client("P1", "B9")
    network.attach_client("P2", "B5")

    s1 = Subscription.from_constraints(
        schema, {"x1": (0, 60), "x2": (0, 60)}, subscription_id="s1"
    )
    s2 = Subscription.from_constraints(
        schema, {"x1": (10, 20), "x2": (10, 20)}, subscription_id="s2"
    )

    print("Subscribing S1 -> s1 (flooded through the overlay)")
    network.subscribe("S1", s1)
    after_s1 = network.metrics.subscription_messages
    print(f"  subscription messages so far: {after_s1}")

    print("Subscribing S2 -> s2 with s2 ⊑ s1 (covering prunes the flood)")
    network.subscribe("S2", s2)
    print(
        f"  additional subscription messages: "
        f"{network.metrics.subscription_messages - after_s1} "
        f"(suppressed forwarding decisions: {network.metrics.suppressed_subscriptions})"
    )

    print("\nRouting tables after both subscriptions:")
    for broker_id, size in sorted(network.routing_table_sizes().items()):
        known = [e.subscription.id for e in network.brokers[broker_id].routing]
        print(f"  {broker_id}: {size} entries {known}")

    n1 = Publication.from_values(schema, {"x1": 15, "x2": 15}, publication_id="n1")
    n2 = Publication.from_values(schema, {"x1": 50, "x2": 50}, publication_id="n2")

    print("\nPublishing n1 at P1 (matches s2 and therefore s1):")
    for record in network.publish("P1", n1):
        print(f"  delivered to {record.subscriber} at {record.broker} "
              f"via {record.subscription_id}")

    print("Publishing n2 at P2 (matches s1 only):")
    for record in network.publish("P2", n2):
        print(f"  delivered to {record.subscriber} at {record.broker} "
              f"via {record.subscription_id}")

    summary = network.metrics.summary()
    print("\nNetwork metrics:")
    for key, value in summary.items():
        print(f"  {key}: {value}")

    # ------------------------------------------------------------------
    # Proposition 5: what if a covering decision was wrong?
    # ------------------------------------------------------------------
    print("\nProposition 5 / Eq. 2 — delivery probability after an erroneous")
    print("covering decision, along a chain of brokers (rho = publication")
    print("probability per broker, d = 50 RSPC trials):")
    print(f"  {'brokers':>8} {'rho=0.05':>10} {'rho=0.25':>10} {'rho=0.5':>10}")
    for brokers in (1, 2, 4, 8, 16, 32):
        row = [f"{brokers:>8}"]
        for rho in (0.05, 0.25, 0.5):
            model = ChainModel(rho=rho, rho_w=0.05, d=50, brokers=brokers)
            row.append(f"{model.delivery_probability():>10.4f}")
        print(" ".join(row))


if __name__ == "__main__":
    main()
