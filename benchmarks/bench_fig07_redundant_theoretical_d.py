"""Figure 7 — theoretical RSPC iterations d (redundant covering), ±MCS.

Paper result: without MCS the required d is astronomically large
(log10(d) grows with k and m); after the MCS reduction d becomes practical
and stabilises once k exceeds the number of simple predicates.
"""

import math

from conftest import paper_scale, report

from repro.experiments import RedundantCoveringConfig, run_redundant_covering


def _config() -> RedundantCoveringConfig:
    if paper_scale():
        return RedundantCoveringConfig.paper()
    return RedundantCoveringConfig()


def test_fig07_theoretical_iterations(benchmark):
    """Regenerate the Figure 7 series (log10 d with and without MCS)."""
    results = benchmark.pedantic(
        run_redundant_covering, args=(_config(),), rounds=1, iterations=1
    )
    fig7 = results["fig7"]
    report(fig7)
    config = _config()
    for m in config.m_values:
        plain = fig7.column(f"m={m}")
        reduced = fig7.column(f"m={m};MCS")
        # MCS never increases the required number of trials.
        assert all(r <= p + 1e-9 for p, r in zip(plain, reduced))
        # Without MCS the largest instances need astronomically many trials,
        # with MCS they stay within a practical budget (paper's key message).
        finite_plain = [v for v in plain if math.isfinite(v)]
        finite_reduced = [v for v in reduced if math.isfinite(v)]
        assert max(finite_plain) > max(finite_reduced)
