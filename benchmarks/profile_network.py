#!/usr/bin/env python
"""Per-stage profiling of the network-vs-engine throughput gap.

``BENCH_5.json`` records the gap this harness explains: the network
backend runs ``t2-burst`` at roughly 1/6th of the engine backend's
event rate.  This script runs the same compiled scenario on both
backends with an :class:`~repro.obs.probes.ObsProbe` attached, collects
the wall-clock *self-time* of every instrumented stage (nested stages
subtract their children, so the totals add up), and attributes the
wall-clock gap to the stages only the network backend executes —
ranked, printed as a table and written to ``BENCH_7.json`` with the
top-3 named explicitly.

Usage::

    PYTHONPATH=src python benchmarks/profile_network.py            # t2-burst
    PYTHONPATH=src python benchmarks/profile_network.py --quick    # t0-smoke CI smoke
    PYTHONPATH=src python benchmarks/profile_network.py --artifacts DIR

``--quick`` profiles the small ``t0-smoke`` scenario instead and skips
the BENCH file (CI uses it as a smoke check).  In every mode the
harness also runs one span-enabled pass, asserts the span JSONL export
round-trips losslessly, and (with ``--artifacts``) leaves the span file
and its rendered report behind for artifact upload.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.probes import ObsProbe
from repro.obs.report import render_report, summarize
from repro.obs.spans import SpanRecorder, read_spans, write_spans
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.events import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.utils.provenance import provenance
from repro.utils.tables import render_table

#: stages that exist only on the network backend; their summed self-time
#: is the instrumented explanation of the network-vs-engine gap
#: (``shard.`` covers the sharded oracle's dispatch/collect phases)
_NETWORK_STAGE_PREFIXES = ("network.", "broker.", "kernel.", "shard.")


def profile_backend(
    scenario: str, seed: int, backend: str, shards: int = 0
) -> Tuple[Any, ObsProbe]:
    """One probe-attached run; returns (report, probe with stage totals)."""
    spec = get_scenario(scenario)
    compiled = compile_scenario(spec, seed)
    probe = ObsProbe()  # registry + stage timers, no span churn
    runner = ScenarioRunner(
        spec, seed=seed, backend=backend, obs=probe, shards=shards
    )
    report = runner.run(compiled)
    probe.flush_stages_to_registry()
    return report, probe


def span_roundtrip_check(
    scenario: str, seed: int, artifacts: Optional[Path]
) -> Dict[str, Any]:
    """Span-enabled run; asserts the JSONL export round-trips losslessly."""
    spec = get_scenario(scenario)
    compiled = compile_scenario(spec, seed)
    recorder = SpanRecorder()
    probe = ObsProbe(spans=recorder)
    ScenarioRunner(spec, seed=seed, backend="network", obs=probe).run(compiled)

    out_dir = artifacts if artifacts is not None else Path("/tmp")
    out_dir.mkdir(parents=True, exist_ok=True)
    span_path = out_dir / f"{scenario}-spans.jsonl"
    written = write_spans(span_path, recorder)
    loaded = read_spans(span_path)
    assert written == len(recorder.spans), "span count drifted on export"
    assert [s.to_dict() for s in loaded.spans] == [
        s.to_dict() for s in recorder.spans
    ], "span JSONL export does not round-trip"
    assert loaded.queue_samples == [
        (float(t), link, depth) for t, link, depth in recorder.queue_samples
    ], "queue samples do not round-trip"

    summary = summarize(loaded)
    if artifacts is not None:
        (out_dir / f"{scenario}-spans.report.txt").write_text(
            render_report(loaded) + "\n"
        )
    else:
        span_path.unlink(missing_ok=True)
    return {
        "spans": summary["spans"],
        "traces": summary["traces"],
        "chain_status": summary["chain_status"],
    }


def _stage_rows(probe: ObsProbe) -> List[Dict[str, Any]]:
    return [
        {"stage": stage, "seconds": seconds, "calls": calls}
        for stage, seconds, calls in probe.stage_totals()
    ]


def attribute_gap(
    network_report,
    network_probe: ObsProbe,
    engine_report,
    engine_probe: ObsProbe,
) -> Dict[str, Any]:
    """Explain the wall-clock gap with the instrumented stage self-times.

    The network backend's stages are not pure overhead: route lookups,
    match-and-forward and the oracle redo work the engine backend also
    performs (inside ``engine.match``/``engine.subscribe``/…).  Summing
    the gross network stage time against the *gap* therefore counted
    that shared work twice and produced attribution fractions above
    100%.  Subtracting the engine's instrumented self-time cancels the
    shared work, so ``gap_attributed_seconds`` is the instrumented
    *extra* cost of running the overlay and its fraction of the gap
    stays ≤ 1 (up to scheduler noise in the uninstrumented slack).
    Per-stage shares are reported against the network backend's total
    instrumented time, so they always sum to at most 100%.
    """
    gap = network_report.wall_time - engine_report.wall_time
    network_only = [
        (stage, seconds, calls)
        for stage, seconds, calls in network_probe.stage_totals()
        if stage.startswith(_NETWORK_STAGE_PREFIXES)
    ]
    network_instrumented = sum(seconds for _, seconds, _ in network_only)
    engine_instrumented = sum(
        seconds for _, seconds, _ in engine_probe.stage_totals()
    )
    attributed = max(network_instrumented - engine_instrumented, 0.0)
    top = [
        {
            "stage": stage,
            "seconds": round(seconds, 6),
            "calls": calls,
            "share_of_network_time": round(seconds / network_instrumented, 4)
            if network_instrumented > 0
            else 0.0,
        }
        for stage, seconds, calls in network_only[:3]
    ]
    return {
        "network_wall_time": round(network_report.wall_time, 6),
        "engine_wall_time": round(engine_report.wall_time, 6),
        "network_events_per_second": round(network_report.events_per_second, 1),
        "engine_events_per_second": round(engine_report.events_per_second, 1),
        "slowdown": round(
            network_report.wall_time / engine_report.wall_time, 2
        )
        if engine_report.wall_time > 0
        else 0.0,
        "wall_gap_seconds": round(gap, 6),
        "network_instrumented_seconds": round(network_instrumented, 6),
        "engine_instrumented_seconds": round(engine_instrumented, 6),
        "gap_attributed_seconds": round(attributed, 6),
        "gap_attributed_fraction": round(attributed / gap, 4)
        if gap > 0
        else 0.0,
        "top_costs": top,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Attribute the network-vs-engine throughput gap per stage."
    )
    parser.add_argument(
        "--scenario",
        default="t2-burst",
        help="scenario to profile (default: t2-burst, the BENCH gap case)",
    )
    parser.add_argument("--seed", type=int, default=7, help="run seed")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: profile t0-smoke, skip the BENCH file",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_7.json"),
        metavar="PATH",
        help="machine-readable profile destination (default: BENCH_7.json)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="also write the span JSONL and its rendered report here",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="profile with N shard worker processes (0 = single-process); "
             "the coordinator's dispatch/collect show up as shard.* stages",
    )
    arguments = parser.parse_args(argv)

    scenario = "t0-smoke" if arguments.quick else arguments.scenario
    artifacts = Path(arguments.artifacts) if arguments.artifacts else None

    shard_note = f", shards={arguments.shards}" if arguments.shards else ""
    print(
        f"profiling {scenario} (seed {arguments.seed}{shard_note}) "
        "on both backends…"
    )
    engine_report, engine_probe = profile_backend(
        scenario, arguments.seed, "engine", shards=arguments.shards
    )
    network_report, network_probe = profile_backend(
        scenario, arguments.seed, "network", shards=arguments.shards
    )
    if engine_report.trace_hash != network_report.trace_hash:
        raise AssertionError("backends profiled different compiled scenarios")

    gap = attribute_gap(
        network_report, network_probe, engine_report, engine_probe
    )

    print(
        f"\nengine : {engine_report.wall_time * 1000:8.1f} ms "
        f"({engine_report.events_per_second:,.0f} events/s)"
    )
    print(
        f"network: {network_report.wall_time * 1000:8.1f} ms "
        f"({network_report.events_per_second:,.0f} events/s)"
        f" — {gap['slowdown']}x slower"
    )
    print(
        f"gap    : {gap['wall_gap_seconds'] * 1000:8.1f} ms, "
        f"{gap['gap_attributed_fraction'] * 100:.1f}% attributed to "
        f"network-only stages\n"
    )

    rows = []
    instrumented = gap["network_instrumented_seconds"]
    for entry in _stage_rows(network_probe):
        share = entry["seconds"] / instrumented if instrumented > 0 else 0.0
        rows.append(
            [
                entry["stage"],
                f"{entry['seconds'] * 1000:.2f}",
                str(entry["calls"]),
                f"{share * 100:.1f}%",
            ]
        )
    print("network backend, ranked by self-time:")
    print(
        render_table(
            ("stage", "self ms", "calls", "share of net"),
            rows,
            right_align_from=1,
        )
    )

    top_names = ", ".join(cost["stage"] for cost in gap["top_costs"])
    print(f"\ntop-3 costs behind the gap: {top_names}")

    roundtrip = span_roundtrip_check("t0-smoke", arguments.seed, artifacts)
    print(
        f"span export round-trip OK: {roundtrip['spans']} spans / "
        f"{roundtrip['traces']} traces ({roundtrip['chain_status']})"
    )

    if arguments.shards:
        # Sharded profiles are interactive diagnostics; never overwrite
        # the committed single-process baseline the perf gates compare to.
        print("[--shards set: BENCH file not written]")
        return 0
    if not arguments.quick:
        payload = {
            "schema": 1,
            "provenance": provenance(cwd=str(REPO_ROOT)),
            f"profile:{scenario}": {
                "seed": arguments.seed,
                **gap,
                "network_stages": [
                    {**row, "seconds": round(row["seconds"], 6)}
                    for row in _stage_rows(network_probe)
                ],
                "engine_stages": [
                    {**row, "seconds": round(row["seconds"], 6)}
                    for row in _stage_rows(engine_probe)
                ],
                "span_roundtrip": roundtrip,
            },
        }
        Path(arguments.output).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"profile written to {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
