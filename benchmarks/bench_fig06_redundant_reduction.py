"""Figure 6 — MCS reduction of redundant subscriptions (redundant covering).

Paper result: the MCS algorithm removes 80–100 % of the redundant
subscriptions, with higher attribute counts reduced more aggressively.
"""

from conftest import paper_scale, report

from repro.experiments import RedundantCoveringConfig, run_redundant_covering


def _config() -> RedundantCoveringConfig:
    if paper_scale():
        return RedundantCoveringConfig.paper()
    return RedundantCoveringConfig()


def test_fig06_redundant_covering_reduction(benchmark):
    """Regenerate the Figure 6 series and check the paper's headline shape."""
    results = benchmark.pedantic(
        run_redundant_covering, args=(_config(),), rounds=1, iterations=1
    )
    fig6 = results["fig6"]
    report(fig6)
    # Shape check: the reduction stays in the high band reported by the paper.
    for series in fig6.series.values():
        assert all(0.5 <= value <= 1.0 for value in series.values)
    # Higher m never reduces less on average (the paper's ordering).
    averages = {
        name: sum(series.values) / len(series.values)
        for name, series in fig6.series.items()
    }
    names = sorted(averages)
    assert averages[names[-1]] >= averages[names[0]] - 0.1
