"""Perf-smoke check for CI: a tiny arena-pipeline benchmark with a
generous regression threshold.

Measures, on the same representative instance as ``bench_micro_core.py``
(k = 200, m = 15, 500 capped RSPC guesses), the p50 of the end-to-end
``SubsumptionChecker.check`` through the arena path, plus the events/sec
of the ``t2-burst`` scenario on the engine backend, and compares both
against the committed ``BENCH_5.json``.  The threshold is deliberately
loose (default 5x) — CI runners are slow and noisy; the step exists to
catch order-of-magnitude regressions (an accidentally de-vectorised
stage, a quadratic rebuild), not percent-level drift.

Usage::

    python benchmarks/perf_smoke.py [--baseline BENCH_5.json]
                                    [--factor 5.0] [--output smoke.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def _measure_check_p50_ns(repeats: int = 40) -> float:
    from repro.core.arena import CandidateSet
    from repro.core.subsumption import SubsumptionChecker
    from repro.model import Schema
    from repro.workloads.scenarios import redundant_covering_scenario

    schema = Schema.uniform_integer(15, 0, 10_000)
    instance = redundant_covering_scenario(schema, 200, 20060331)
    checker = SubsumptionChecker(delta=1e-6, max_iterations=500, rng=20060331)
    snapshot = CandidateSet(instance.candidates)
    for _ in range(5):  # warm-up
        checker.check(instance.subscription, snapshot)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        checker.check(instance.subscription, snapshot)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2] * 1e9


def _measure_scenario_eps(rounds: int = 2) -> float:
    from repro.scenarios import ScenarioRunner, compile_scenario, get_scenario

    compiled = compile_scenario(get_scenario("t2-burst"), seed=20060331)
    best = 0.0
    for _ in range(rounds):
        report = ScenarioRunner(backend="engine").run(compiled)
        best = max(best, report.events_per_second)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_5.json"),
        help="committed benchmark results to compare against",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=5.0,
        help="maximum tolerated slow-down vs the baseline (>= 5x recommended)",
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the measured numbers"
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())["results"]
    for op in ("check:arena", "scenario:t2-burst:engine"):
        if baseline.get(op, {}).get("paper_scale"):
            print(
                f"perf-smoke: baseline entry {op!r} was recorded at paper "
                "scale; refusing to compare against a small-scale run",
                file=sys.stderr,
            )
            return 1
    check_p50_ns = _measure_check_p50_ns()
    scenario_eps = _measure_scenario_eps()

    measured = {
        "check:arena": {"p50_ns": round(check_p50_ns)},
        "scenario:t2-burst:engine": {
            "events_per_second": round(scenario_eps, 1)
        },
    }
    if args.output:
        Path(args.output).write_text(json.dumps(measured, indent=1) + "\n")

    failures = []
    base_check = baseline["check:arena"]["p50_ns"]
    if check_p50_ns > base_check * args.factor:
        failures.append(
            f"check:arena p50 {check_p50_ns:,.0f} ns vs baseline "
            f"{base_check:,} ns (allowed {args.factor}x)"
        )
    base_eps = baseline["scenario:t2-burst:engine"]["events_per_second"]
    if scenario_eps < base_eps / args.factor:
        failures.append(
            f"t2-burst engine {scenario_eps:,.1f} events/s vs baseline "
            f"{base_eps:,} events/s (allowed {args.factor}x slow-down)"
        )

    print(
        f"perf-smoke: check:arena p50 {check_p50_ns:,.0f} ns "
        f"(baseline {base_check:,} ns), t2-burst engine "
        f"{scenario_eps:,.1f} events/s (baseline {base_eps:,} events/s)"
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke: within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
