"""Perf-smoke check for CI: tiny benchmarks with generous regression
thresholds.

Three gates, all deliberately loose — CI runners are slow and noisy; the
step exists to catch order-of-magnitude regressions (an accidentally
de-vectorised stage, a quadratic rebuild), not percent-level drift:

* ``check:arena`` — p50 of the end-to-end ``SubsumptionChecker.check``
  through the arena path on the ``bench_micro_core.py`` instance
  (k = 200, m = 15, 500 capped RSPC guesses), compared against the
  committed ``BENCH_5.json`` micro baseline.
* ``scenario:t2-burst:engine`` — events/sec of the ``t2-burst`` scenario
  on the engine backend, compared against the profiled run committed in
  ``BENCH_7.json``.
* ``ratio:t2-burst`` — the network-to-engine slowdown on ``t2-burst``,
  compared against the ``slowdown`` recorded in ``BENCH_7.json``.  The
  committed ratio is ~4.8x, not the 2x once hoped for: the golden traces
  pin ``subsumption_checks`` and ``rspc_iterations`` byte-for-byte, so
  the network backend must execute every probabilistic covering decision
  the paper's protocol demands — decision cost can be optimised but not
  skipped.  The gate therefore guards the *measured* ratio against
  regression (default 2x headroom, covering shared-runner noise)
  rather than enforcing an unreachable target.
* ``shard:t2-burst`` — the sharded-oracle overhead: the same scenario on
  the network backend with ``shards=2`` must stay within
  ``--shard-factor`` (default 0.75x) of the single-process run.  The
  sharded oracle's answers are byte-identical; this gate only bounds the
  dispatch/pickle overhead of pushing the oracle into worker processes
  (measured ~0.88x on a 1-core runner — the default leaves noise room).

Usage::

    python benchmarks/perf_smoke.py [--baseline BENCH_7.json]
                                    [--micro-baseline BENCH_5.json]
                                    [--factor 5.0] [--ratio-factor 2.0]
                                    [--shard-factor 0.75]
                                    [--output smoke.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _measure_check_p50_ns(repeats: int = 40) -> float:
    from repro.core.arena import CandidateSet
    from repro.core.subsumption import SubsumptionChecker
    from repro.model import Schema
    from repro.workloads.scenarios import redundant_covering_scenario

    schema = Schema.uniform_integer(15, 0, 10_000)
    instance = redundant_covering_scenario(schema, 200, 20060331)
    checker = SubsumptionChecker(delta=1e-6, max_iterations=500, rng=20060331)
    snapshot = CandidateSet(instance.candidates)
    for _ in range(5):  # warm-up
        checker.check(instance.subscription, snapshot)
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        checker.check(instance.subscription, snapshot)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2] * 1e9


def _measure_scenario_eps(
    backend: str, rounds: int = 2, shards: int = 0
) -> float:
    from repro.scenarios import ScenarioRunner, compile_scenario, get_scenario

    compiled = compile_scenario(get_scenario("t2-burst"), seed=20060331)
    best = 0.0
    for _ in range(rounds):
        report = ScenarioRunner(backend=backend, shards=shards).run(compiled)
        best = max(best, report.events_per_second)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_7.json"),
        help="committed profile (BENCH_7.json) for the scenario/ratio gates",
    )
    parser.add_argument(
        "--micro-baseline",
        default=str(REPO_ROOT / "BENCH_5.json"),
        help="committed micro-benchmark results for the check:arena gate",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=5.0,
        help="maximum tolerated slow-down vs the baseline (>= 5x recommended)",
    )
    parser.add_argument(
        "--ratio-factor",
        type=float,
        default=2.0,
        help="headroom on the committed network-to-engine slowdown "
        "(single-run ratios swing ~5.5-9x on loaded runners)",
    )
    parser.add_argument(
        "--shard-factor",
        type=float,
        default=0.75,
        help="minimum tolerated sharded/single-process throughput ratio on "
        "the network backend (issue target is 0.9x best-of-N on an idle "
        "machine; the default leaves room for loaded 1-core runners)",
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the measured numbers"
    )
    args = parser.parse_args(argv)

    micro = json.loads(Path(args.micro_baseline).read_text())["results"]
    if micro.get("check:arena", {}).get("paper_scale"):
        print(
            "perf-smoke: baseline entry 'check:arena' was recorded at paper "
            "scale; refusing to compare against a small-scale run",
            file=sys.stderr,
        )
        return 1
    profile = json.loads(Path(args.baseline).read_text())["profile:t2-burst"]

    check_p50_ns = _measure_check_p50_ns()
    engine_eps = _measure_scenario_eps("engine")
    network_eps = _measure_scenario_eps("network")
    sharded_eps = _measure_scenario_eps("network", shards=2)
    ratio = engine_eps / network_eps if network_eps > 0 else float("inf")
    shard_ratio = sharded_eps / network_eps if network_eps > 0 else 0.0

    measured = {
        "check:arena": {"p50_ns": round(check_p50_ns)},
        "scenario:t2-burst:engine": {"events_per_second": round(engine_eps, 1)},
        "scenario:t2-burst:network": {
            "events_per_second": round(network_eps, 1)
        },
        "scenario:t2-burst:network:shards=2": {
            "events_per_second": round(sharded_eps, 1)
        },
        "ratio:t2-burst": {"network_to_engine": round(ratio, 2)},
        "shard:t2-burst": {"sharded_to_single": round(shard_ratio, 3)},
    }
    if args.output:
        Path(args.output).write_text(json.dumps(measured, indent=1) + "\n")

    failures = []
    base_check = micro["check:arena"]["p50_ns"]
    if check_p50_ns > base_check * args.factor:
        failures.append(
            f"check:arena p50 {check_p50_ns:,.0f} ns vs baseline "
            f"{base_check:,} ns (allowed {args.factor}x)"
        )
    base_eps = profile["engine_events_per_second"]
    if engine_eps < base_eps / args.factor:
        failures.append(
            f"t2-burst engine {engine_eps:,.1f} events/s vs baseline "
            f"{base_eps:,} events/s (allowed {args.factor}x slow-down)"
        )
    base_ratio = profile["slowdown"]
    allowed_ratio = base_ratio * args.ratio_factor
    if ratio > allowed_ratio:
        failures.append(
            f"t2-burst network-to-engine ratio {ratio:.2f}x vs committed "
            f"{base_ratio}x (allowed {allowed_ratio:.2f}x)"
        )
    if shard_ratio < args.shard_factor:
        failures.append(
            f"t2-burst shards=2 {sharded_eps:,.1f} events/s is "
            f"{shard_ratio:.3f}x of single-process {network_eps:,.1f} "
            f"events/s (required >= {args.shard_factor}x)"
        )

    print(
        f"perf-smoke: check:arena p50 {check_p50_ns:,.0f} ns "
        f"(baseline {base_check:,} ns), t2-burst engine "
        f"{engine_eps:,.1f} events/s (baseline {base_eps:,} events/s), "
        f"network/engine {ratio:.2f}x (baseline {base_ratio}x, "
        f"allowed {allowed_ratio:.2f}x), shards=2/single "
        f"{shard_ratio:.3f}x (required >= {args.shard_factor}x)"
    )
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke: within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
