"""Figure 13 — active subscription set growth, pair-wise vs group coverage.

Paper result: on a popularity-skewed subscription stream the group
coverage keeps the active set substantially smaller than the classical
pair-wise coverage for every m, and the absolute set size grows with m
(higher-dimensional subscriptions are covered less often).
"""

from conftest import paper_scale, report

from repro.experiments import ComparisonConfig, run_comparison


def _config() -> ComparisonConfig:
    if paper_scale():
        return ComparisonConfig.paper()
    return ComparisonConfig()


def test_fig13_subscription_set_growth(benchmark):
    """Regenerate the Figure 13 series."""
    results = benchmark.pedantic(run_comparison, args=(_config(),), rounds=1, iterations=1)
    fig13 = results["fig13"]
    report(fig13)
    config = _config()
    for m in config.m_values:
        pairwise = fig13.column(f"m={m}, pair-wise")
        group = fig13.column(f"m={m}, group")
        # Group covering never keeps more active subscriptions than pair-wise.
        assert all(g <= p + 1e-9 for g, p in zip(group, pairwise))
        # Both policies reduce the stream below flooding (the raw count).
        assert pairwise[-1] < config.total_subscriptions
