"""Figure 12 — false decisions vs gap size (extreme non cover).

Paper result: the number of erroneous "covered" verdicts (lost
subscriptions) grows with the configured error probability and shrinks as
the uncovered gap widens; for error probabilities below 1e-6 and gaps
larger than ~1–2 % the algorithm is always right.
"""

from conftest import paper_scale, report

from repro.experiments import ExtremeNonCoverConfig, run_extreme_non_cover


def _config() -> ExtremeNonCoverConfig:
    if paper_scale():
        return ExtremeNonCoverConfig.paper()
    return ExtremeNonCoverConfig()


def test_fig12_extreme_noncover_false_decisions(benchmark):
    """Regenerate the Figure 12 series."""
    results = benchmark.pedantic(
        run_extreme_non_cover, args=(_config(),), rounds=1, iterations=1
    )
    fig12 = results["fig12"]
    report(fig12)
    config = _config()
    for delta in config.deltas:
        series = fig12.column(f"error={delta:g}")
        # False decisions never increase as the gap widens.
        assert series[0] >= series[-1]
        # The widest gap is (nearly) error free.
        assert series[-1] <= max(0.02 * config.runs_per_point, 1)
    # Lower error probability never produces more false decisions in total.
    totals = {
        delta: sum(fig12.column(f"error={delta:g}")) for delta in config.deltas
    }
    ordered = sorted(config.deltas)  # ascending delta = stricter first
    assert totals[ordered[0]] <= totals[ordered[-1]] + 1
