"""Figure 9 — theoretical RSPC iterations d (non cover), ±MCS.

Paper result: the theoretical d collapses after the MCS reduction — most
of the time the reduced set is empty, so no probabilistic trials are
needed at all.
"""

import math

from conftest import paper_scale, report

from repro.experiments import NonCoverConfig, run_non_cover


def _config() -> NonCoverConfig:
    if paper_scale():
        return NonCoverConfig.paper()
    return NonCoverConfig()


def test_fig09_noncover_theoretical_d(benchmark):
    """Regenerate the Figure 9 series."""
    results = benchmark.pedantic(run_non_cover, args=(_config(),), rounds=1, iterations=1)
    fig9 = results["fig9"]
    report(fig9)
    config = _config()
    for m in config.m_values:
        plain = fig9.column(f"m={m}")
        reduced = fig9.column(f"m={m};MCS")
        assert all(r <= p + 1e-9 for p, r in zip(plain, reduced))
        # After MCS the remaining theoretical budget is tiny (near zero).
        finite_reduced = [v for v in reduced if math.isfinite(v)]
        assert max(finite_reduced) <= 3.0
