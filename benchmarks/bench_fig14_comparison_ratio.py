"""Figure 14 — group/pair-wise active-set size ratio.

Paper result: the ratio starts around 0.7–0.8 after 1000 subscriptions and
keeps decreasing (group coverage filters relatively more as the stream
grows), with larger m giving ratios closer to 1.
"""

from conftest import paper_scale, report

from repro.experiments import ComparisonConfig, run_comparison


def _config() -> ComparisonConfig:
    if paper_scale():
        return ComparisonConfig.paper()
    return ComparisonConfig()


def test_fig14_group_to_pairwise_ratio(benchmark):
    """Regenerate the Figure 14 series."""
    results = benchmark.pedantic(run_comparison, args=(_config(),), rounds=1, iterations=1)
    fig14 = results["fig14"]
    report(fig14)
    config = _config()
    for m in config.m_values:
        ratios = fig14.column(f"m={m}")
        # The ratio is a genuine reduction (≤ 1) at every checkpoint...
        assert all(ratio <= 1.0 + 1e-9 for ratio in ratios)
        # ...and the reduction at the end of the stream is real (< 1).
        assert ratios[-1] < 1.0
        # The trend is downward: the final ratio does not exceed the first.
        assert ratios[-1] <= ratios[0] + 0.05
