"""Figure 10 — actual RSPC iterations performed (non cover), ±MCS.

Paper result: the average number of guesses actually performed is below
0.5 with MCS (the reduced set is usually empty) and stays very small even
without MCS because a point witness is found almost immediately — far
below the theoretical d of Figure 9.
"""

from conftest import paper_scale, report

from repro.experiments import NonCoverConfig, run_non_cover


def _config() -> NonCoverConfig:
    if paper_scale():
        return NonCoverConfig.paper()
    return NonCoverConfig()


def test_fig10_noncover_actual_iterations(benchmark):
    """Regenerate the Figure 10 series."""
    results = benchmark.pedantic(run_non_cover, args=(_config(),), rounds=1, iterations=1)
    fig10 = results["fig10"]
    report(fig10)
    config = _config()
    for m in config.m_values:
        with_mcs = fig10.column(f"m={m};MCS")
        without_mcs = fig10.column(f"m={m}")
        # With MCS the probabilistic stage is almost never needed.
        assert all(value <= 1.0 for value in with_mcs)
        # Even without MCS a handful of guesses suffices on average.
        assert all(value <= 50.0 for value in without_mcs)
