"""Throughput and behaviour of the virtual-time network kernel.

Runs a scaled ``t2-burst`` workload through the broker overlay under each
latency model and prints events/sec plus the kernel's latency percentiles
and queue-depth high-water marks, so PRs touching the scheduler, the
latency models or the message pump can catch both throughput regressions
and accidental changes in the simulated timing behaviour.  A separate
benchmark measures how much traffic egress batching saves on a burst
crossing a single link.

Set ``REPRO_PAPER=1`` to run the unscaled ``t2-burst`` tier.
"""

import dataclasses

import pytest

from conftest import paper_scale

from repro.broker import BrokerNetwork, CoveringPolicy, line_topology
from repro.model import Publication, Schema, Subscription
from repro.scenarios import ScenarioRunner, compile_scenario, get_scenario

SEED = 20060331

LATENCY_MODELS = ("zero", "fixed:0.5", "lognormal:0.0,0.5")


def _spec():
    spec = get_scenario("t2-burst")
    if paper_scale():
        return spec
    # Laptop scale: shrink every phase to ~1/3 of the tier's volume.
    phases = [
        dataclasses.replace(
            phase,
            params={
                key: (max(value // 3, 10) if isinstance(value, int) else value)
                for key, value in phase.params.items()
            },
        )
        for phase in spec.phases
    ]
    return dataclasses.replace(spec, phases=phases)


@pytest.fixture(scope="module")
def compiled():
    """The benchmark workload compiled once, shared by all models."""
    return compile_scenario(_spec(), seed=SEED)


@pytest.mark.parametrize("latency_model", LATENCY_MODELS)
def test_kernel_throughput_per_latency_model(benchmark, compiled, latency_model):
    """Events/sec of the overlay under each latency model."""
    report = benchmark.pedantic(
        lambda: ScenarioRunner(
            backend="network", latency_model=latency_model
        ).run(compiled),
        rounds=3,
        iterations=1,
    )
    assert report.event_count == compiled.event_count
    line = (
        f"\n{compiled.spec.name} [{latency_model}]: "
        f"{report.event_count} events, "
        f"{report.events_per_second:,.0f} events/s"
    )
    if latency_model != "zero":
        line += (
            f", p50 {report.totals['delivery_latency_p50']:.3f}, "
            f"p95 {report.totals['delivery_latency_p95']:.3f}, "
            f"queue high-water {report.totals['queue_depth_high_water']}"
        )
    print(line)


@pytest.mark.parametrize("batch_size", (1, 8, 64))
def test_egress_batching_traffic(benchmark, batch_size):
    """Message hops saved by egress batching on a single-link burst."""
    schema = Schema.uniform_integer(4, 0, 10_000)
    burst_size = 2_000 if paper_scale() else 500
    burst = [
        Publication.from_values(
            schema,
            {f"x{index % 4 + 1}": float(index % 10_000) for index in range(4)},
            publication_id=f"p{index}",
        )
        for index in range(burst_size)
    ]

    def run():
        network = BrokerNetwork(
            line_topology(2),
            policy=CoveringPolicy.NONE,
            batch_size=batch_size,
        )
        network.attach_client("sub", "B1")
        network.attach_client("pub", "B2")
        network.subscribe(
            "sub", Subscription.whole_space(schema, subscription_id="all")
        )
        network.publish_batch("pub", burst)
        return network

    network = benchmark.pedantic(run, rounds=3, iterations=1)
    metrics = network.metrics
    assert metrics.notifications == burst_size
    assert metrics.missed == []
    expected_hops = -(-burst_size // batch_size)  # ceil division
    assert metrics.publication_messages == expected_hops
    print(
        f"\nbatch_size={batch_size}: {burst_size} publications in "
        f"{metrics.publication_messages} hops "
        f"({burst_size / metrics.publication_messages:.0f}x coalescing)"
    )
