"""Figure 8 — MCS reduction of redundant subscriptions (non cover).

Paper result: in the non-cover scenario the MCS reduction removes
essentially the whole candidate set (88–100 %), even more aggressively
than in the redundant covering scenario.
"""

from conftest import paper_scale, report

from repro.experiments import NonCoverConfig, run_non_cover


def _config() -> NonCoverConfig:
    if paper_scale():
        return NonCoverConfig.paper()
    return NonCoverConfig()


def test_fig08_noncover_reduction(benchmark):
    """Regenerate the Figure 8 series."""
    results = benchmark.pedantic(run_non_cover, args=(_config(),), rounds=1, iterations=1)
    fig8 = results["fig8"]
    report(fig8)
    for series in fig8.series.values():
        assert all(value >= 0.8 for value in series.values)
