"""Publications/sec per matcher backend on the t2-burst scenario tier.

Scales ``t2-burst`` to the matcher-stress size (>= 5k live subscriptions
under ``none``-policy flooding, so every subscription stays active and
the matcher backends carry the whole load), then measures how many
publications per second the engine runner pushes through each backend —
``linear`` (the seed scan), ``counting`` and ``selectivity`` (vectorised)
— plus the batched ``match_batch`` path that amortises array setup across
a burst.

Emits the same JSON shape as ``bench_scenario_runner.py`` (pytest-benchmark
entries plus a printed summary per backend).  Set ``REPRO_PAPER=1`` to
double the subscription load.
"""

import dataclasses
import time

import pytest

from conftest import paper_scale

from repro.matching.backends import BACKEND_NAMES
from repro.matching.engine import MatchingEngine
from repro.scenarios import (
    PhaseKind,
    PhaseSpec,
    ScenarioRunner,
    compile_scenario,
    get_scenario,
)

SEED = 20060331


def _scaled_spec():
    """``t2-burst`` rescaled so the matcher, not the churn, is the load."""
    subscriptions = 10_000 if paper_scale() else 5_000
    publications = 600 if paper_scale() else 300
    return dataclasses.replace(
        get_scenario("t2-burst"),
        name="t2-burst-matcher",
        description="t2-burst scaled to the matcher-backend stress size.",
        policy="none",
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": subscriptions}),
            PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": publications}),
        ],
    )


@pytest.fixture(scope="module")
def compiled():
    """The scaled tier compiled once, shared by every backend."""
    return compile_scenario(_scaled_spec(), seed=SEED)


def _publications_per_second(report):
    burst = next(phase for phase in report.phases if phase.name == "burst")
    if burst.wall_time <= 0:
        return 0.0
    return burst.publishes / burst.wall_time


@pytest.mark.parametrize("engine_backend", BACKEND_NAMES)
def test_matcher_backend_throughput(benchmark, compiled, engine_backend):
    """Publications/sec of the engine runner per matcher backend."""
    report = benchmark.pedantic(
        lambda: ScenarioRunner(
            backend="engine", engine_backend=engine_backend
        ).run(compiled),
        rounds=2,
        iterations=1,
    )
    assert report.event_count == compiled.event_count
    assert report.engine_backend == engine_backend
    subscriptions = sum(
        1 for event in compiled.events if event.subscription is not None
    )
    print(
        f"\n{compiled.spec.name} ({engine_backend}): "
        f"{subscriptions} subscriptions, "
        f"{_publications_per_second(report):,.0f} publications/s"
    )


@pytest.mark.parametrize("engine_backend", ("counting", "selectivity"))
def test_matcher_backend_batched_throughput(benchmark, compiled, engine_backend):
    """Publications/sec of the amortised ``match_batch`` burst path."""
    engine = MatchingEngine(policy=compiled.spec.policy, backend=engine_backend)
    publications = []
    for event in compiled.events:
        if event.subscription is not None:
            engine.subscribe(event.subscription)
        elif event.publication is not None:
            publications.append(event.publication)

    def run():
        started = time.perf_counter()
        results = engine.match_batch(publications)
        elapsed = time.perf_counter() - started
        return results, elapsed

    (results, elapsed) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(publications)
    print(
        f"\n{compiled.spec.name} ({engine_backend}, match_batch): "
        f"{len(publications) / elapsed:,.0f} publications/s"
    )
