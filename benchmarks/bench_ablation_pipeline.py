"""Ablation benchmarks for the design choices called out in DESIGN.md.

* MCS on/off and fast-decisions on/off on a mixed workload — quantifies
  how much work each stage saves and how often the deterministic
  short-circuits answer on their own.
* Broker covering policy (none / pairwise / group) — subscription traffic
  in a small overlay.
"""

import numpy as np
import pytest

from conftest import report

from repro.broker import BrokerNetwork, CoveringPolicy, random_tree_topology
from repro.core.results import DecisionMethod
from repro.core.subsumption import SubsumptionChecker
from repro.experiments.series import ResultTable
from repro.model import Schema
from repro.workloads.comparison import ComparisonWorkload
from repro.workloads.scenarios import (
    non_cover_scenario,
    pairwise_covering_scenario,
    redundant_covering_scenario,
)

SEED = 20060331


def _mixed_instances(count_per_scenario: int = 20, k: int = 60, m: int = 10):
    schema = Schema.uniform_integer(m, 0, 10_000)
    rng = np.random.default_rng(SEED)
    instances = []
    for _ in range(count_per_scenario):
        instances.append(pairwise_covering_scenario(schema, k, rng))
        instances.append(redundant_covering_scenario(schema, k, rng))
        instances.append(non_cover_scenario(schema, k, rng))
    return instances


@pytest.fixture(scope="module")
def mixed_instances():
    return _mixed_instances()


@pytest.mark.parametrize(
    "label, use_mcs, use_fast",
    [
        ("full pipeline", True, True),
        ("no MCS", False, True),
        ("no fast decisions", True, False),
        ("RSPC only", False, False),
    ],
)
def test_ablation_pipeline_stages(benchmark, mixed_instances, label, use_mcs, use_fast):
    """Cost and behaviour of the checker with stages disabled."""
    checker = SubsumptionChecker(
        delta=1e-6,
        max_iterations=300,
        use_mcs=use_mcs,
        use_fast_decisions=use_fast,
        rng=SEED,
    )

    def run():
        methods = {}
        iterations = 0
        for instance in mixed_instances:
            result = checker.check(instance.subscription, instance.candidates)
            methods[result.method.value] = methods.get(result.method.value, 0) + 1
            iterations += result.iterations_performed
            # Correctness: covered instances are never rejected.
            if instance.expected_covered:
                assert result.covered
        return methods, iterations

    methods, iterations = benchmark(run)
    print(f"\n[{label}] decision methods: {methods}, RSPC iterations: {iterations}")
    if use_fast or use_mcs:
        deterministic = (
            methods.get(DecisionMethod.PAIRWISE_COVER.value, 0)
            + methods.get(DecisionMethod.POLYHEDRON_WITNESS.value, 0)
            + methods.get(DecisionMethod.EMPTY_MCS.value, 0)
        )
        assert deterministic > 0


@pytest.mark.parametrize(
    "policy",
    [CoveringPolicy.NONE, CoveringPolicy.PAIRWISE, CoveringPolicy.GROUP],
)
def test_ablation_broker_covering_policy(benchmark, policy):
    """Subscription traffic in a 20-broker tree under each covering policy."""
    schema = Schema.uniform_integer(8, 0, 10_000)

    def run():
        workload = ComparisonWorkload(schema, rng=SEED, constrained_fraction=0.5)
        network = BrokerNetwork(
            random_tree_topology(20, SEED),
            policy=policy,
            delta=1e-6,
            max_iterations=200,
            rng=SEED,
        )
        rng = np.random.default_rng(SEED)
        broker_ids = network.broker_ids
        for index in range(120):
            client = f"client-{index}"
            broker = broker_ids[int(rng.integers(0, len(broker_ids)))]
            network.attach_client(client, broker)
            network.subscribe(client, workload.subscription(subscriber=client))
        return network.metrics

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[{policy.value}] {metrics.summary()}")
    if policy is not CoveringPolicy.NONE:
        assert metrics.suppressed_subscriptions > 0


def test_ablation_report_table(benchmark):
    """Summarise the covering policies side by side in one table."""

    def run():
        schema = Schema.uniform_integer(8, 0, 10_000)
        table = ResultTable(
            title="Ablation — subscription traffic by covering policy",
            x_label="policy",
        )
        for position, policy in enumerate(
            (CoveringPolicy.NONE, CoveringPolicy.PAIRWISE, CoveringPolicy.GROUP)
        ):
            workload = ComparisonWorkload(schema, rng=SEED, constrained_fraction=0.5)
            network = BrokerNetwork(
                random_tree_topology(12, SEED),
                policy=policy,
                delta=1e-6,
                max_iterations=200,
                rng=SEED,
            )
            rng = np.random.default_rng(SEED)
            broker_ids = network.broker_ids
            for index in range(80):
                client = f"client-{index}"
                broker = broker_ids[int(rng.integers(0, len(broker_ids)))]
                network.attach_client(client, broker)
                network.subscribe(client, workload.subscription(subscriber=client))
            table.add_row(
                position,
                {
                    "subscription_messages": network.metrics.subscription_messages,
                    "suppressed": network.metrics.suppressed_subscriptions,
                    "routing_entries": network.total_routing_entries(),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    messages = table.column("subscription_messages")
    # none >= pairwise >= group
    assert messages[0] >= messages[1] >= messages[2]
