"""Equation 2 / Proposition 5 — delivery probability along a broker chain.

The paper derives (without plotting) the probability that a matching
publication is still found when a subscription was erroneously withheld at
the head of a broker chain.  This benchmark sweeps the chain length and
the per-broker publication probability, reporting the closed form next to
a Monte Carlo simulation of the same process.
"""

from conftest import paper_scale, report

from repro.experiments import ChainConfig, run_chain_delivery


def _config() -> ChainConfig:
    if paper_scale():
        return ChainConfig.paper()
    return ChainConfig()


def test_eq2_chain_delivery_probability(benchmark):
    """Regenerate the Eq. 2 sweep and validate the closed form."""
    results = benchmark.pedantic(
        run_chain_delivery, args=(_config(),), rounds=1, iterations=1
    )
    table = results["eq2"]
    report(table)
    config = _config()
    for rho in config.rho_values:
        analytic = table.column(f"rho={rho:g} (analytic)")
        simulated = table.column(f"rho={rho:g} (simulated)")
        # Simulation and closed form agree pointwise.
        for a, s in zip(analytic, simulated):
            assert abs(a - s) <= 0.05
        # Longer chains can only help to recover the publication.
        assert analytic == sorted(analytic)
