"""Throughput of the scenario-runner hot loop.

Compiles the ``t2-burst`` tier once and measures how many events per
second the runner pushes through (a) a single matching engine and (b) the
full broker overlay.  Future PRs touching the runner, the broker message
pump or the matching engine can use these numbers to catch
scenario-throughput regressions.

Set ``REPRO_PAPER=1`` to run the heavier ``t3-stress`` tier instead.
"""

import pytest

from conftest import paper_scale, record_bench

from repro.scenarios import ScenarioRunner, compile_scenario, get_scenario

SEED = 20060331


def _tier_name() -> str:
    return "t3-stress" if paper_scale() else "t2-burst"


@pytest.fixture(scope="module")
def compiled():
    """The benchmark tier compiled once, shared by both backends."""
    return compile_scenario(get_scenario(_tier_name()), seed=SEED)


def test_scenario_runner_engine_throughput(benchmark, compiled):
    """Events/sec of the runner against a single matching engine."""
    report = benchmark.pedantic(
        lambda: ScenarioRunner(backend="engine").run(compiled),
        rounds=3,
        iterations=1,
    )
    assert report.event_count == compiled.event_count
    record_bench(
        f"scenario:{compiled.spec.name}:engine",
        events=report.event_count,
        events_per_second=round(report.events_per_second, 1),
        backend="engine",
        engine_backend=report.engine_backend,
        policy=report.policy,
    )
    print(
        f"\n{compiled.spec.name} (engine): {report.event_count} events, "
        f"{report.events_per_second:,.0f} events/s"
    )


def test_scenario_runner_network_throughput(benchmark, compiled):
    """Events/sec of the runner against the broker overlay."""
    report = benchmark.pedantic(
        lambda: ScenarioRunner(backend="network").run(compiled),
        rounds=3,
        iterations=1,
    )
    assert report.event_count == compiled.event_count
    # The overlay's global oracle accounts for every expected notification.
    assert report.totals["expected_notifications"] >= report.totals["notifications"]
    record_bench(
        f"scenario:{compiled.spec.name}:network",
        events=report.event_count,
        events_per_second=round(report.events_per_second, 1),
        backend="network",
        engine_backend=report.engine_backend,
        policy=report.policy,
        brokers=report.brokers,
    )
    print(
        f"\n{compiled.spec.name} (network): {report.event_count} events, "
        f"{report.events_per_second:,.0f} events/s, "
        f"false-decision rate {report.false_decision_rate:.4f}"
    )
