#!/usr/bin/env python
"""Scaling curve of the sharded decision pool (``BENCH_8.json``).

Runs a decision-bound slice of the ``t4-massive`` workload — a
paper-redundant subscribe ramp (every subscribe is a covering decision
against the live set) followed by a publication burst — through
:class:`~repro.shard.engine.ShardedMatchingEngine` at 1, 2, 4 and 8
workers, and reports:

* per-phase wall time, with the ramp phase called out as the
  decision-bound phase the sharding exists for;
* per-shard busy seconds and the critical path (max busy) — on a
  single-core container the wall speedup comes from the smaller
  per-shard candidate sets (total covering work is quadratic in live
  subscriptions, so N shards do ~1/N of the work), not from true
  parallelism, and the busy spread shows how even the partition is;
* the speedup of every worker count against the 1-worker run on the
  decision-bound phase;
* a delivery digest (SHA-256 over the per-publication subscriber sets)
  asserted identical across all worker counts — the partition must
  never change what gets delivered.

``--massive`` additionally runs the full ``t4-massive`` tier (1M
subscriptions / 100k publications) at the highest worker count and
records its completion numbers.  ``--scale`` shrinks the sweep for CI
smoke use (and skips writing the BENCH file).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py              # full sweep
    PYTHONPATH=src python benchmarks/bench_sharding.py --massive    # + t4 run
    PYTHONPATH=src python benchmarks/bench_sharding.py --scale 0.1  # CI smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.events import EventAction, compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import PhaseKind, PhaseSpec
from repro.shard.engine import ShardedMatchingEngine
from repro.utils.provenance import provenance
from repro.utils.tables import render_table

#: consecutive publications are matched in pipe-amortising batches of
#: this size, mirroring the runner's sharded grouping
_MATCH_CHUNK = 256


def _bench_spec(subs: int, pubs: int):
    """The sweep scenario: one decision-bound ramp + one burst."""
    base = get_scenario("t4-massive")
    return dataclasses.replace(
        base,
        name="t4-shard-sweep",
        description="bench_sharding sweep slice of t4-massive",
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": subs}),
            PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": pubs}),
        ],
    )


def _run_sweep_point(compiled, spec, shards: int, seed: int) -> Dict[str, Any]:
    """One worker-count measurement: phase walls, busy split, digest."""
    engine = ShardedMatchingEngine(
        shards=shards,
        policy=spec.policy,
        delta=spec.delta,
        max_iterations=spec.max_iterations,
        merge_budget=spec.merge_budget,
        seed=seed,
    )
    digest = hashlib.sha256()
    phases: List[Dict[str, Any]] = []
    busy_before = list(engine.shard_busy_seconds)
    try:
        events = compiled.events
        i, n = 0, len(events)
        phase_name = events[0].phase if n else None
        phase_start = time.perf_counter()

        def close_phase(name: str) -> None:
            nonlocal busy_before
            engine.sync()
            wall = time.perf_counter() - phase_start
            busy_now = list(engine.shard_busy_seconds)
            deltas = [b - p for b, p in zip(busy_now, busy_before)]
            busy_before = busy_now
            phases.append(
                {
                    "phase": name,
                    "wall_seconds": round(wall, 4),
                    "busy_seconds": [round(d, 4) for d in deltas],
                    "critical_path_seconds": round(max(deltas), 4),
                }
            )

        while i < n:
            event = events[i]
            if event.phase != phase_name:
                close_phase(phase_name)
                phase_name = event.phase
                phase_start = time.perf_counter()
            if event.action is EventAction.PUBLISH:
                j = i
                while (
                    j < n
                    and j - i < _MATCH_CHUNK
                    and events[j].action is EventAction.PUBLISH
                    and events[j].phase == phase_name
                ):
                    j += 1
                batch = [events[k].publication for k in range(i, j)]
                for result in engine.match_batch(batch):
                    digest.update(
                        ",".join(sorted(result.subscribers)).encode()
                    )
                    digest.update(b";")
                i = j
                continue
            if event.action is EventAction.SUBSCRIBE:
                engine.subscribe(event.subscription)
            elif event.action is EventAction.UNSUBSCRIBE:
                engine.unsubscribe(event.subscription_id)
            i += 1
        if phase_name is not None:
            close_phase(phase_name)
        stats = dict(engine.stats)
    finally:
        engine.close()
    return {
        "workers": shards,
        "phases": phases,
        "total_wall_seconds": round(
            sum(p["wall_seconds"] for p in phases), 4
        ),
        "notifications": stats["notifications"],
        "delivery_digest": digest.hexdigest(),
    }


def _run_massive(shards: int, seed: int) -> Dict[str, Any]:
    """The full t4-massive tier through the scenario runner."""
    spec = get_scenario("t4-massive")
    compile_start = time.perf_counter()
    compiled = compile_scenario(spec, seed)
    compile_seconds = time.perf_counter() - compile_start
    report = ScenarioRunner(backend="engine", shards=shards).run(compiled)
    payload = report.to_dict()
    return {
        "scenario": "t4-massive",
        "workers": shards,
        "events": payload["event_count"],
        "compile_seconds": round(compile_seconds, 1),
        "wall_seconds": round(payload["wall_time"], 1),
        "events_per_second": round(payload["events_per_second"], 1),
        "notifications": payload["metrics"]["notifications"]
        if "metrics" in payload
        else None,
        "trace_hash": payload["trace_hash"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded decision-pool scaling curve (BENCH_8.json)."
    )
    parser.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated worker counts to sweep (default: 1,2,4,8)",
    )
    parser.add_argument("--subs", type=int, default=20_000)
    parser.add_argument("--pubs", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink factor for CI smoke (<1 also skips the BENCH file)",
    )
    parser.add_argument(
        "--massive",
        action="store_true",
        help="also run the full t4-massive tier at the top worker count",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_8.json"), metavar="PATH"
    )
    arguments = parser.parse_args(argv)

    worker_counts = [int(w) for w in arguments.workers.split(",") if w]
    subs = max(int(arguments.subs * arguments.scale), 200)
    pubs = max(int(arguments.pubs * arguments.scale), 50)
    spec = _bench_spec(subs, pubs)
    compiled = compile_scenario(spec, arguments.seed)
    print(
        f"sweep: {subs:,} subscriptions + {pubs:,} publications "
        f"(seed {arguments.seed}) at workers {worker_counts}"
    )

    results = []
    for shards in worker_counts:
        point = _run_sweep_point(compiled, spec, shards, arguments.seed)
        results.append(point)
        ramp = next(p for p in point["phases"] if p["phase"] == "ramp")
        print(
            f"  workers={shards}: ramp {ramp['wall_seconds']:.1f}s "
            f"(critical path {ramp['critical_path_seconds']:.1f}s), "
            f"total {point['total_wall_seconds']:.1f}s, "
            f"{point['notifications']:,} notifications"
        )

    digests = {point["delivery_digest"] for point in results}
    if len(digests) != 1:
        print(
            "FAIL: delivery digests differ across worker counts "
            f"({sorted(digests)})",
            file=sys.stderr,
        )
        return 1
    notification_counts = {point["notifications"] for point in results}
    if len(notification_counts) != 1:
        print(
            "FAIL: notification totals differ across worker counts "
            f"({sorted(notification_counts)})",
            file=sys.stderr,
        )
        return 1

    base = results[0]
    base_ramp = next(
        p for p in base["phases"] if p["phase"] == "ramp"
    )["wall_seconds"]
    rows = []
    for point in results:
        ramp = next(p for p in point["phases"] if p["phase"] == "ramp")
        point["decision_phase_speedup"] = round(
            base_ramp / ramp["wall_seconds"], 2
        )
        rows.append(
            [
                str(point["workers"]),
                f"{ramp['wall_seconds']:.2f}",
                f"{ramp['critical_path_seconds']:.2f}",
                f"{point['total_wall_seconds']:.2f}",
                f"{point['decision_phase_speedup']:.2f}x",
            ]
        )
    print("\ndecision-bound phase (ramp) scaling:")
    print(
        render_table(
            ("workers", "ramp s", "crit path s", "total s", "speedup"),
            rows,
            right_align_from=1,
        )
    )

    massive = None
    if arguments.massive:
        top = max(worker_counts)
        print(f"\nrunning full t4-massive at {top} workers…")
        massive = _run_massive(top, arguments.seed)
        print(
            f"  t4-massive: {massive['events']:,} events in "
            f"{massive['wall_seconds']:,}s "
            f"({massive['events_per_second']:,} events/s, compile "
            f"{massive['compile_seconds']}s)"
        )

    if arguments.scale < 1.0:
        print("\n[--scale < 1: BENCH file not written]")
        return 0
    payload = {
        "schema": 1,
        "provenance": provenance(cwd=str(REPO_ROOT)),
        "cores_available": os.cpu_count(),
        "sweep": {
            "scenario": spec.name,
            "seed": arguments.seed,
            "subscriptions": subs,
            "publications": pubs,
            "policy": str(spec.policy),
            "results": results,
        },
    }
    if massive is not None:
        payload["t4_massive"] = massive
    Path(arguments.output).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    print(f"\nresults written to {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
