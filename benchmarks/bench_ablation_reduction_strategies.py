"""Ablation — subscription-set reduction strategies side by side.

Compares, on the same popularity-skewed stream (Section 6.4 model), the
three reduction strategies discussed by the paper and its related work:

* **pair-wise covering** (classical baseline, lossless),
* **group covering** (the paper's probabilistic subsumption, loses at most
  a delta-bounded fraction of notifications),
* **greedy merging** (related work: lossless for subscribers but produces
  *false positives* — publications delivered although nobody asked).

Reported per strategy: resulting set size and the introduced imprecision
(false-positive volume for merging, residual error bound for covering).

A second benchmark quantifies the integer-vs-continuous domain design
choice: the rho_w/d estimates produced by Algorithm 2 on the same geometry
expressed over both domain types.
"""

import math

import numpy as np
import pytest

from conftest import report

from repro.core.merging import GreedyMerger
from repro.core.error_model import required_iterations
from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.core.witness import compute_point_witness_probability
from repro.experiments.series import ResultTable
from repro.model import ContinuousDomain, IntegerDomain, Schema, Subscription
from repro.workloads.comparison import ComparisonWorkload

SEED = 20060331
STREAM = 250
M = 8


def _stream():
    schema = Schema.uniform_integer(M, 0, 10_000)
    workload = ComparisonWorkload(schema, rng=SEED)
    return schema, workload.subscriptions(STREAM)


def test_ablation_reduction_strategies(benchmark):
    """Set size and imprecision of pair-wise covering, group covering and merging."""

    def run():
        schema, subscriptions = _stream()
        table = ResultTable(
            title="Ablation — reduction strategy comparison "
            f"({STREAM} subscriptions, m={M})",
            x_label="strategy",
        )

        pairwise = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        for subscription in subscriptions:
            pairwise.add(subscription.replace(subscription_id=f"{subscription.id}-pw"))

        group = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-6, max_iterations=300, rng=SEED),
        )
        for subscription in subscriptions:
            group.add(subscription.replace(subscription_id=f"{subscription.id}-gr"))

        # Greedy merging recomputes every pair per step (O(n^3) with exact
        # false-volume accounting), so it only sees a prefix of the stream.
        merge_prefix = subscriptions[: STREAM // 5]
        merger = GreedyMerger(max_relative_overhead=0.3)
        merged = merger.reduce(merge_prefix)

        total_volume = sum(s.size() for s in merge_prefix)
        table.add_row(0, {
            "set_size": pairwise.stats["forwarded"],
            "imprecision": 0.0,
        })
        table.add_row(1, {
            "set_size": group.stats["forwarded"],
            "imprecision": 0.0,
        })
        table.add_row(2, {
            "set_size": len(merged),
            "imprecision": merger.total_false_volume / max(total_volume, 1.0),
        })
        table.notes = "rows: 0=pair-wise covering, 1=group covering, 2=greedy merging"
        return table, pairwise, group

    table, pairwise, group = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    sizes = table.column("set_size")
    # Group covering reduces at least as much as pair-wise covering.
    assert sizes[1] <= sizes[0]
    # Both covering strategies introduce no false-positive volume.
    assert table.column("imprecision")[0] == 0.0
    assert table.column("imprecision")[1] == 0.0


def test_ablation_domain_measure(benchmark):
    """Algorithm 2 under integer point counting vs continuous measure."""

    def run():
        integer_schema = Schema(
            [(f"x{j}", IntegerDomain(0, 1_000)) for j in range(1, 4)],
            name="integer",
        )
        continuous_schema = Schema(
            [(f"x{j}", ContinuousDomain(0.0, 1_000.0)) for j in range(1, 4)],
            name="continuous",
        )
        table = ResultTable(
            title="Ablation — rho_w / d under integer vs continuous domains",
            x_label="gap_width",
        )
        for gap in (1, 5, 25, 125):
            row = {}
            for label, schema in (
                ("integer", integer_schema),
                ("continuous", continuous_schema),
            ):
                s = Subscription.from_constraints(
                    schema, {"x1": (0, 999), "x2": (0, 999), "x3": (0, 999)}
                )
                left = Subscription.from_constraints(
                    schema, {"x1": (0, 499 - gap), "x2": (0, 999), "x3": (0, 999)}
                )
                right = Subscription.from_constraints(
                    schema, {"x1": (500, 999), "x2": (0, 999), "x3": (0, 999)}
                )
                rho = compute_point_witness_probability(s, [left, right])
                row[f"rho_w ({label})"] = rho
                row[f"log10 d ({label})"] = math.log10(
                    max(required_iterations(1e-6, rho), 1.0)
                )
            table.add_row(gap, row)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    # The two measures agree up to the ±1-point discretisation effect:
    # rho_w decreases as the gap narrows under both, and the derived d
    # stays within one order of magnitude of the other domain type.
    for label in ("integer", "continuous"):
        rhos = table.column(f"rho_w ({label})")
        assert rhos == sorted(rhos)
    for gap_index in range(4):
        d_int = table.column("log10 d (integer)")[gap_index]
        d_cont = table.column("log10 d (continuous)")[gap_index]
        assert abs(d_int - d_cont) <= 1.0
