"""Reduction strategies head to head on the burst tier.

Runs the ``t2-burst`` shape (scaled down so the five-way sweep stays
laptop-sized; ``REPRO_PAPER=1`` runs the full tier) through the broker
overlay once per registered reduction strategy and reports, side by side:

* **forwarded subscription messages** — the routing traffic (and hence
  upstream routing state) the reduction aims to cut;
* **false-positive rate** — spurious deliveries per delivered
  notification (0 for the covering strategies, the price of merging);
* **missed** — notifications lost to erroneous probabilistic decisions;
* **pubs/sec** — publication events per wall-clock second.

This is the end-to-end covering-vs-merging comparison of the related
work discussion, run on the real broker network rather than on isolated
subscription stores.
"""

import dataclasses
import time

from conftest import paper_scale, report

from repro.core.policies import STRATEGY_NAMES
from repro.experiments.series import ResultTable
from repro.scenarios import ScenarioRunner, compile_scenario, get_scenario

SEED = 20060331
MERGE_BUDGET = 0.4


def _spec():
    spec = get_scenario("t2-burst")
    if paper_scale():
        return spec
    scaled = []
    for phase in spec.phases:
        params = {
            key: (max(value // 4, 1) if isinstance(value, int) else value)
            for key, value in phase.params.items()
        }
        scaled.append(dataclasses.replace(phase, params=params))
    return dataclasses.replace(spec, phases=scaled)


def test_reduction_policy_sweep(benchmark):
    """All registered strategies on the same compiled burst workload."""

    def run():
        table = ResultTable(
            title=(
                "Reduction strategies on the t2-burst shape "
                f"(merge budget {MERGE_BUDGET:g})"
            ),
            x_label="strategy",
        )
        for index, policy in enumerate(STRATEGY_NAMES):
            spec = dataclasses.replace(
                _spec(),
                policy=policy,
                merge_budget=MERGE_BUDGET,
            )
            compiled = compile_scenario(spec, seed=SEED)
            started = time.perf_counter()
            outcome = ScenarioRunner(spec, seed=SEED).run(compiled)
            elapsed = time.perf_counter() - started
            totals = outcome.totals
            publishes = sum(phase.publishes for phase in outcome.phases)
            delivered = totals["notifications"]
            false_positives = totals.get("false_positive_notifications", 0)
            table.add_row(
                index,
                {
                    "sub msgs": totals["subscription_messages"],
                    "missed": totals["missed_notifications"],
                    "false-pos rate": (
                        round(false_positives / delivered, 4)
                        if delivered
                        else 0.0
                    ),
                    "merged ads": totals.get("merged_advertisements", 0),
                    "pubs/sec": (
                        round(publishes / elapsed, 1) if elapsed > 0 else 0.0
                    ),
                },
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)
    # Covering strategies are exact; merging buys state with imprecision.
    assert table.column("missed")[0] == 0.0
    assert all(rate >= 0 for rate in table.column("false-pos rate"))
