"""Micro-benchmarks of the core building blocks.

These do not correspond to a specific figure; they quantify the per-call
cost of the pipeline stages on a representative instance (k = 200 hard
non-pairwise-coverable candidates over m = 15 attributes) and the
publication-matching throughput of the different indexes.

The end-to-end subsumption check is measured twice: through the
historical *object* path (a plain candidate list, re-stacked per call)
and through the *arena* path (a :class:`~repro.core.arena.CandidateSet`
snapshot, as the subscription store hands the strategies) — the latter
is the production configuration the PR-over-PR perf trajectory tracks.
Every measurement is also recorded to ``BENCH_5.json`` via
:func:`conftest.record_bench`.
"""

import numpy as np
import pytest

from conftest import record_bench

from repro.core.arena import CandidateSet
from repro.core.conflict_table import ConflictTable
from repro.core.mcs import minimized_cover_set
from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.rspc import run_rspc
from repro.core.subsumption import SubsumptionChecker
from repro.core.witness import estimate_smallest_witness
from repro.matching.counting_index import CountingIndex
from repro.matching.engine import MatchingEngine
from repro.matching.selectivity_index import SelectivityIndex
from repro.model import Schema
from repro.workloads.generators import random_publication, random_subscription
from repro.workloads.scenarios import redundant_covering_scenario

K = 200
M = 15
SEED = 20060331


def _record(benchmark, op, **fields):
    stats = benchmark.stats.stats
    record_bench(
        op,
        p50_ns=round(stats.median * 1e9),
        mean_ns=round(stats.mean * 1e9),
        **fields,
    )


@pytest.fixture(scope="module")
def instance():
    schema = Schema.uniform_integer(M, 0, 10_000)
    return redundant_covering_scenario(schema, K, SEED)


@pytest.fixture(scope="module")
def candidate_set(instance):
    return CandidateSet(instance.candidates)


@pytest.fixture(scope="module")
def conflict_table(instance):
    return ConflictTable(instance.subscription, instance.candidates)


def test_conflict_table_construction(benchmark, instance):
    """Definition 2: building the k x 2m conflict table (O(m k))."""
    table = benchmark(
        ConflictTable, instance.subscription, instance.candidates
    )
    assert table.k == K
    _record(benchmark, "conflict_table:object", k=K, m=M)


def test_conflict_table_construction_arena(benchmark, instance, candidate_set):
    """Conflict-table construction from a contiguous candidate snapshot."""
    table = benchmark(
        ConflictTable, instance.subscription, candidate_set
    )
    assert table.k == K
    _record(benchmark, "conflict_table:arena", k=K, m=M)


def test_mcs_reduction(benchmark, conflict_table):
    """Algorithm 3: the Minimized Cover Set reduction."""
    result = benchmark(minimized_cover_set, conflict_table)
    assert result.reduced_size <= K
    _record(benchmark, "mcs", k=K, m=M)


def test_rho_w_estimation(benchmark, conflict_table):
    """Algorithm 2: estimating I(sw) and rho_w from the conflict table."""
    estimate = benchmark(estimate_smallest_witness, conflict_table)
    assert 0.0 <= estimate.rho_w <= 1.0
    _record(benchmark, "rho_w", k=K, m=M)


def test_rspc_execution(benchmark, instance, conflict_table):
    """Algorithm 1: a capped RSPC run on the covering instance."""
    estimate = estimate_smallest_witness(conflict_table)

    def run():
        return run_rspc(
            instance.subscription,
            instance.candidates,
            rho_w=estimate.rho_w,
            delta=1e-6,
            rng=SEED,
            max_iterations=500,
        )

    result = benchmark(run)
    assert result.covered  # the instance is covered by construction
    _record(benchmark, "rspc", k=K, m=M, max_iterations=500)


def test_full_pipeline_check(benchmark, instance):
    """The complete SubsumptionChecker pipeline (object-list path)."""
    checker = SubsumptionChecker(delta=1e-6, max_iterations=500, rng=SEED)

    def run():
        return checker.check(instance.subscription, instance.candidates)

    result = benchmark(run)
    assert result.covered
    _record(benchmark, "check:object", k=K, m=M, max_iterations=500)


def test_full_pipeline_check_arena(benchmark, instance, candidate_set):
    """The complete pipeline against an arena-backed candidate snapshot.

    This is the store's production path (zero-copy conflict table, shared
    stacked bounds) — the headline number of the perf trajectory.
    """
    checker = SubsumptionChecker(delta=1e-6, max_iterations=500, rng=SEED)

    def run():
        return checker.check(instance.subscription, candidate_set)

    result = benchmark(run)
    assert result.covered
    _record(benchmark, "check:arena", k=K, m=M, max_iterations=500)


def test_pairwise_baseline_check(benchmark, instance):
    """The classical pair-wise covering scan (the baseline's unit cost)."""
    result = benchmark(
        PairwiseCoverageChecker.check, instance.subscription, instance.candidates
    )
    assert not result.covered  # no single candidate covers s by construction
    _record(benchmark, "pairwise:object", k=K, m=M)


def test_pairwise_baseline_check_arena(benchmark, instance, candidate_set):
    """The pair-wise scan as one vectorised pass over the snapshot."""
    result = benchmark(
        PairwiseCoverageChecker.check, instance.subscription, candidate_set
    )
    assert not result.covered
    _record(benchmark, "pairwise:arena", k=K, m=M)


@pytest.mark.parametrize("index_class", [CountingIndex, SelectivityIndex])
def test_matching_index_throughput(benchmark, index_class):
    """Publication matching throughput of the baseline indexes."""
    schema = Schema.uniform_integer(10, 0, 10_000)
    rng = np.random.default_rng(SEED)
    index = index_class(schema)
    for _ in range(1_000):
        index.add(random_subscription(schema, rng, width_fraction=(0.1, 0.4)))
    publications = [random_publication(schema, rng) for _ in range(100)]

    def run():
        return sum(len(index.match(publication)) for publication in publications)

    total = benchmark(run)
    assert total >= 0
    _record(
        benchmark,
        f"match_index:{index_class.__name__}",
        subscriptions=1_000,
        publications=100,
    )


def test_matching_engine_throughput(benchmark):
    """Algorithm 5 matching (group-covered store + cover forest)."""
    schema = Schema.uniform_integer(10, 0, 10_000)
    rng = np.random.default_rng(SEED)
    engine = MatchingEngine(
        checker=SubsumptionChecker(delta=1e-6, max_iterations=200, rng=SEED)
    )
    for index in range(300):
        engine.subscribe(
            random_subscription(schema, rng, width_fraction=(0.1, 0.4)).replace(
                subscriber=f"client-{index % 20}"
            )
        )
    publications = [random_publication(schema, rng) for _ in range(100)]

    def run():
        return sum(len(engine.match(p).matched) for p in publications)

    total = benchmark(run)
    assert total >= 0
    _record(
        benchmark,
        "engine_match",
        subscriptions=300,
        publications=100,
        backend="linear",
    )
