"""Figure 11 — actual RSPC iterations vs gap size (extreme non cover).

Paper result: the average number of guesses needed to find the point
witness is governed by the relative gap size (≈ 200 guesses at a 0.5 %
gap down to ≈ 20 at 4.5 %) and is essentially independent of the
configured error probability.
"""

from conftest import paper_scale, report

from repro.experiments import ExtremeNonCoverConfig, run_extreme_non_cover


def _config() -> ExtremeNonCoverConfig:
    if paper_scale():
        return ExtremeNonCoverConfig.paper()
    return ExtremeNonCoverConfig()


def test_fig11_extreme_noncover_iterations(benchmark):
    """Regenerate the Figure 11 series."""
    results = benchmark.pedantic(
        run_extreme_non_cover, args=(_config(),), rounds=1, iterations=1
    )
    fig11 = results["fig11"]
    report(fig11)
    config = _config()
    for delta in config.deltas:
        series = fig11.column(f"error={delta:g}")
        # Iterations drop as the gap widens (first vs last gap size).
        assert series[0] >= series[-1]
    # The curves for different error probabilities stay within the same
    # order of magnitude (the paper's observation).
    first_gap_values = [
        fig11.column(f"error={delta:g}")[0] for delta in config.deltas
    ]
    assert max(first_gap_values) <= 10 * max(min(first_gap_values), 1.0)
