"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper's evaluation and
prints the resulting series so that ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction report.

Set the environment variable ``REPRO_PAPER=1`` to run the benchmarks with
the paper's full parameters (Section 6) instead of the laptop-sized
defaults; expect the full sweep to take considerably longer.
"""

from __future__ import annotations

import os
import sys
from typing import List

import pytest

__all__ = ["paper_scale", "report"]

#: rendered experiment tables collected during the run, emitted in the
#: terminal summary (which pytest never captures) so that
#: ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` always
#: records the reproduced figure series.
_COLLECTED_TABLES: List[str] = []


def paper_scale() -> bool:
    """Whether the full paper-scale parameters were requested."""
    return os.environ.get("REPRO_PAPER", "").strip() in {"1", "true", "yes"}


def report(*tables) -> None:
    """Record experiment tables for the end-of-run reproduction report."""
    for table in tables:
        rendered = table.render()
        print()
        print(rendered)
        _COLLECTED_TABLES.append(rendered)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every reproduced figure after the benchmark summary."""
    if not _COLLECTED_TABLES:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced figures", sep="=")
    for rendered in _COLLECTED_TABLES:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def use_paper_scale() -> bool:
    """Session fixture exposing the REPRO_PAPER switch."""
    return paper_scale()
