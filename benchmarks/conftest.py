"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper's evaluation and
prints the resulting series so that ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction report.

Set the environment variable ``REPRO_PAPER=1`` to run the benchmarks with
the paper's full parameters (Section 6) instead of the laptop-sized
defaults; expect the full sweep to take considerably longer.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List

import pytest

__all__ = ["paper_scale", "report", "record_bench"]

#: machine-readable benchmark results collected during the run and merged
#: into ``BENCH_5.json`` (override the path with ``REPRO_BENCH_JSON``) at
#: session end, so the perf trajectory is tracked across PRs instead of
#: scrolling away in terminal output
_BENCH_RESULTS: Dict[str, Dict[str, Any]] = {}


def bench_json_path() -> Path:
    """Destination of the machine-readable benchmark results."""
    override = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_5.json"


def record_bench(op: str, **fields: Any) -> None:
    """Record one benchmark measurement for the JSON report.

    ``op`` identifies the measured operation (e.g. ``"check:arena"`` or
    ``"scenario:t2-burst:engine"``); the fields are free-form but the
    micro benchmarks use ``p50_ns`` and the scenario benchmarks
    ``events_per_second``, plus the instance parameters (``k``, ``m``,
    ``backend``, ``policy``) needed to compare runs across PRs.  Every
    entry records the scale it was measured at, so merging a
    ``REPRO_PAPER=1`` run into an existing small-scale baseline cannot
    mislabel individual numbers.
    """
    _BENCH_RESULTS[op] = {"op": op, "paper_scale": paper_scale(), **fields}


def _flush_bench_results() -> None:
    if not _BENCH_RESULTS:
        return
    path = bench_json_path()
    existing: Dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    results = existing.get("results", {})
    results.update(_BENCH_RESULTS)
    payload = {
        "schema": 1,
        "paper_scale": paper_scale(),
        "provenance": _provenance_stamp(),
        "results": dict(sorted(results.items())),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _provenance_stamp() -> Dict[str, Any]:
    """Git SHA, python version and platform of the measuring machine."""
    from repro.utils.provenance import provenance

    return provenance(cwd=str(Path(__file__).resolve().parent.parent))

#: rendered experiment tables collected during the run, emitted in the
#: terminal summary (which pytest never captures) so that
#: ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` always
#: records the reproduced figure series.
_COLLECTED_TABLES: List[str] = []


def paper_scale() -> bool:
    """Whether the full paper-scale parameters were requested."""
    return os.environ.get("REPRO_PAPER", "").strip() in {"1", "true", "yes"}


def report(*tables) -> None:
    """Record experiment tables for the end-of-run reproduction report."""
    for table in tables:
        rendered = table.render()
        print()
        print(rendered)
        _COLLECTED_TABLES.append(rendered)


def pytest_sessionfinish(session, exitstatus):
    """Merge the recorded measurements into the JSON benchmark report."""
    _flush_bench_results()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every reproduced figure after the benchmark summary."""
    if _BENCH_RESULTS:
        terminalreporter.write_line(
            f"benchmark results recorded to {bench_json_path()}"
        )
    if not _COLLECTED_TABLES:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced figures", sep="=")
    for rendered in _COLLECTED_TABLES:
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def use_paper_scale() -> bool:
    """Session fixture exposing the REPRO_PAPER switch."""
    return paper_scale()
