"""Reproduction of *Efficient Probabilistic Subsumption Checking for
Content-based Publish/Subscribe Systems* (Ouksel, Jurca, Podnar, Aberer —
Middleware 2006).

The package is organised in layers:

``repro.model``
    The data model: attribute domains, intervals, predicates, subscriptions
    (axis-aligned hyper-rectangles) and publications (points).

``repro.core``
    The paper's contribution: the conflict table, the probabilistic RSPC
    algorithm, the MCS reduction algorithm, fast deterministic decisions,
    the error model (``rho_w``, ``d``, Eq. 1 and Eq. 2) and the pair-wise
    baseline.

``repro.matching``
    Publication-to-subscription matching engines (Algorithm 5) and the
    multi-level cover index, plus classical baseline indexes.

``repro.broker``
    A distributed broker-overlay simulator with reverse-path forwarding and
    pluggable subscription-covering policies.

``repro.workloads``
    Subscription/publication generators for every evaluation scenario of the
    paper plus two domain workloads (bike rental, Grid resource discovery).

``repro.experiments``
    The experiment harness that regenerates every figure of the paper's
    evaluation section.

``repro.scenarios``
    Registry-driven, replayable *dynamic* workload scenarios — phase
    timelines (subscribe ramps, unsubscribe storms, publication bursts,
    flash crowds, steady-state mixes) compiled into deterministic event
    streams and executed against the broker overlay with per-phase
    metrics (``python -m repro.scenarios``).
"""

from repro.model import (
    AttributeDomain,
    CategoricalDomain,
    ContinuousDomain,
    IntegerDomain,
    Interval,
    Publication,
    Schema,
    Subscription,
    TimestampDomain,
)
from repro.core import (
    ConflictTable,
    PairwiseCoverageChecker,
    SubsumptionChecker,
    SubsumptionResult,
    compute_point_witness_probability,
    compute_required_iterations,
)
from repro.matching import MatchingEngine
from repro.broker import BrokerNetwork, CoveringPolicy

__version__ = "1.0.0"

__all__ = [
    "AttributeDomain",
    "BrokerNetwork",
    "CategoricalDomain",
    "ConflictTable",
    "ContinuousDomain",
    "CoveringPolicy",
    "IntegerDomain",
    "Interval",
    "MatchingEngine",
    "PairwiseCoverageChecker",
    "Publication",
    "Schema",
    "Subscription",
    "SubsumptionChecker",
    "SubsumptionResult",
    "TimestampDomain",
    "compute_point_witness_probability",
    "compute_required_iterations",
    "__version__",
]
