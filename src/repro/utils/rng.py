"""Random-number helpers.

Every stochastic component of the library (the RSPC point guesser, the
workload generators, the broker simulator) accepts either a seed or a
:class:`numpy.random.Generator` so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["RandomSource", "ensure_rng", "spawn_rngs"]

#: Anything that can act as a source of randomness.
RandomSource = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Coerce ``source`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator, an integer seeds a new
    generator, and an existing generator is returned unchanged.
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    return np.random.default_rng(source)


def spawn_rngs(source: RandomSource, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from a single source.

    Used to give each broker / workload stream its own stream without
    cross-correlation, while keeping the whole experiment reproducible from
    one seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(source, np.random.Generator):
        seeds = source.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(seed)) for seed in seeds]
    sequence = (
        source
        if isinstance(source, np.random.SeedSequence)
        else np.random.SeedSequence(source)
    )
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
