"""Small shared utilities: random number handling, validation, timing."""

from repro.utils.rng import RandomSource, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require,
    require_in_range,
    require_positive,
    require_probability,
)

__all__ = [
    "RandomSource",
    "Stopwatch",
    "ensure_rng",
    "require",
    "require_in_range",
    "require_positive",
    "require_probability",
    "spawn_rngs",
]
