"""Wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Stopwatch"]


class Stopwatch:
    """A tiny context-manager stopwatch.

    Example
    -------
    >>> with Stopwatch() as watch:
    ...     sum(range(1000))
    499500
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the last completed measurement."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed
