"""Build/run provenance stamps for benchmark and profile artifacts.

A measurement without the commit, interpreter and platform it was taken
on is hard to compare across PRs; :func:`provenance` collects the three
in one JSON-safe dictionary.  Everything is best-effort: outside a git
checkout (or with git unavailable) the commit fields degrade to
``"unknown"`` rather than failing the benchmark run.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from typing import Dict, Optional, Union

__all__ = ["git_sha", "provenance"]


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit's SHA (``"unknown"`` when unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def _git_dirty(cwd: Optional[str] = None) -> Union[bool, str]:
    """Whether the working tree has uncommitted changes."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return bool(out.stdout.strip())


def provenance(cwd: Optional[str] = None) -> Dict[str, object]:
    """Commit, interpreter and platform of the measuring environment."""
    return {
        "git_sha": git_sha(cwd),
        "git_dirty": _git_dirty(cwd),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
    }
