"""Plain-text table rendering shared by the CLI front-ends."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table"]


def render_table(
    labels: Sequence[str],
    rows: Sequence[Sequence[str]],
    right_align_from: Optional[int] = None,
) -> str:
    """A width-aligned ASCII table with a dashed separator under the header.

    ``right_align_from`` right-aligns every column from that index on
    (numeric columns); ``None`` left-aligns everything.
    """
    widths = [
        max(len(labels[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(labels))
    ]

    def _format(row: Sequence[str], numeric: bool) -> str:
        cells: List[str] = []
        for index, cell in enumerate(row):
            right = (
                numeric
                and right_align_from is not None
                and index >= right_align_from
            )
            cells.append(cell.rjust(widths[index]) if right else cell.ljust(widths[index]))
        return "  ".join(cells)

    lines = [
        _format(list(labels), numeric=False),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(_format(row, numeric=True) for row in rows)
    return "\n".join(lines)
