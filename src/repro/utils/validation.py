"""Argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

__all__ = [
    "require",
    "require_positive",
    "require_probability",
    "require_in_range",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` fails."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
