"""Broker overlay topologies.

Helpers returning edge lists ``[(broker_a, broker_b), …]`` for the
topologies used by the examples and the distributed experiments: chains
(the Proposition 5 setting), stars, 2-D grids and random trees (acyclic
overlays are the common case for subscription flooding since reverse-path
forwarding then induces unique delivery trees, cf. Figure 1's overlay).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.utils.rng import RandomSource, ensure_rng

__all__ = [
    "broker_name",
    "line_topology",
    "star_topology",
    "grid_topology",
    "random_tree_topology",
]


def broker_name(index: int) -> str:
    """Canonical broker identifier used by all topology helpers."""
    return f"B{index + 1}"


def line_topology(count: int) -> List[Tuple[str, str]]:
    """A chain ``B1 — B2 — … — Bn`` (the Proposition 5 setting)."""
    if count < 1:
        raise ValueError("a topology needs at least one broker")
    return [
        (broker_name(index), broker_name(index + 1)) for index in range(count - 1)
    ]


def star_topology(count: int) -> List[Tuple[str, str]]:
    """A hub ``B1`` connected to ``count - 1`` leaves."""
    if count < 1:
        raise ValueError("a topology needs at least one broker")
    return [(broker_name(0), broker_name(index)) for index in range(1, count)]


def grid_topology(rows: int, columns: int) -> List[Tuple[str, str]]:
    """A ``rows x columns`` mesh with 4-neighbour connectivity."""
    if rows < 1 or columns < 1:
        raise ValueError("grid dimensions must be positive")
    edges: List[Tuple[str, str]] = []
    for row in range(rows):
        for column in range(columns):
            index = row * columns + column
            if column + 1 < columns:
                edges.append((broker_name(index), broker_name(index + 1)))
            if row + 1 < rows:
                edges.append((broker_name(index), broker_name(index + columns)))
    return edges


def random_tree_topology(
    count: int, rng: RandomSource = None
) -> List[Tuple[str, str]]:
    """A uniformly random recursive tree over ``count`` brokers."""
    if count < 1:
        raise ValueError("a topology needs at least one broker")
    generator = ensure_rng(rng)
    edges: List[Tuple[str, str]] = []
    for index in range(1, count):
        parent = int(generator.integers(0, index))
        edges.append((broker_name(parent), broker_name(index)))
    return edges
