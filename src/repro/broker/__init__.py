"""Distributed publish/subscribe broker overlay.

The simulator reproduces the distributed setting of Sections 2 and 5: a
network of brokers connected by logical links, subscription propagation by
flooding with reverse-path forwarding, and covering-based suppression of
redundant subscriptions.  The reduction strategy is pluggable (``none``,
``pairwise``, ``group``, ``merging``, ``hybrid`` — see
:mod:`repro.core.policies`) so the traffic impact of the paper's
probabilistic group subsumption can be measured against the classical
baselines *and* against the related work's merging approach (smaller
routing state bought with false-positive deliveries), and the delivery
loss caused by erroneous coverage decisions can be quantified
(Proposition 5 / Eq. 2).
"""

from repro.broker.broker import Broker
from repro.broker.chain import ChainModel, simulate_chain_delivery
from repro.broker.messages import (
    Message,
    NotificationRecord,
    PublicationBatchMessage,
    PublicationMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from repro.broker.metrics import MetricsSnapshot, NetworkMetrics
from repro.broker.network import BrokerNetwork
from repro.broker.sim import (
    LATENCY_MODEL_NAMES,
    EventKernel,
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    ZeroLatency,
    make_latency_model,
    parse_latency_model,
)
from repro.broker.topologies import (
    grid_topology,
    line_topology,
    random_tree_topology,
    star_topology,
)
from repro.core.store import CoveringPolicyName as CoveringPolicy

__all__ = [
    "Broker",
    "BrokerNetwork",
    "ChainModel",
    "CoveringPolicy",
    "EventKernel",
    "FixedLatency",
    "LATENCY_MODEL_NAMES",
    "LatencyModel",
    "LognormalLatency",
    "Message",
    "MetricsSnapshot",
    "NetworkMetrics",
    "NotificationRecord",
    "PublicationBatchMessage",
    "PublicationMessage",
    "SubscriptionMessage",
    "UnsubscriptionMessage",
    "ZeroLatency",
    "grid_topology",
    "line_topology",
    "random_tree_topology",
    "simulate_chain_delivery",
    "star_topology",
    "make_latency_model",
    "parse_latency_model",
]
