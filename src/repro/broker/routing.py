"""Per-broker routing state.

Each broker remembers, for every subscription it has learnt about, where
the subscription came from: either a local client or the neighbouring
broker that forwarded it.  Publications are later routed along the reverse
of those paths (reverse path forwarding, Section 2).

The forwarding-table lookup (:meth:`RoutingTable.matching_entries`) is
delegated to a pluggable matcher backend
(:mod:`repro.matching.backends`), so a broker can match publications with
the seed's linear scan or with a vectorised index without any change in
observable routing behaviour: every backend yields the matching entries in
insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.matching.backends import make_backend
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = ["SourceKind", "RouteEntry", "RoutingTable"]


class SourceKind(str, Enum):
    """Where a routing entry's subscription was learnt from."""

    LOCAL = "local"
    NEIGHBOR = "neighbor"


@dataclass(frozen=True)
class RouteEntry:
    """One subscription known to a broker and its reverse-path source."""

    subscription: Subscription
    source_kind: SourceKind
    #: local subscriber identifier or neighbouring broker identifier
    source_id: str
    #: broker where the subscription entered the network
    origin: str


class RoutingTable:
    """Mapping of subscription identifier to :class:`RouteEntry`.

    Parameters
    ----------
    matcher_backend:
        Name of the matcher backend answering
        :meth:`matching_entries` (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`).
    """

    def __init__(self, matcher_backend: str = "linear") -> None:
        self._entries: Dict[str, RouteEntry] = {}
        self.matcher_backend = matcher_backend
        self._index = make_backend(matcher_backend)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, entry: RouteEntry) -> bool:
        """Insert an entry; returns ``False`` when the id is already known."""
        if entry.subscription.id in self._entries:
            return False
        self._entries[entry.subscription.id] = entry
        self._index.add(entry.subscription)
        return True

    def remove(self, subscription_id: str) -> Optional[RouteEntry]:
        """Remove and return an entry, or ``None`` when unknown."""
        entry = self._entries.pop(subscription_id, None)
        if entry is not None:
            self._index.remove(subscription_id)
        return entry

    def get(self, subscription_id: str) -> Optional[RouteEntry]:
        """Look up an entry by subscription identifier."""
        return self._entries.get(subscription_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def subscriptions(self) -> List[Subscription]:
        """Every subscription known to the broker."""
        return [entry.subscription for entry in self._entries.values()]

    def entries(self) -> List[RouteEntry]:
        """Every routing entry."""
        return list(self._entries.values())

    def matching_entries(self, publication: Publication) -> List[RouteEntry]:
        """Entries whose subscription matches ``publication``.

        Entries are returned in insertion order regardless of the matcher
        backend, so reverse-path forwarding decisions are
        backend-independent.
        """
        matched, _tests = self._index.match_candidates(publication)
        return [self._entries[subscription.id] for subscription in matched]

    def matching_entries_with_tests(
        self, publication: Publication
    ) -> Tuple[List[RouteEntry], int]:
        """:meth:`matching_entries` plus the membership-test count.

        The observability layer uses the test count to attribute
        route-lookup cost per broker; the entry list is identical to
        :meth:`matching_entries`.
        """
        matched, tests = self._index.match_candidates(publication)
        return (
            [self._entries[subscription.id] for subscription in matched],
            tests,
        )

    def matching_entries_batch(
        self, publications: Sequence[Publication], values=None
    ) -> List[Tuple[List[RouteEntry], int]]:
        """Per-publication ``(matching entries, tests)`` for a whole burst.

        One ``match_batch`` call answers the entire burst, amortising the
        backend's array setup across it; each publication's entry list and
        test charge are identical to :meth:`matching_entries_with_tests`.
        ``values`` optionally passes the burst's points pre-stacked as a
        ``(len(publications), m)`` array.
        """
        entries = self._entries
        return [
            ([entries[subscription.id] for subscription in matched], tests)
            for matched, tests in self._index.match_batch(publications, values)
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._entries

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries.values())
