"""Per-broker routing state.

Each broker remembers, for every subscription it has learnt about, where
the subscription came from: either a local client or the neighbouring
broker that forwarded it.  Publications are later routed along the reverse
of those paths (reverse path forwarding, Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = ["SourceKind", "RouteEntry", "RoutingTable"]


class SourceKind(str, Enum):
    """Where a routing entry's subscription was learnt from."""

    LOCAL = "local"
    NEIGHBOR = "neighbor"


@dataclass(frozen=True)
class RouteEntry:
    """One subscription known to a broker and its reverse-path source."""

    subscription: Subscription
    source_kind: SourceKind
    #: local subscriber identifier or neighbouring broker identifier
    source_id: str
    #: broker where the subscription entered the network
    origin: str


class RoutingTable:
    """Mapping of subscription identifier to :class:`RouteEntry`."""

    def __init__(self) -> None:
        self._entries: Dict[str, RouteEntry] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, entry: RouteEntry) -> bool:
        """Insert an entry; returns ``False`` when the id is already known."""
        if entry.subscription.id in self._entries:
            return False
        self._entries[entry.subscription.id] = entry
        return True

    def remove(self, subscription_id: str) -> Optional[RouteEntry]:
        """Remove and return an entry, or ``None`` when unknown."""
        return self._entries.pop(subscription_id, None)

    def get(self, subscription_id: str) -> Optional[RouteEntry]:
        """Look up an entry by subscription identifier."""
        return self._entries.get(subscription_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def subscriptions(self) -> List[Subscription]:
        """Every subscription known to the broker."""
        return [entry.subscription for entry in self._entries.values()]

    def entries(self) -> List[RouteEntry]:
        """Every routing entry."""
        return list(self._entries.values())

    def matching_entries(self, publication: Publication) -> List[RouteEntry]:
        """Entries whose subscription matches ``publication``."""
        return [
            entry
            for entry in self._entries.values()
            if entry.subscription.contains_point(publication.values)
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._entries

    def __iter__(self) -> Iterator[RouteEntry]:
        return iter(self._entries.values())
