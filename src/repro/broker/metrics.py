"""Network-wide traffic, delivery and latency metrics."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.broker.messages import NotificationRecord

__all__ = ["MetricsSnapshot", "NetworkMetrics"]

#: snapshot fields that support interval bookkeeping but are not counter
#: deltas — excluded from :meth:`MetricsSnapshot.diff` output so the
#: per-phase metric dictionaries of latency-free runs are unchanged
_BOOKKEEPING_FIELDS = (
    "delivery_latency_count",
    "queue_depth_high_water",
    "batched_publications",
)


def _latency_stats(latencies: Sequence[float]) -> Dict[str, float]:
    """Percentile summary of a latency sample (empty dict when empty)."""
    if not len(latencies):
        return {}
    array = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
    return {
        "delivery_latency_p50": round(float(p50), 6),
        "delivery_latency_p95": round(float(p95), 6),
        "delivery_latency_p99": round(float(p99), 6),
        "delivery_latency_mean": round(float(array.mean()), 6),
        "delivery_latency_max": round(float(array.max()), 6),
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of the :class:`NetworkMetrics` counters.

    Snapshots make per-phase accounting trivial: take one before and one
    after a workload phase and :meth:`diff` them — no manual field
    arithmetic.  Derived quantities (missed notifications, delivery ratio)
    are recomputed from the counter *deltas*, so a phase that delivered
    everything it owed reports a delivery ratio of 1.0 even when earlier
    phases lost notifications.
    """

    subscription_messages: int = 0
    unsubscription_messages: int = 0
    publication_messages: int = 0
    notifications: int = 0
    expected_notifications: int = 0
    suppressed_subscriptions: int = 0
    subsumption_checks: int = 0
    rspc_iterations: int = 0
    #: number of delivery latencies recorded so far (interval bookkeeping)
    delivery_latency_count: int = 0
    #: kernel queue-depth high-water mark at snapshot time
    queue_depth_high_water: int = 0
    #: publications that travelled inside an egress batch so far
    batched_publications: int = 0

    def diff(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Counter deltas from ``earlier`` to this snapshot.

        Returns a plain dictionary with one entry per counter plus the
        derived ``missed_notifications`` and ``delivery_ratio`` of the
        interval.  Bookkeeping fields (latency sample counts, queue
        high-water marks) are omitted; :meth:`NetworkMetrics.diff` layers
        the latency statistics on top when latency tracking is active.
        """
        delta = {
            spec.name: getattr(self, spec.name) - getattr(earlier, spec.name)
            for spec in fields(self)
        }
        for name in _BOOKKEEPING_FIELDS:
            delta.pop(name, None)
        expected = delta["expected_notifications"]
        delivered = delta["notifications"]
        delta["missed_notifications"] = max(expected - delivered, 0)
        delta["delivery_ratio"] = (
            1.0 if expected == 0 else round(delivered / expected, 6)
        )
        return delta


@dataclass
class NetworkMetrics:
    """Counters accumulated by a :class:`~repro.broker.network.BrokerNetwork`.

    Attributes
    ----------
    subscription_messages:
        Broker-to-broker subscription message hops (the traffic the paper's
        covering optimisations aim to reduce).
    unsubscription_messages:
        Broker-to-broker unsubscription message hops.
    publication_messages:
        Broker-to-broker publication message hops (an egress batch counts
        as one hop however many publications it carries).
    notifications:
        Notifications delivered to local subscribers.
    expected_notifications:
        Notifications a lossless (flooding) system would have delivered,
        computed from the global-oracle matching of every publication
        against every subscription in the system.
    suppressed_subscriptions:
        Per-link forwarding decisions where a broker withheld a subscription
        because it was (probably) covered by what that neighbour already
        knows.
    subsumption_checks:
        Number of per-link covering decisions taken by brokers (including
        the re-advertisement re-checks run when a coverer unsubscribes).
    rspc_iterations:
        Total random guesses spent by the probabilistic checker across the
        network.
    batched_publications:
        Publications that travelled inside an egress batch (0 unless the
        kernel's ``batch_size`` > 1).
    delivery_latencies:
        Virtual-time end-to-end latency of every delivered notification,
        in delivery order (all 0.0 under the zero latency model).
    queue_depth_high_water:
        Deepest the kernel's pending-delivery queue ever got.
    track_latency:
        Whether latency statistics belong in summaries and phase diffs
        (set by the network when a non-default latency model is active, so
        latency-free runs keep their historical metric dictionaries).
    """

    subscription_messages: int = 0
    unsubscription_messages: int = 0
    publication_messages: int = 0
    notifications: int = 0
    expected_notifications: int = 0
    suppressed_subscriptions: int = 0
    subsumption_checks: int = 0
    rspc_iterations: int = 0
    batched_publications: int = 0
    queue_depth_high_water: int = 0
    #: high-water mark of the current phase interval (reset at each
    #: :meth:`~repro.broker.network.BrokerNetwork.mark_phase`)
    phase_queue_depth_high_water: int = 0
    track_latency: bool = False
    delivered: List[NotificationRecord] = field(default_factory=list)
    missed: List[NotificationRecord] = field(default_factory=list)
    delivery_latencies: List[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / expected notifications (1.0 when nothing expected)."""
        if self.expected_notifications == 0:
            return 1.0
        return self.notifications / self.expected_notifications

    @property
    def missed_notifications(self) -> int:
        """Expected notifications that never reached their subscriber."""
        return max(self.expected_notifications - self.notifications, 0)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current counters."""
        return MetricsSnapshot(
            subscription_messages=self.subscription_messages,
            unsubscription_messages=self.unsubscription_messages,
            publication_messages=self.publication_messages,
            notifications=self.notifications,
            expected_notifications=self.expected_notifications,
            suppressed_subscriptions=self.suppressed_subscriptions,
            subsumption_checks=self.subsumption_checks,
            rspc_iterations=self.rspc_iterations,
            delivery_latency_count=len(self.delivery_latencies),
            queue_depth_high_water=self.queue_depth_high_water,
            batched_publications=self.batched_publications,
        )

    def diff(self, earlier: MetricsSnapshot) -> Dict[str, float]:
        """Counter deltas since ``earlier`` (see :meth:`MetricsSnapshot.diff`).

        When latency tracking is active the interval's delivery-latency
        percentiles, the kernel queue high-water mark and the batched
        publication delta are included as well.  Note that
        ``queue_depth_high_water`` is the high-water of the *current phase
        interval* (since the owning network's last ``mark_phase``), not of
        the span back to ``earlier``: interval maxima are only tracked at
        phase granularity, and the runner always diffs against the latest
        phase snapshot.  All other keys genuinely span ``earlier`` → now.
        """
        delta = self.snapshot().diff(earlier)
        if self.track_latency:
            delta.update(
                _latency_stats(
                    self.delivery_latencies[earlier.delivery_latency_count:]
                )
            )
            delta["queue_depth_high_water"] = self.phase_queue_depth_high_water
        batched = self.batched_publications - earlier.batched_publications
        if batched:
            delta["batched_publications"] = batched
        return delta

    def latency_histogram(
        self, bins: int = 20
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of the delivery latencies: ``(counts, bin edges)``."""
        if not self.delivery_latencies:
            return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
        return np.histogram(np.asarray(self.delivery_latencies), bins=bins)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary view used by the experiment reports."""
        summary = {
            "subscription_messages": self.subscription_messages,
            "unsubscription_messages": self.unsubscription_messages,
            "publication_messages": self.publication_messages,
            "notifications": self.notifications,
            "expected_notifications": self.expected_notifications,
            "missed_notifications": self.missed_notifications,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "suppressed_subscriptions": self.suppressed_subscriptions,
            "subsumption_checks": self.subsumption_checks,
            "rspc_iterations": self.rspc_iterations,
        }
        if self.track_latency:
            summary.update(_latency_stats(self.delivery_latencies))
            summary["queue_depth_high_water"] = self.queue_depth_high_water
        if self.batched_publications:
            summary["batched_publications"] = self.batched_publications
        return summary
