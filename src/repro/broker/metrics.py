"""Network-wide traffic, delivery and latency metrics.

Since the observability PR the counters of :class:`NetworkMetrics` are
backed by :class:`~repro.obs.instruments.InstrumentRegistry` instruments:
each counter is a registry :class:`~repro.obs.instruments.Counter`
exposed through a generated property, so every ``metrics.notifications
+= 1`` call site is unchanged while one registry becomes the single
source of truth for the run's metrics (shared with the probe layer when
a probe is attached, private otherwise).  The numeric values, snapshot
semantics and summary dictionaries are byte-identical to the pre-registry
dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.broker.messages import NotificationRecord
from repro.obs.instruments import InstrumentRegistry

__all__ = ["MetricsSnapshot", "NetworkMetrics"]

#: snapshot fields that support interval bookkeeping but are not counter
#: deltas — excluded from :meth:`MetricsSnapshot.diff` output so the
#: per-phase metric dictionaries of latency-free runs are unchanged
_BOOKKEEPING_FIELDS = (
    "delivery_latency_count",
    "queue_depth_high_water",
    "batched_publications",
    "missed_count",
)

#: counters that only the merging strategies can move — reported in phase
#: diffs and summaries only when non-zero, so the metric dictionaries of
#: covering-policy runs are byte-identical to what they always were
_REDUCTION_FIELDS = (
    "false_positive_notifications",
    "merged_advertisements",
    "merge_false_volume",
    "dead_letter_publications",
)


#: the stable shape every latency summary has — an empty sample reports
#: all-zeros rather than silently dropping the keys, so downstream report
#: consumers never have to guard against a missing percentile column
_EMPTY_LATENCY_STATS = {
    "delivery_latency_p50": 0.0,
    "delivery_latency_p95": 0.0,
    "delivery_latency_p99": 0.0,
    "delivery_latency_mean": 0.0,
    "delivery_latency_max": 0.0,
}


def _latency_stats(latencies: Sequence[float]) -> Dict[str, float]:
    """Percentile summary of a latency sample (all zeros when empty)."""
    if not len(latencies):
        return dict(_EMPTY_LATENCY_STATS)
    array = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.percentile(array, (50.0, 95.0, 99.0))
    return {
        "delivery_latency_p50": round(float(p50), 6),
        "delivery_latency_p95": round(float(p95), 6),
        "delivery_latency_p99": round(float(p99), 6),
        "delivery_latency_mean": round(float(array.mean()), 6),
        "delivery_latency_max": round(float(array.max()), 6),
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of the :class:`NetworkMetrics` counters.

    Snapshots make per-phase accounting trivial: take one before and one
    after a workload phase and :meth:`diff` them — no manual field
    arithmetic.  Derived quantities (missed notifications, delivery ratio)
    are recomputed from the counter *deltas*, so a phase that delivered
    everything it owed reports a delivery ratio of 1.0 even when earlier
    phases lost notifications.
    """

    subscription_messages: int = 0
    unsubscription_messages: int = 0
    publication_messages: int = 0
    notifications: int = 0
    expected_notifications: int = 0
    suppressed_subscriptions: int = 0
    subsumption_checks: int = 0
    rspc_iterations: int = 0
    #: notifications delivered although the subscriber's own subscription
    #: did not match (merged-filter client-side-filtering cost)
    false_positive_notifications: int = 0
    #: merged bounding boxes advertised in place of exact subscriptions
    merged_advertisements: int = 0
    #: total over-approximated volume introduced by those merges
    merge_false_volume: float = 0.0
    #: publications a neighbour routed to a broker where nothing matched
    dead_letter_publications: int = 0
    #: number of delivery latencies recorded so far (interval bookkeeping)
    delivery_latency_count: int = 0
    #: kernel queue-depth high-water mark at snapshot time
    queue_depth_high_water: int = 0
    #: publications that travelled inside an egress batch so far
    batched_publications: int = 0
    #: exact count of missed (expected but undelivered) notifications so
    #: far — bookkeeping; under merging the raw counter difference would
    #: let false positives mask genuine misses
    missed_count: int = 0

    def diff(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Counter deltas from ``earlier`` to this snapshot.

        Returns a plain dictionary with one entry per counter plus the
        derived ``missed_notifications`` and ``delivery_ratio`` of the
        interval.  Bookkeeping fields (latency sample counts, queue
        high-water marks) are omitted, and the merging-only counters
        (false positives, merged advertisements, dead letters) appear
        only when they moved; :meth:`NetworkMetrics.diff` layers the
        latency statistics on top when latency tracking is active.
        """
        delta = {
            spec.name: getattr(self, spec.name) - getattr(earlier, spec.name)
            for spec in fields(self)
        }
        # The exact missed count comes from the oracle bookkeeping; the
        # counter difference is the fallback for metrics maintained by
        # hand.  Under merging the bookkeeping dominates (false positives
        # inflate ``notifications`` and would mask genuine misses).
        missed = max(
            self.missed_count - earlier.missed_count,
            (self.expected_notifications - earlier.expected_notifications)
            - (self.notifications - earlier.notifications),
            0,
        )
        for name in _BOOKKEEPING_FIELDS:
            delta.pop(name, None)
        for name in _REDUCTION_FIELDS:
            if not delta.get(name):
                delta.pop(name, None)
        if "merge_false_volume" in delta:
            delta["merge_false_volume"] = round(delta["merge_false_volume"], 6)
        expected = delta["expected_notifications"]
        delta["missed_notifications"] = missed
        delta["delivery_ratio"] = (
            1.0 if expected == 0 else round((expected - missed) / expected, 6)
        )
        return delta


class NetworkMetrics:
    """Counters accumulated by a :class:`~repro.broker.network.BrokerNetwork`.

    Every counter below lives in an
    :class:`~repro.obs.instruments.InstrumentRegistry` (under
    ``network.<counter name>``) and is exposed as a generated property,
    so attribute reads/writes — including the pervasive ``+=`` call
    sites — behave exactly as the former dataclass fields did.  Pass
    ``registry`` to share the run's single registry with the
    observability layer; by default each instance owns a private one.

    Attributes
    ----------
    subscription_messages:
        Broker-to-broker subscription message hops (the traffic the paper's
        covering optimisations aim to reduce).
    unsubscription_messages:
        Broker-to-broker unsubscription message hops.
    publication_messages:
        Broker-to-broker publication message hops (an egress batch counts
        as one hop however many publications it carries).
    notifications:
        Notifications delivered to local subscribers.
    expected_notifications:
        Notifications a lossless (flooding) system would have delivered,
        computed from the global-oracle matching of every publication
        against every subscription in the system.
    suppressed_subscriptions:
        Per-link forwarding decisions where a broker withheld a subscription
        because it was (probably) covered by what that neighbour already
        knows.
    subsumption_checks:
        Number of per-link covering decisions taken by brokers (including
        the re-advertisement re-checks run when a coverer unsubscribes).
    rspc_iterations:
        Total random guesses spent by the probabilistic checker across the
        network.
    false_positive_notifications:
        Notifications delivered through a merged filter although the
        subscriber's own subscription did not match the publication — the
        imprecision cost of the merging reduction strategies (always 0
        under the covering strategies).
    merged_advertisements:
        Per-link decisions that replaced exact advertisements with a
        merged bounding box.
    merge_false_volume:
        Total over-approximated volume those merges introduced.
    dead_letter_publications:
        Publications a neighbour routed to a broker where nothing matched
        (dead-end traffic attracted by merged advertisements).
    batched_publications:
        Publications that travelled inside an egress batch (0 unless the
        kernel's ``batch_size`` > 1).
    delivery_latencies:
        Virtual-time end-to-end latency of every delivered notification,
        in delivery order (all 0.0 under the zero latency model).
    queue_depth_high_water:
        Deepest the kernel's pending-delivery queue ever got.
    track_latency:
        Whether latency statistics belong in summaries and phase diffs
        (set by the network when a non-default latency model is active, so
        latency-free runs keep their historical metric dictionaries).
    """

    #: registry-backed counters (``network.<name>`` Counter instruments)
    _COUNTER_FIELDS = (
        "subscription_messages",
        "unsubscription_messages",
        "publication_messages",
        "notifications",
        "expected_notifications",
        "suppressed_subscriptions",
        "subsumption_checks",
        "rspc_iterations",
        "false_positive_notifications",
        "merged_advertisements",
        "merge_false_volume",
        "dead_letter_publications",
        "batched_publications",
    )
    #: registry-backed levels (``network.<name>`` Gauge instruments)
    _GAUGE_FIELDS = (
        "queue_depth_high_water",
        # high-water mark of the current phase interval (reset at each
        # :meth:`~repro.broker.network.BrokerNetwork.mark_phase`)
        "phase_queue_depth_high_water",
    )

    def __init__(
        self,
        track_latency: bool = False,
        registry: Optional[InstrumentRegistry] = None,
    ):
        self.registry = registry if registry is not None else InstrumentRegistry()
        self.track_latency = track_latency
        self._counters = {
            name: self.registry.counter(f"network.{name}")
            for name in self._COUNTER_FIELDS
        }
        self._gauges = {
            name: self.registry.gauge(f"network.{name}")
            for name in self._GAUGE_FIELDS
        }
        #: delivery-latency samples live in a registry histogram; the
        #: :attr:`delivery_latencies` property exposes its raw sample
        #: list, so in-order extends and index slicing keep working
        self._latency_histogram = self.registry.histogram(
            "network.delivery_latency"
        )
        self.delivered: List[NotificationRecord] = []
        self.missed: List[NotificationRecord] = []
        #: delivered notifications whose subscription did not actually
        #: match the publication (merged-filter false positives)
        self.false_positives: List[NotificationRecord] = []

    @property
    def delivery_latencies(self) -> List[float]:
        """The delivery-latency sample list, in delivery order."""
        return self._latency_histogram.samples

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"NetworkMetrics(notifications={self.notifications}, "
            f"expected={self.expected_notifications}, "
            f"track_latency={self.track_latency})"
        )

    @property
    def delivery_ratio(self) -> float:
        """Fraction of *owed* notifications delivered (1.0 when none owed).

        False-positive deliveries do not count toward the ratio, so a
        merging run cannot mask misses with spurious traffic.
        """
        if self.expected_notifications == 0:
            return 1.0
        owed = self.expected_notifications
        return (owed - self.missed_notifications) / owed

    @property
    def missed_notifications(self) -> int:
        """Expected notifications that never reached their subscriber.

        The oracle's missed list is exact; the counter difference is the
        fallback for hand-maintained metrics (false positives inflate
        ``notifications``, so under merging the list dominates).
        """
        return max(
            len(self.missed),
            self.expected_notifications - self.notifications,
            0,
        )

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current counters."""
        return MetricsSnapshot(
            subscription_messages=self.subscription_messages,
            unsubscription_messages=self.unsubscription_messages,
            publication_messages=self.publication_messages,
            notifications=self.notifications,
            expected_notifications=self.expected_notifications,
            suppressed_subscriptions=self.suppressed_subscriptions,
            subsumption_checks=self.subsumption_checks,
            rspc_iterations=self.rspc_iterations,
            false_positive_notifications=self.false_positive_notifications,
            merged_advertisements=self.merged_advertisements,
            merge_false_volume=self.merge_false_volume,
            dead_letter_publications=self.dead_letter_publications,
            delivery_latency_count=len(self.delivery_latencies),
            queue_depth_high_water=self.queue_depth_high_water,
            batched_publications=self.batched_publications,
            missed_count=len(self.missed),
        )

    def diff(self, earlier: MetricsSnapshot) -> Dict[str, float]:
        """Counter deltas since ``earlier`` (see :meth:`MetricsSnapshot.diff`).

        When latency tracking is active the interval's delivery-latency
        percentiles, the kernel queue high-water mark and the batched
        publication delta are included as well.  Note that
        ``queue_depth_high_water`` is the high-water of the *current phase
        interval* (since the owning network's last ``mark_phase``), not of
        the span back to ``earlier``: interval maxima are only tracked at
        phase granularity, and the runner always diffs against the latest
        phase snapshot.  All other keys genuinely span ``earlier`` → now.
        """
        delta = self.snapshot().diff(earlier)
        if self.track_latency:
            delta.update(
                _latency_stats(
                    self.delivery_latencies[earlier.delivery_latency_count:]
                )
            )
            delta["queue_depth_high_water"] = self.phase_queue_depth_high_water
        batched = self.batched_publications - earlier.batched_publications
        if batched:
            delta["batched_publications"] = batched
        return delta

    def latency_histogram(
        self, bins: int = 20
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of the delivery latencies: ``(counts, bin edges)``."""
        if not self.delivery_latencies:
            return np.zeros(bins, dtype=int), np.linspace(0.0, 1.0, bins + 1)
        return np.histogram(np.asarray(self.delivery_latencies), bins=bins)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary view used by the experiment reports."""
        summary = {
            "subscription_messages": self.subscription_messages,
            "unsubscription_messages": self.unsubscription_messages,
            "publication_messages": self.publication_messages,
            "notifications": self.notifications,
            "expected_notifications": self.expected_notifications,
            "missed_notifications": self.missed_notifications,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "suppressed_subscriptions": self.suppressed_subscriptions,
            "subsumption_checks": self.subsumption_checks,
            "rspc_iterations": self.rspc_iterations,
        }
        if self.track_latency:
            summary.update(_latency_stats(self.delivery_latencies))
            summary["queue_depth_high_water"] = self.queue_depth_high_water
        if self.batched_publications:
            summary["batched_publications"] = self.batched_publications
        if self.merged_advertisements:
            summary["merged_advertisements"] = self.merged_advertisements
            summary["merge_false_volume"] = round(self.merge_false_volume, 6)
        if self.false_positive_notifications:
            summary["false_positive_notifications"] = (
                self.false_positive_notifications
            )
        if self.dead_letter_publications:
            summary["dead_letter_publications"] = self.dead_letter_publications
        return summary


def _counter_property(name: str) -> property:
    def _get(self: NetworkMetrics):
        return self._counters[name].value

    def _set(self: NetworkMetrics, value) -> None:
        self._counters[name].value = value

    return property(_get, _set, doc=f"Registry-backed counter ``network.{name}``.")


def _gauge_property(name: str) -> property:
    def _get(self: NetworkMetrics):
        return self._gauges[name].value

    def _set(self: NetworkMetrics, value) -> None:
        self._gauges[name].value = value

    return property(_get, _set, doc=f"Registry-backed gauge ``network.{name}``.")


for _name in NetworkMetrics._COUNTER_FIELDS:
    setattr(NetworkMetrics, _name, _counter_property(_name))
for _name in NetworkMetrics._GAUGE_FIELDS:
    setattr(NetworkMetrics, _name, _gauge_property(_name))
del _name
