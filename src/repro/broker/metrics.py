"""Network-wide traffic and delivery metrics."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Set, Tuple

from repro.broker.messages import NotificationRecord

__all__ = ["MetricsSnapshot", "NetworkMetrics"]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of the :class:`NetworkMetrics` counters.

    Snapshots make per-phase accounting trivial: take one before and one
    after a workload phase and :meth:`diff` them — no manual field
    arithmetic.  Derived quantities (missed notifications, delivery ratio)
    are recomputed from the counter *deltas*, so a phase that delivered
    everything it owed reports a delivery ratio of 1.0 even when earlier
    phases lost notifications.
    """

    subscription_messages: int = 0
    unsubscription_messages: int = 0
    publication_messages: int = 0
    notifications: int = 0
    expected_notifications: int = 0
    suppressed_subscriptions: int = 0
    subsumption_checks: int = 0
    rspc_iterations: int = 0

    def diff(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Counter deltas from ``earlier`` to this snapshot.

        Returns a plain dictionary with one entry per counter plus the
        derived ``missed_notifications`` and ``delivery_ratio`` of the
        interval.
        """
        delta = {
            spec.name: getattr(self, spec.name) - getattr(earlier, spec.name)
            for spec in fields(self)
        }
        expected = delta["expected_notifications"]
        delivered = delta["notifications"]
        delta["missed_notifications"] = max(expected - delivered, 0)
        delta["delivery_ratio"] = (
            1.0 if expected == 0 else round(delivered / expected, 6)
        )
        return delta


@dataclass
class NetworkMetrics:
    """Counters accumulated by a :class:`~repro.broker.network.BrokerNetwork`.

    Attributes
    ----------
    subscription_messages:
        Broker-to-broker subscription message hops (the traffic the paper's
        covering optimisations aim to reduce).
    unsubscription_messages:
        Broker-to-broker unsubscription message hops.
    publication_messages:
        Broker-to-broker publication message hops.
    notifications:
        Notifications delivered to local subscribers.
    expected_notifications:
        Notifications a lossless (flooding) system would have delivered,
        computed from the global-oracle matching of every publication
        against every subscription in the system.
    suppressed_subscriptions:
        Per-link forwarding decisions where a broker withheld a subscription
        because it was (probably) covered by what that neighbour already
        knows.
    subsumption_checks:
        Number of per-link covering decisions taken by brokers.
    rspc_iterations:
        Total random guesses spent by the probabilistic checker across the
        network.
    """

    subscription_messages: int = 0
    unsubscription_messages: int = 0
    publication_messages: int = 0
    notifications: int = 0
    expected_notifications: int = 0
    suppressed_subscriptions: int = 0
    subsumption_checks: int = 0
    rspc_iterations: int = 0
    delivered: List[NotificationRecord] = field(default_factory=list)
    missed: List[NotificationRecord] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / expected notifications (1.0 when nothing expected)."""
        if self.expected_notifications == 0:
            return 1.0
        return self.notifications / self.expected_notifications

    @property
    def missed_notifications(self) -> int:
        """Expected notifications that never reached their subscriber."""
        return max(self.expected_notifications - self.notifications, 0)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current counters."""
        return MetricsSnapshot(
            subscription_messages=self.subscription_messages,
            unsubscription_messages=self.unsubscription_messages,
            publication_messages=self.publication_messages,
            notifications=self.notifications,
            expected_notifications=self.expected_notifications,
            suppressed_subscriptions=self.suppressed_subscriptions,
            subsumption_checks=self.subsumption_checks,
            rspc_iterations=self.rspc_iterations,
        )

    def diff(self, earlier: MetricsSnapshot) -> Dict[str, float]:
        """Counter deltas since ``earlier`` (see :meth:`MetricsSnapshot.diff`)."""
        return self.snapshot().diff(earlier)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary view used by the experiment reports."""
        return {
            "subscription_messages": self.subscription_messages,
            "unsubscription_messages": self.unsubscription_messages,
            "publication_messages": self.publication_messages,
            "notifications": self.notifications,
            "expected_notifications": self.expected_notifications,
            "missed_notifications": self.missed_notifications,
            "delivery_ratio": round(self.delivery_ratio, 6),
            "suppressed_subscriptions": self.suppressed_subscriptions,
            "subsumption_checks": self.subsumption_checks,
            "rspc_iterations": self.rspc_iterations,
        }
