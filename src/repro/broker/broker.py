"""A single publish/subscribe broker.

Brokers implement the behaviour described in Section 2 of the paper:

* a new subscription received from a local client or a neighbour is stored
  in the routing table and — unless a covering decision suppresses it —
  forwarded to every other neighbour (subscription flooding);
* a publication received from a local client or a neighbour is matched
  against the routing table and forwarded along the reverse path of each
  matching subscription, or delivered to the local subscriber that issued
  it (reverse path forwarding);
* the per-link reduction decision is pluggable
  (:mod:`repro.core.policies`): ``none`` (always forward), ``pairwise``
  (classical single-subscription covering), ``group`` (the paper's
  probabilistic union covering), ``merging`` (advertise merged bounding
  boxes upstream — smaller routing state, false-positive traffic and
  deliveries) or ``hybrid`` (cover first, merge the residue).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.broker.messages import (
    Message,
    NotificationRecord,
    PublicationMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from repro.broker.routing import RouteEntry, RoutingTable, SourceKind
from repro.core.arena import CandidateSet
from repro.core.merging import cheapest_merge
from repro.core.policies import (
    DEFAULT_MERGE_BUDGET,
    ReductionDecision,
    ReductionStrategy,
    make_strategy,
)
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker, is_deterministic_result
from repro.model.subscriptions import Subscription

__all__ = ["Broker", "SubscriptionDecision"]


@dataclass
class SubscriptionDecision:
    """Reduction decision for one subscription toward one neighbour.

    Covering-based routing decides *per link* whether a subscription still
    has to be forwarded: the candidate set is exactly the set of
    subscriptions this broker has previously forwarded to that neighbour
    (what the neighbour already knows from us), which reproduces the
    Figure 1 walkthrough where ``B4`` forwards ``s2`` to ``B3`` but not to
    ``B5``/``B7``.
    """

    broker: str
    subscription_id: str
    neighbor: str
    forwarded: bool
    candidates_considered: int
    rspc_iterations: int = 0
    #: identifiers of the previously forwarded subscriptions the decision
    #: relied on to suppress forwarding (the single coverer under
    #: ``pairwise``, the MCS minimized cover set under ``group``); empty
    #: when the subscription was forwarded
    covered_by: Tuple[str, ...] = ()
    #: the bounding box advertised instead of the subscription, when the
    #: strategy replaced it (and ``replaced``) with a merge
    merged: Optional[Subscription] = None
    #: previously forwarded advertisement ids the merged box absorbs
    replaced: Tuple[str, ...] = ()
    #: over-approximated volume introduced by the merge (0 otherwise)
    false_volume: float = 0.0


@dataclass
class _LocalMergeGroup:
    """One merged delivery group over a broker's local subscriptions."""

    #: bounding box of the members' subscriptions (the matched filter)
    filter: Subscription
    #: the local route entries the group represents
    members: List[RouteEntry] = field(default_factory=list)


class Broker:
    """One node of the broker overlay.

    Parameters
    ----------
    broker_id:
        Unique identifier of the broker.
    neighbors:
        Identifiers of the directly connected brokers.
    policy:
        Reduction strategy applied when deciding whether (and in what
        form) to propagate a subscription; a name from
        :data:`~repro.core.policies.STRATEGY_NAMES` or a strategy
        instance.
    checker:
        Group-subsumption checker used by the probabilistic strategies
        (one per broker so each has an independent random stream).
    merge_budget:
        False-volume budget of the merging strategies (ignored by the
        covering-only ones).
    matcher_backend:
        Matcher backend of the routing table's forwarding lookup (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`); observable
        routing behaviour is identical for every backend.
    dedup_window:
        Maximum number of recently seen publication identifiers kept for
        loop suppression.  Duplicates can only arrive while a publication
        is still in flight (each broker forwards it at most once), and the
        network caps every timed drain at ``dedup_window`` concurrent
        publications, so no identifier is ever evicted before its last
        in-flight duplicate arrives; the bounded window therefore keeps
        memory flat over unbounded publication streams without changing
        delivery behaviour.
    """

    def __init__(
        self,
        broker_id: str,
        neighbors: Sequence[str] = (),
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
        matcher_backend: str = "linear",
        dedup_window: int = 4096,
        record_latencies: bool = False,
        merge_budget: float = DEFAULT_MERGE_BUDGET,
        obs=None,
    ):
        if dedup_window < 1:
            raise ValueError("dedup_window must be positive")
        #: optional :class:`~repro.obs.probes.ObsProbe`; ``None`` (the
        #: default) keeps every handler on the pre-observability path
        self._obs = obs
        self.id = broker_id
        self.neighbors: List[str] = list(neighbors)
        self._checker = checker or SubsumptionChecker()
        self.strategy: ReductionStrategy = make_strategy(
            policy, checker=self._checker, merge_budget=merge_budget
        )
        self.policy = self.strategy.name
        self.merge_budget = merge_budget
        self.matcher_backend = matcher_backend
        self.routing = RoutingTable(matcher_backend=matcher_backend)
        self.dedup_window = dedup_window
        #: local subscribers attached to this broker
        self.local_subscribers: Set[str] = set()
        #: per-neighbour record of the subscriptions forwarded to it
        self.sent: Dict[str, Dict[str, "object"]] = {}
        #: per-neighbour candidate-set snapshot (contiguous bounds shared
        #: by consecutive covering decisions against an unchanged link)
        self._link_candidates: Dict[str, CandidateSet] = {}
        #: per-link decision memo: ``(subscription id, bounds bytes,
        #: snapshot fingerprint) -> ReductionDecision``.  Only decisions
        #: whose verdict consumed no randomness (and minted no merged
        #: advertisement) are stored, so a hit replays the exact decision
        #: the strategy would recompute — one dict probe instead of a full
        #: pipeline pass.  Any link mutation produces a snapshot with a
        #: fresh fingerprint, so a stale hit is impossible; the memo is a
        #: bounded LRU (:attr:`DECISION_MEMO_SIZE`) like the checker's
        #: verdict cache.
        self._decision_memo: "OrderedDict[tuple, ReductionDecision]" = OrderedDict()
        #: per-neighbour record of the subscriptions *withheld* from it:
        #: neighbour -> suppressed subscription id -> identifiers of the
        #: forwarded subscriptions whose coverage justified the suppression
        #: (the re-advertisement dependencies of the unsubscription path)
        self.suppressed: Dict[str, Dict[str, Set[str]]] = {}
        #: per-neighbour membership of merged advertisements: neighbour ->
        #: merged advertisement id -> original subscription ids the merged
        #: bounding box represents on that link
        self.merge_members: Dict[str, Dict[str, Set[str]]] = {}
        #: merged delivery groups over the local subscriptions (merging
        #: strategies only — models the broker matching one coarse filter
        #: per group and leaving the final cut to client-side filtering)
        self._local_groups: List[_LocalMergeGroup] = []
        #: publications received from a neighbour that matched nothing
        #: here — the dead-end traffic merged advertisements over-attract
        self.dead_letter_publications = 0
        #: notifications delivered through a merged local filter although
        #: the member's own subscription did not match the publication
        self.false_positive_deliveries = 0
        #: recently processed publication ids (bounded loop suppression)
        self._seen_publications: "OrderedDict[str, None]" = OrderedDict()
        #: covering decisions taken at this broker
        self.decisions: List[SubscriptionDecision] = []
        #: notifications delivered to local subscribers
        self.delivered: List[NotificationRecord] = []
        #: whether to record per-notification delivery latency (enabled by
        #: the network when a non-default latency model is active, so
        #: untimed runs don't accumulate a list of zeros)
        self.record_latencies = record_latencies
        #: virtual-time delivery latency of each notification in
        #: :attr:`delivered` (parallel list; empty unless
        #: :attr:`record_latencies`)
        self.delivered_latencies: List[float] = []

    @property
    def checker(self) -> SubsumptionChecker:
        """The group-subsumption checker backing the reduction strategy."""
        return self._checker

    @checker.setter
    def checker(self, value: SubsumptionChecker) -> None:
        # Keep the strategy in sync, so swapping a broker's checker (the
        # failure-injection tests do) swaps the one actually consulted.
        self._checker = value
        if hasattr(self.strategy, "checker"):
            self.strategy.checker = value

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, neighbor_id: str) -> None:
        """Add a neighbouring broker."""
        if neighbor_id != self.id and neighbor_id not in self.neighbors:
            self.neighbors.append(neighbor_id)

    def attach_subscriber(self, subscriber_id: str) -> None:
        """Register a local client."""
        self.local_subscribers.add(subscriber_id)

    #: capacity of the per-link decision memo (0 disables memoisation)
    DECISION_MEMO_SIZE = 4096

    # ------------------------------------------------------------------
    # Covering decision
    # ------------------------------------------------------------------
    def _candidates_for(self, neighbor: str) -> CandidateSet:
        """Snapshot of the advertisements already sent to ``neighbor``.

        The snapshot (candidate order, stacked bounds, cache
        fingerprint) is reused as long as the link's advertisement set is
        unchanged — one cheap id-tuple comparison per decision replaces
        re-stacking the candidate bounds, and lets the checker's verdict
        cache recognise repeated instances during re-advertisement
        storms.  Any membership change yields a fresh snapshot (and a
        fresh fingerprint, invalidating cached verdicts).
        """
        sent_here = self.sent.get(neighbor)
        if not sent_here:
            cached = self._link_candidates.get(neighbor)
            if cached is not None and not len(cached):
                return cached
            snapshot = CandidateSet(())
        else:
            ids = tuple(sent_here)
            cached = self._link_candidates.get(neighbor)
            if cached is not None and cached.ids == ids:
                return cached
            snapshot = CandidateSet(list(sent_here.values()))
        self._link_candidates[neighbor] = snapshot
        return snapshot

    def _memoizable(self, decision: ReductionDecision) -> bool:
        """Whether a decision may be replayed from the per-link memo.

        A merged advertisement mints a fresh subscription object per
        decision and must never be aliased across replays; a
        probabilistic verdict consumed random draws that a replay would
        skip, shifting the seeded stream of later checks.  Everything
        else (flood, pair-wise, and the checker's deterministic
        short-circuits) is a pure function of the key.
        """
        if decision.merged is not None:
            return False
        if decision.result is None:
            return True
        return is_deterministic_result(decision.result)

    def _decide(
        self, subscription: Subscription, candidates: CandidateSet
    ) -> ReductionDecision:
        """Run the reduction strategy through the per-link decision memo."""
        memo = self._decision_memo
        key = (
            subscription.id,
            subscription.lows.tobytes(),
            subscription.highs.tobytes(),
            candidates.fingerprint,
        )
        decision = memo.get(key)
        if decision is not None:
            memo.move_to_end(key)
            return decision
        decision = self.strategy.decide(subscription, candidates)
        if self.DECISION_MEMO_SIZE and self._memoizable(decision):
            memo[key] = decision
            while len(memo) > self.DECISION_MEMO_SIZE:
                memo.popitem(last=False)
        return decision

    def _coverage_decision(
        self, subscription, neighbor: str, message: Optional[Message] = None
    ) -> SubscriptionDecision:
        """Decide what to do with ``subscription`` toward ``neighbor``.

        The candidate set is the set of advertisements already forwarded
        to that neighbour; the verdict (forward / suppress / replace with
        a merged bounding box) comes from the broker's pluggable
        reduction strategy (one memo probe when an identical decision
        against an unchanged link was already taken).
        """
        obs = self._obs
        if obs is not None:
            obs.stage_push("broker.decision")
            try:
                decision = self._decide(
                    subscription, self._candidates_for(neighbor)
                )
            finally:
                obs.stage_pop()
            if obs.spans is not None and message is not None and message.trace_id:
                if decision.merged is not None:
                    status = "merged"
                elif decision.forwarded:
                    status = "forwarded"
                else:
                    status = "suppressed"
                obs.spans.record(
                    message.trace_id,
                    "subscription",
                    "decision",
                    message.delivered_at,
                    broker=self.id,
                    link=f"{self.id}->{neighbor}",
                    status=status,
                    subscription_id=subscription.id,
                    candidates=decision.candidates_considered,
                    rspc_iterations=decision.rspc_iterations,
                )
        else:
            decision = self._decide(
                subscription, self._candidates_for(neighbor)
            )
        return SubscriptionDecision(
            broker=self.id,
            subscription_id=subscription.id,
            neighbor=neighbor,
            forwarded=decision.forwarded,
            candidates_considered=decision.candidates_considered,
            rspc_iterations=decision.rspc_iterations,
            covered_by=decision.covered_by,
            merged=decision.merged,
            replaced=decision.replaced,
            false_volume=decision.false_volume,
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_subscription(
        self, message: SubscriptionMessage
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Process a subscription message.

        The subscription is always recorded in the routing table (so local
        delivery and reverse paths keep working); it is then forwarded to
        every neighbour except the sender, unless the per-link covering
        decision suppresses it.  Returns the outgoing messages and the
        per-link decisions taken.
        """
        subscription = message.subscription
        if subscription.id in self.routing:
            return [], []

        if message.sender is None:
            source = RouteEntry(
                subscription=subscription,
                source_kind=SourceKind.LOCAL,
                source_id=subscription.subscriber or "anonymous",
                origin=self.id,
            )
        else:
            source = RouteEntry(
                subscription=subscription,
                source_kind=SourceKind.NEIGHBOR,
                source_id=message.sender,
                origin=message.origin,
            )
        self.routing.add(source)
        if source.source_kind is SourceKind.LOCAL and self.strategy.merges:
            self._local_group_add(source)

        outgoing: List[Message] = []
        decisions: List[SubscriptionDecision] = []
        for neighbor in self.neighbors:
            if neighbor == message.sender:
                continue
            decision = self._coverage_decision(subscription, neighbor, message)
            decisions.append(decision)
            self.decisions.append(decision)
            if decision.merged is not None:
                outgoing.extend(
                    self._apply_merge_advertisement(decision, message)
                )
                continue
            if not decision.forwarded:
                self.suppressed.setdefault(neighbor, {})[subscription.id] = set(
                    decision.covered_by
                )
                continue
            self.sent.setdefault(neighbor, {})[subscription.id] = subscription
            outgoing.append(
                SubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription=subscription,
                    origin=message.origin or self.id,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                    trace_id=message.trace_id,
                )
            )
        return outgoing, decisions

    def _apply_merge_advertisement(
        self, decision: SubscriptionDecision, message: Message
    ) -> List[Message]:
        """Replace per-link advertisements with the decision's merged box.

        The merged advertisement is sent *before* the retractions of the
        advertisements it absorbs (links are FIFO), so the upstream broker
        never re-advertises the suppressed subscriptions in between.
        Suppressions that were justified by a replaced advertisement are
        rewritten to depend on the merged box — it covers everything the
        replaced advertisement covered.
        """
        neighbor = decision.neighbor
        merged = decision.merged
        sent_here = self.sent.setdefault(neighbor, {})
        members_here = self.merge_members.setdefault(neighbor, {})
        member_set: Set[str] = {decision.subscription_id}
        outgoing: List[Message] = [
            SubscriptionMessage(
                sender=self.id,
                recipient=neighbor,
                hops=message.hops + 1,
                subscription=merged,
                origin=self.id,
                injected_at=message.injected_at,
                sent_at=message.delivered_at,
                trace_id=message.trace_id,
            )
        ]
        for replaced_id in decision.replaced:
            sent_here.pop(replaced_id, None)
            member_set |= members_here.pop(replaced_id, {replaced_id})
            outgoing.append(
                UnsubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription_id=replaced_id,
                    origin=self.id,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                    trace_id=message.trace_id,
                )
            )
        sent_here[merged.id] = merged
        members_here[merged.id] = member_set
        replaced_ids = set(decision.replaced)
        for covers in self.suppressed.get(neighbor, {}).values():
            if covers & replaced_ids:
                covers -= replaced_ids
                covers.add(merged.id)
        return outgoing

    def handle_unsubscription(
        self, message: UnsubscriptionMessage
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Process an unsubscription, returning outgoing messages + decisions.

        Beyond cancelling the route on every link it was forwarded to, the
        departure of a subscription can *uncover* subscriptions whose
        forwarding it previously suppressed: those are re-checked against
        the link's remaining forwarded set and re-advertised when no longer
        covered, so downstream brokers regain the reverse path.  (Without
        this, a covered subscription's route is silently lost forever the
        moment its coverer unsubscribes.)  The re-check decisions are
        returned so the network accounts for them like any other covering
        decision.
        """
        uid = message.subscription_id
        entry = self.routing.remove(uid)
        if entry is None:
            return [], []
        if entry.source_kind is SourceKind.LOCAL and self.strategy.merges:
            self._local_group_remove(uid)
        outgoing: List[Message] = []
        decisions: List[SubscriptionDecision] = []
        for neighbor in self.neighbors:
            if neighbor == message.sender:
                continue
            # The departing subscription no longer needs re-advertising.
            self.suppressed.get(neighbor, {}).pop(uid, None)
            forwarded_here = self.sent.get(neighbor, {}).pop(uid, None)
            if forwarded_here is None:
                # The neighbour never learnt the subscription directly —
                # but it may ride inside a merged advertisement, whose
                # membership must shrink (and, once empty, be retracted).
                more_out, more_decisions = self._shrink_merged_membership(
                    neighbor, uid, message
                )
                outgoing.extend(more_out)
                decisions.extend(more_decisions)
                continue
            outgoing.append(
                UnsubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription_id=uid,
                    origin=message.origin,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                    trace_id=message.trace_id,
                )
            )
            more_out, more_decisions = self._readvertise_dependents(
                neighbor, uid, message
            )
            outgoing.extend(more_out)
            decisions.extend(more_decisions)
        return outgoing, decisions

    def _readvertise_dependents(
        self, neighbor: str, departed_id: str, message: Message
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Re-check subscriptions whose suppression relied on ``departed_id``.

        Each dependent is run through a fresh reduction decision against
        the link's remaining advertisements and re-advertised (directly or
        inside a new merged box) when no longer covered, so downstream
        brokers regain the reverse path.
        """
        suppressed_here = self.suppressed.get(neighbor, {})
        dependents = [
            sid for sid, covers in suppressed_here.items() if departed_id in covers
        ]
        outgoing: List[Message] = []
        decisions: List[SubscriptionDecision] = []
        for sid in dependents:
            del suppressed_here[sid]
            dependent = self.routing.get(sid)
            if dependent is None:
                continue
            decision = self._coverage_decision(
                dependent.subscription, neighbor, message
            )
            decisions.append(decision)
            self.decisions.append(decision)
            if decision.merged is not None:
                outgoing.extend(
                    self._apply_merge_advertisement(decision, message)
                )
                continue
            if not decision.forwarded:
                suppressed_here[sid] = set(decision.covered_by)
                continue
            self.sent.setdefault(neighbor, {})[sid] = dependent.subscription
            outgoing.append(
                SubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription=dependent.subscription,
                    origin=dependent.origin or self.id,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                    trace_id=message.trace_id,
                )
            )
        return outgoing, decisions

    def _shrink_merged_membership(
        self, neighbor: str, uid: str, message: Message
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Drop ``uid`` from the merged advertisement representing it.

        While other members remain, the (over-approximating) merged box
        stays advertised — retracting or re-tightening it would cost a
        message per departure, and coverage of the remaining members still
        holds.  When the last member leaves, the merged advertisement is
        retracted and suppressions that depended on it are re-checked.
        """
        members_here = self.merge_members.get(neighbor, {})
        for merged_id, member_set in members_here.items():
            if uid not in member_set:
                continue
            member_set.discard(uid)
            if member_set:
                return [], []
            del members_here[merged_id]
            self.sent.get(neighbor, {}).pop(merged_id, None)
            outgoing: List[Message] = [
                UnsubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription_id=merged_id,
                    origin=message.origin,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                    trace_id=message.trace_id,
                )
            ]
            more_out, decisions = self._readvertise_dependents(
                neighbor, merged_id, message
            )
            return outgoing + more_out, decisions
        return [], []

    def handle_publication(self, message: PublicationMessage) -> List[Message]:
        """Process a publication, delivering locally and forwarding.

        Forwarding follows the reverse path of every matching subscription:
        the publication is sent to each neighbour from which at least one
        matching subscription was received (at most once per neighbour) and
        delivered to each matching local subscriber.
        """
        publication = message.publication
        obs = self._obs
        trace = obs is not None and obs.spans is not None and bool(message.trace_id)

        if obs is not None:
            obs.stage_push("broker.dedup")
        duplicate = publication.id in self._seen_publications
        if not duplicate:
            self._seen_publications[publication.id] = None
            while len(self._seen_publications) > self.dedup_window:
                self._seen_publications.popitem(last=False)
        if obs is not None:
            obs.stage_pop()
        if trace:
            obs.spans.record(
                message.trace_id,
                "publication",
                "dedup",
                message.delivered_at,
                broker=self.id,
                status="duplicate" if duplicate else "fresh",
                publication_id=publication.id,
            )
        if duplicate:
            return []

        if obs is not None:
            obs.stage_push("broker.route_lookup")
            try:
                matching, route_tests = self.routing.matching_entries_with_tests(
                    publication
                )
            finally:
                obs.stage_pop()
            if trace:
                obs.spans.record(
                    message.trace_id,
                    "publication",
                    "route-lookup",
                    message.delivered_at,
                    broker=self.id,
                    matches=len(matching),
                    tests=route_tests,
                )
            obs.stage_push("broker.match_forward")
        else:
            matching = self.routing.matching_entries(publication)
        targets, delivered_any = self._match_and_forward(message, matching)
        if obs is not None:
            obs.stage_pop()
            if trace:
                self._record_match_span(message, delivered_any, targets)

        return self._forwarded_copies(message, targets)

    def handle_publication_batch(
        self, messages: Sequence[PublicationMessage], values=None
    ) -> List[List[Message]]:
        """Process several same-instant publications in one batched pass.

        The batch travels the matching stack as a unit: one bounded-window
        dedup sweep over the batch, one
        :meth:`~repro.broker.routing.RoutingTable.matching_entries_batch`
        lookup for every fresh publication (``values`` optionally carries
        the batch's points pre-stacked as a ``(B, m)`` array), then the
        per-publication delivery/forwarding bookkeeping in original order.
        Returns one outgoing-message list per input message (empty for
        deduplicated members) so the caller can restore any global
        scheduling order; deliveries, forwards, dead-letter accounting and
        each per-message outgoing list are identical to calling
        :meth:`handle_publication` per message.
        """
        obs = self._obs
        spans = obs.spans if obs is not None else None

        if obs is not None:
            obs.stage_push("broker.dedup")
        seen = self._seen_publications
        fresh: List[PublicationMessage] = []
        duplicate_flags: List[bool] = []
        for message in messages:
            publication_id = message.publication.id
            duplicate = publication_id in seen
            duplicate_flags.append(duplicate)
            if not duplicate:
                seen[publication_id] = None
                while len(seen) > self.dedup_window:
                    seen.popitem(last=False)
                fresh.append(message)
        if obs is not None:
            obs.stage_pop()
        if spans is not None:
            for message, duplicate in zip(messages, duplicate_flags):
                if message.trace_id:
                    spans.record(
                        message.trace_id,
                        "publication",
                        "dedup",
                        message.delivered_at,
                        broker=self.id,
                        status="duplicate" if duplicate else "fresh",
                        publication_id=message.publication.id,
                    )
        outgoing: List[List[Message]] = [[] for _ in messages]
        if not fresh:
            return outgoing

        if values is not None and len(fresh) != len(messages):
            values = None  # the pre-stacked points no longer line up
        if obs is not None:
            obs.stage_push("broker.route_lookup")
        try:
            lookups = self.routing.matching_entries_batch(
                [message.publication for message in fresh], values
            )
        finally:
            if obs is not None:
                obs.stage_pop()
        if spans is not None:
            for message, (matching, route_tests) in zip(fresh, lookups):
                if message.trace_id:
                    spans.record(
                        message.trace_id,
                        "publication",
                        "route-lookup",
                        message.delivered_at,
                        broker=self.id,
                        matches=len(matching),
                        tests=route_tests,
                    )

        if obs is not None:
            obs.stage_push("broker.match_forward")
        fresh_iter = iter(zip(fresh, lookups))
        try:
            for position, duplicate in enumerate(duplicate_flags):
                if duplicate:
                    continue
                message, (matching, _tests) = next(fresh_iter)
                targets, delivered_any = self._match_and_forward(message, matching)
                if spans is not None and message.trace_id:
                    self._record_match_span(message, delivered_any, targets)
                outgoing[position] = self._forwarded_copies(message, targets)
        finally:
            if obs is not None:
                obs.stage_pop()
        return outgoing

    def _match_and_forward(
        self, message: PublicationMessage, matching: Sequence[RouteEntry]
    ) -> Tuple[List[str], bool]:
        """Deliver locally and pick forwarding targets for one publication."""
        publication = message.publication
        targets: List[str] = []
        delivered_any = False
        for entry in matching:
            if entry.source_kind is SourceKind.LOCAL:
                if not self.strategy.merges:
                    self._deliver(entry, message)
                    delivered_any = True
            elif entry.source_id != message.sender and entry.source_id not in targets:
                targets.append(entry.source_id)
        if self.strategy.merges:
            # Local delivery runs through the merged group filters: every
            # member of a matching group is notified, even when its own
            # subscription does not match (client-side filtering) — those
            # extra notifications are the merge's false positives.
            delivered_any = self._deliver_merged_local(publication, message)
        if message.sender is not None and not delivered_any and not targets:
            # A neighbour routed the publication here although nothing
            # matches: dead-end traffic attracted by an over-approximating
            # (merged) advertisement.
            self.dead_letter_publications += 1
        return targets, delivered_any

    def _record_match_span(
        self, message: PublicationMessage, delivered_any: bool, targets: List[str]
    ) -> None:
        if delivered_any or targets:
            status = "forwarded" if targets else "delivered"
        else:
            status = "dead-end"
        self._obs.spans.record(
            message.trace_id,
            "publication",
            "match",
            message.delivered_at,
            broker=self.id,
            status=status,
            local=int(delivered_any),
            forwards=len(targets),
        )

    def _forwarded_copies(
        self, message: PublicationMessage, targets: List[str]
    ) -> List[Message]:
        publication = message.publication
        return [
            PublicationMessage(
                sender=self.id,
                recipient=target,
                hops=message.hops + 1,
                publication=publication,
                origin=message.origin or self.id,
                injected_at=message.injected_at,
                sent_at=message.delivered_at,
                trace_id=message.trace_id,
            )
            for target in targets
        ]

    def _deliver(self, entry: RouteEntry, message: PublicationMessage) -> None:
        """Record one notification to a local subscriber."""
        self.delivered.append(
            NotificationRecord(
                broker=self.id,
                subscriber=entry.source_id,
                subscription_id=entry.subscription.id,
                publication_id=message.publication.id,
            )
        )
        if self.record_latencies:
            self.delivered_latencies.append(
                message.delivered_at - message.injected_at
            )
        obs = self._obs
        if obs is not None and obs.spans is not None and message.trace_id:
            obs.spans.record(
                message.trace_id,
                "publication",
                "deliver",
                message.injected_at,
                message.delivered_at,
                broker=self.id,
                subscriber=entry.source_id,
                subscription_id=entry.subscription.id,
                publication_id=message.publication.id,
                hops=message.hops,
            )

    def _deliver_merged_local(
        self, publication, message: PublicationMessage
    ) -> bool:
        """Deliver through the merged local filters; returns whether any fired."""
        delivered = False
        for group in self._local_groups:
            if not group.filter.matches(publication):
                continue
            for entry in group.members:
                self._deliver(entry, message)
                delivered = True
                if not entry.subscription.matches(publication):
                    self.false_positive_deliveries += 1
        return delivered

    # ------------------------------------------------------------------
    # Merged local delivery groups
    # ------------------------------------------------------------------
    def _local_group_add(self, entry: RouteEntry) -> None:
        """Attach a local subscription to its cheapest in-budget group.

        Shares the merging strategies' greedy rule (`cheapest_merge`): the
        group whose filter absorbs the newcomer with the smallest relative
        false volume wins; when no group fits the budget the subscription
        seeds a group of its own.
        """
        found = cheapest_merge(
            entry.subscription,
            [group.filter for group in self._local_groups],
            self.merge_budget,
        )
        if found is None:
            self._local_groups.append(
                _LocalMergeGroup(filter=entry.subscription, members=[entry])
            )
            return
        group_index, outcome = found
        group = self._local_groups[group_index]
        group.filter = outcome.merged
        group.members.append(entry)

    def _local_group_remove(self, subscription_id: str) -> None:
        """Detach a local subscription from its group, re-tightening it."""
        for index, group in enumerate(self._local_groups):
            members = [
                entry
                for entry in group.members
                if entry.subscription.id != subscription_id
            ]
            if len(members) == len(group.members):
                continue
            if not members:
                del self._local_groups[index]
                return
            group.members = members
            hull = members[0].subscription
            for entry in members[1:]:
                hull = hull.union_hull(entry.subscription)
            group.filter = hull
            return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        """Number of subscriptions stored in the routing table."""
        return len(self.routing)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Broker({self.id!r}, neighbors={len(self.neighbors)}, "
            f"subscriptions={len(self.routing)})"
        )
