"""A single publish/subscribe broker.

Brokers implement the behaviour described in Section 2 of the paper:

* a new subscription received from a local client or a neighbour is stored
  in the routing table and — unless a covering decision suppresses it —
  forwarded to every other neighbour (subscription flooding);
* a publication received from a local client or a neighbour is matched
  against the routing table and forwarded along the reverse path of each
  matching subscription, or delivered to the local subscriber that issued
  it (reverse path forwarding);
* the covering decision is pluggable: ``none`` (always forward),
  ``pairwise`` (classical single-subscription covering) or ``group`` (the
  paper's probabilistic union covering).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.broker.messages import (
    Message,
    NotificationRecord,
    PublicationMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from repro.broker.routing import RouteEntry, RoutingTable, SourceKind
from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker

__all__ = ["Broker", "SubscriptionDecision"]


@dataclass
class SubscriptionDecision:
    """Covering decision for one subscription toward one neighbour.

    Covering-based routing decides *per link* whether a subscription still
    has to be forwarded: the candidate set is exactly the set of
    subscriptions this broker has previously forwarded to that neighbour
    (what the neighbour already knows from us), which reproduces the
    Figure 1 walkthrough where ``B4`` forwards ``s2`` to ``B3`` but not to
    ``B5``/``B7``.
    """

    broker: str
    subscription_id: str
    neighbor: str
    forwarded: bool
    candidates_considered: int
    rspc_iterations: int = 0
    #: identifiers of the previously forwarded subscriptions the decision
    #: relied on to suppress forwarding (the single coverer under
    #: ``pairwise``, the whole candidate set under ``group``); empty when
    #: the subscription was forwarded
    covered_by: Tuple[str, ...] = ()


class Broker:
    """One node of the broker overlay.

    Parameters
    ----------
    broker_id:
        Unique identifier of the broker.
    neighbors:
        Identifiers of the directly connected brokers.
    policy:
        Covering policy applied when deciding whether to propagate a
        subscription.
    checker:
        Group-subsumption checker used by the ``group`` policy (one per
        broker so each has an independent random stream).
    matcher_backend:
        Matcher backend of the routing table's forwarding lookup (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`); observable
        routing behaviour is identical for every backend.
    dedup_window:
        Maximum number of recently seen publication identifiers kept for
        loop suppression.  Duplicates can only arrive while a publication
        is still in flight (each broker forwards it at most once), and the
        network caps every timed drain at ``dedup_window`` concurrent
        publications, so no identifier is ever evicted before its last
        in-flight duplicate arrives; the bounded window therefore keeps
        memory flat over unbounded publication streams without changing
        delivery behaviour.
    """

    def __init__(
        self,
        broker_id: str,
        neighbors: Sequence[str] = (),
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
        matcher_backend: str = "linear",
        dedup_window: int = 4096,
        record_latencies: bool = False,
    ):
        if dedup_window < 1:
            raise ValueError("dedup_window must be positive")
        self.id = broker_id
        self.neighbors: List[str] = list(neighbors)
        self.policy = CoveringPolicyName(policy)
        self.checker = checker or SubsumptionChecker()
        self.matcher_backend = matcher_backend
        self.routing = RoutingTable(matcher_backend=matcher_backend)
        self.dedup_window = dedup_window
        #: local subscribers attached to this broker
        self.local_subscribers: Set[str] = set()
        #: per-neighbour record of the subscriptions forwarded to it
        self.sent: Dict[str, Dict[str, "object"]] = {}
        #: per-neighbour record of the subscriptions *withheld* from it:
        #: neighbour -> suppressed subscription id -> identifiers of the
        #: forwarded subscriptions whose coverage justified the suppression
        #: (the re-advertisement dependencies of the unsubscription path)
        self.suppressed: Dict[str, Dict[str, Set[str]]] = {}
        #: recently processed publication ids (bounded loop suppression)
        self._seen_publications: "OrderedDict[str, None]" = OrderedDict()
        #: covering decisions taken at this broker
        self.decisions: List[SubscriptionDecision] = []
        #: notifications delivered to local subscribers
        self.delivered: List[NotificationRecord] = []
        #: whether to record per-notification delivery latency (enabled by
        #: the network when a non-default latency model is active, so
        #: untimed runs don't accumulate a list of zeros)
        self.record_latencies = record_latencies
        #: virtual-time delivery latency of each notification in
        #: :attr:`delivered` (parallel list; empty unless
        #: :attr:`record_latencies`)
        self.delivered_latencies: List[float] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, neighbor_id: str) -> None:
        """Add a neighbouring broker."""
        if neighbor_id != self.id and neighbor_id not in self.neighbors:
            self.neighbors.append(neighbor_id)

    def attach_subscriber(self, subscriber_id: str) -> None:
        """Register a local client."""
        self.local_subscribers.add(subscriber_id)

    # ------------------------------------------------------------------
    # Covering decision
    # ------------------------------------------------------------------
    def _coverage_decision(
        self, subscription, neighbor: str
    ) -> SubscriptionDecision:
        """Decide whether ``subscription`` must be forwarded to ``neighbor``.

        The candidate set is the set of subscriptions already forwarded to
        that neighbour: if those jointly (group policy) or singly
        (pair-wise policy) cover the newcomer, the neighbour learns nothing
        new from it and the message is suppressed.
        """
        candidates = list(self.sent.get(neighbor, {}).values())
        if self.policy is CoveringPolicyName.NONE or not candidates:
            return SubscriptionDecision(
                broker=self.id,
                subscription_id=subscription.id,
                neighbor=neighbor,
                forwarded=True,
                candidates_considered=len(candidates),
            )
        if self.policy is CoveringPolicyName.PAIRWISE:
            outcome = PairwiseCoverageChecker.check(subscription, candidates)
            return SubscriptionDecision(
                broker=self.id,
                subscription_id=subscription.id,
                neighbor=neighbor,
                forwarded=not outcome.covered,
                candidates_considered=len(candidates),
                covered_by=(outcome.covering.id,) if outcome.covered else (),
            )
        result = self.checker.check(subscription, candidates)
        return SubscriptionDecision(
            broker=self.id,
            subscription_id=subscription.id,
            neighbor=neighbor,
            forwarded=not result.covered,
            candidates_considered=len(candidates),
            rspc_iterations=result.iterations_performed,
            # The group verdict is joint: any departure from the candidate
            # set can break the cover, so every candidate is a dependency.
            covered_by=(
                tuple(candidate.id for candidate in candidates)
                if result.covered
                else ()
            ),
        )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_subscription(
        self, message: SubscriptionMessage
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Process a subscription message.

        The subscription is always recorded in the routing table (so local
        delivery and reverse paths keep working); it is then forwarded to
        every neighbour except the sender, unless the per-link covering
        decision suppresses it.  Returns the outgoing messages and the
        per-link decisions taken.
        """
        subscription = message.subscription
        if subscription.id in self.routing:
            return [], []

        if message.sender is None:
            source = RouteEntry(
                subscription=subscription,
                source_kind=SourceKind.LOCAL,
                source_id=subscription.subscriber or "anonymous",
                origin=self.id,
            )
        else:
            source = RouteEntry(
                subscription=subscription,
                source_kind=SourceKind.NEIGHBOR,
                source_id=message.sender,
                origin=message.origin,
            )
        self.routing.add(source)

        outgoing: List[Message] = []
        decisions: List[SubscriptionDecision] = []
        for neighbor in self.neighbors:
            if neighbor == message.sender:
                continue
            decision = self._coverage_decision(subscription, neighbor)
            decisions.append(decision)
            self.decisions.append(decision)
            if not decision.forwarded:
                self.suppressed.setdefault(neighbor, {})[subscription.id] = set(
                    decision.covered_by
                )
                continue
            self.sent.setdefault(neighbor, {})[subscription.id] = subscription
            outgoing.append(
                SubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription=subscription,
                    origin=message.origin or self.id,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                )
            )
        return outgoing, decisions

    def handle_unsubscription(
        self, message: UnsubscriptionMessage
    ) -> Tuple[List[Message], List[SubscriptionDecision]]:
        """Process an unsubscription, returning outgoing messages + decisions.

        Beyond cancelling the route on every link it was forwarded to, the
        departure of a subscription can *uncover* subscriptions whose
        forwarding it previously suppressed: those are re-checked against
        the link's remaining forwarded set and re-advertised when no longer
        covered, so downstream brokers regain the reverse path.  (Without
        this, a covered subscription's route is silently lost forever the
        moment its coverer unsubscribes.)  The re-check decisions are
        returned so the network accounts for them like any other covering
        decision.
        """
        uid = message.subscription_id
        entry = self.routing.remove(uid)
        if entry is None:
            return [], []
        outgoing: List[Message] = []
        decisions: List[SubscriptionDecision] = []
        for neighbor in self.neighbors:
            if neighbor == message.sender:
                continue
            suppressed_here = self.suppressed.get(neighbor, {})
            # The departing subscription no longer needs re-advertising.
            suppressed_here.pop(uid, None)
            forwarded_here = self.sent.get(neighbor, {}).pop(uid, None)
            if forwarded_here is None:
                # The neighbour never learnt about this subscription, so
                # there is nothing to cancel in that direction — and no
                # suppression on this link can have depended on it.
                continue
            outgoing.append(
                UnsubscriptionMessage(
                    sender=self.id,
                    recipient=neighbor,
                    hops=message.hops + 1,
                    subscription_id=uid,
                    origin=message.origin,
                    injected_at=message.injected_at,
                    sent_at=message.delivered_at,
                )
            )
            # Re-advertise subscriptions whose suppression relied on the
            # departed coverer and are no longer covered on this link.
            dependents = [
                sid for sid, covers in suppressed_here.items() if uid in covers
            ]
            for sid in dependents:
                del suppressed_here[sid]
                dependent = self.routing.get(sid)
                if dependent is None:
                    continue
                decision = self._coverage_decision(dependent.subscription, neighbor)
                decisions.append(decision)
                self.decisions.append(decision)
                if not decision.forwarded:
                    suppressed_here[sid] = set(decision.covered_by)
                    continue
                self.sent.setdefault(neighbor, {})[sid] = dependent.subscription
                outgoing.append(
                    SubscriptionMessage(
                        sender=self.id,
                        recipient=neighbor,
                        hops=message.hops + 1,
                        subscription=dependent.subscription,
                        origin=dependent.origin or self.id,
                        injected_at=message.injected_at,
                        sent_at=message.delivered_at,
                    )
                )
        return outgoing, decisions

    def handle_publication(self, message: PublicationMessage) -> List[Message]:
        """Process a publication, delivering locally and forwarding.

        Forwarding follows the reverse path of every matching subscription:
        the publication is sent to each neighbour from which at least one
        matching subscription was received (at most once per neighbour) and
        delivered to each matching local subscriber.
        """
        publication = message.publication
        if publication.id in self._seen_publications:
            return []
        self._seen_publications[publication.id] = None
        while len(self._seen_publications) > self.dedup_window:
            self._seen_publications.popitem(last=False)

        matching = self.routing.matching_entries(publication)
        targets: List[str] = []
        for entry in matching:
            if entry.source_kind is SourceKind.LOCAL:
                self.delivered.append(
                    NotificationRecord(
                        broker=self.id,
                        subscriber=entry.source_id,
                        subscription_id=entry.subscription.id,
                        publication_id=publication.id,
                    )
                )
                if self.record_latencies:
                    self.delivered_latencies.append(
                        message.delivered_at - message.injected_at
                    )
            elif entry.source_id != message.sender and entry.source_id not in targets:
                targets.append(entry.source_id)

        return [
            PublicationMessage(
                sender=self.id,
                recipient=target,
                hops=message.hops + 1,
                publication=publication,
                origin=message.origin or self.id,
                injected_at=message.injected_at,
                sent_at=message.delivered_at,
            )
            for target in targets
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        """Number of subscriptions stored in the routing table."""
        return len(self.routing)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Broker({self.id!r}, neighbors={len(self.neighbors)}, "
            f"subscriptions={len(self.routing)})"
        )
