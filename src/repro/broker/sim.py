"""Virtual-time event-driven simulation kernel of the broker overlay.

The seed simulator pumped messages through a synchronous, untimed FIFO
``deque`` — every hop was instantaneous and the network had no notion of
time, so latency, queueing and batching were inexpressible.  This module
replaces that pump with a discrete-event kernel:

* :class:`EventKernel` keeps a priority queue of timestamped message
  deliveries and a virtual clock that jumps from delivery to delivery;
* every broker-to-broker hop is delayed by a pluggable per-link
  :class:`LatencyModel` — :class:`ZeroLatency` (the default, which makes
  the kernel degenerate to the seed's FIFO pump byte-for-byte),
  :class:`FixedLatency` and the seeded :class:`LognormalLatency`;
* deliveries on one directed link never overtake each other (per-link
  FIFO): a sampled latency that would reorder a link is clamped to the
  link's previous delivery time, which models a FIFO channel rather than
  independent datagrams;
* optional *egress batching*: publications a broker emits toward the same
  neighbour are coalesced into one
  :class:`~repro.broker.messages.PublicationBatchMessage` hop once
  ``batch_size`` of them accumulate (partial batches flush when a
  non-publication message needs the link, preserving FIFO causality, or
  when the kernel drains).

With the zero model every event is scheduled at time 0.0 and the heap
degenerates to insertion order — exactly the seed pump's global FIFO — so
all pre-kernel metrics and traces are reproduced unchanged.

Latency model specifications are strings so they can travel through
scenario specs, trace headers and the CLI::

    zero                     no latency (default)
    fixed                    1.0 virtual time units per hop
    fixed:0.25               0.25 units per hop
    lognormal                exp(N(0, 0.25)) units per hop, seeded
    lognormal:0.5,1.0        exp(N(0.5, 1.0)) units per hop, seeded
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.broker.messages import Message, PublicationBatchMessage, PublicationMessage
from repro.utils.rng import RandomSource, ensure_rng

__all__ = [
    "LATENCY_MODEL_NAMES",
    "LatencyModel",
    "ZeroLatency",
    "FixedLatency",
    "LognormalLatency",
    "make_latency_model",
    "parse_latency_model",
    "EventKernel",
]

#: latency model family names accepted by :func:`make_latency_model`
LATENCY_MODEL_NAMES = ("zero", "fixed", "lognormal")

#: a directed logical link (sending broker, receiving broker)
Link = Tuple[str, str]


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
class LatencyModel:
    """Per-link hop latency distribution.

    ``spec`` round-trips through :func:`make_latency_model`, which is how
    scenario specs and trace headers record the model.
    """

    #: family name (one of :data:`LATENCY_MODEL_NAMES`)
    name: str = "?"
    #: canonical spec string this model was built from
    spec: str = "?"

    def sample(self, sender: str, recipient: str) -> float:
        """Latency of one hop on the directed link ``sender -> recipient``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.spec!r})"


class ZeroLatency(LatencyModel):
    """Instantaneous hops — the seed simulator's semantics."""

    name = "zero"
    spec = "zero"

    def sample(self, sender: str, recipient: str) -> float:
        return 0.0


class FixedLatency(LatencyModel):
    """Every hop takes the same constant virtual time."""

    name = "fixed"

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError("fixed latency must be non-negative")
        self.delay = float(delay)
        self.spec = f"fixed:{self.delay:g}"

    def sample(self, sender: str, recipient: str) -> float:
        return self.delay


class LognormalLatency(LatencyModel):
    """Heavy-tailed per-hop latency: ``exp(N(mu, sigma))`` virtual units.

    The generator is seeded (by the owning network, from its own derived
    stream), so runs and replays sample identical latency sequences.
    """

    name = "lognormal"

    def __init__(self, mu: float = 0.0, sigma: float = 0.25, rng: RandomSource = None):
        if sigma < 0:
            raise ValueError("lognormal sigma must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.spec = f"lognormal:{self.mu:g},{self.sigma:g}"
        self._rng = ensure_rng(rng)

    def reseed(self, rng: RandomSource) -> None:
        """Swap the random stream (used when a network adopts the model)."""
        self._rng = ensure_rng(rng)

    def sample(self, sender: str, recipient: str) -> float:
        return float(self._rng.lognormal(self.mu, self.sigma))


def parse_latency_model(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """Parse (and validate) a latency-model spec string.

    Returns ``(family name, parameters)``; raises :class:`ValueError` on
    unknown families or malformed parameters, which is what lets
    :class:`~repro.scenarios.spec.ScenarioSpec` validate the field at
    construction time.
    """
    name, _, raw_params = str(spec).partition(":")
    if name not in LATENCY_MODEL_NAMES:
        raise ValueError(
            f"unknown latency model {name!r}; expected one of "
            f"{LATENCY_MODEL_NAMES}"
        )
    if not raw_params:
        return name, ()
    if name == "zero":
        raise ValueError("the zero latency model takes no parameters")
    try:
        params = tuple(float(part) for part in raw_params.split(","))
    except ValueError as exc:
        raise ValueError(f"malformed latency model spec {spec!r}") from exc
    limits = {"fixed": 1, "lognormal": 2}
    if len(params) > limits[name]:
        raise ValueError(
            f"latency model {name!r} takes at most {limits[name]} "
            f"parameter(s), got {len(params)} in {spec!r}"
        )
    if name == "fixed" and params and params[0] < 0:
        raise ValueError(f"fixed latency must be non-negative in {spec!r}")
    if name == "lognormal" and len(params) > 1 and params[1] < 0:
        raise ValueError(f"lognormal sigma must be non-negative in {spec!r}")
    return name, params


def make_latency_model(spec: str, rng: RandomSource = None) -> LatencyModel:
    """Instantiate a latency model from its spec string."""
    if isinstance(spec, LatencyModel):
        return spec
    name, params = parse_latency_model(spec)
    if name == "zero":
        return ZeroLatency()
    if name == "fixed":
        return FixedLatency(*params)
    return LognormalLatency(*params, rng=rng)


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
class EventKernel:
    """Priority-queue scheduler over timestamped message deliveries.

    Parameters
    ----------
    latency_model:
        Hop-latency distribution applied to every broker-to-broker link
        (client injections are instantaneous).
    batch_size:
        Egress batching factor: publications bound for the same link are
        coalesced into one batch hop once this many accumulate.  ``1``
        (the default) disables batching.
    obs:
        Optional :class:`~repro.obs.probes.ObsProbe`; when attached the
        kernel times its scheduling work and emits ``enqueued`` spans
        with queue depths.  ``None`` (the default) keeps the kernel on
        the exact pre-observability code path.
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        batch_size: int = 1,
        obs=None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.latency_model = latency_model or ZeroLatency()
        self.batch_size = batch_size
        self._obs = obs
        #: current virtual time (time of the last delivered event)
        self.now = 0.0
        self._heap: List[Tuple[float, int, Message]] = []
        self._sequence = 0
        #: per directed link: virtual time of the latest scheduled delivery
        self._link_clock: Dict[Link, float] = {}
        #: per directed link: publications awaiting a full batch
        self._egress: Dict[Link, List[PublicationMessage]] = {}
        #: total events scheduled over the kernel's lifetime
        self.scheduled = 0
        #: deepest the pending-event queue ever got (lifetime high-water)
        self.queue_depth_high_water = 0
        #: high-water mark since the last :meth:`reset_phase_high_water`
        #: (what per-phase metric diffs report)
        self.phase_queue_depth_high_water = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, message: Message) -> None:
        """Enqueue a message for future delivery.

        Local injections (``sender is None``) are delivered at the current
        virtual time; broker-to-broker hops are delayed by the latency
        model, clamped so deliveries on one directed link keep their send
        order (FIFO links).  Publications are diverted through the egress
        buffer when batching is on.
        """
        obs = self._obs
        if obs is not None:
            obs.stage_push("kernel.schedule")
            try:
                self._schedule(message)
            finally:
                obs.stage_pop()
            return
        self._schedule(message)

    def _schedule(self, message: Message) -> None:
        if (
            self.batch_size > 1
            and message.sender is not None
            and isinstance(message, PublicationMessage)
        ):
            link = (message.sender, message.recipient)
            pending = self._egress.setdefault(link, [])
            pending.append(message)
            if len(pending) >= self.batch_size:
                self._flush_link(link)
            return
        if message.sender is not None:
            # A control message must not overtake publications already
            # buffered for this link.
            self._flush_link((message.sender, message.recipient))
        self._push(message)

    def _push(self, message: Message) -> None:
        # Never schedule behind the virtual clock: a message can sit in an
        # egress buffer while unrelated traffic advances time, so its
        # recorded sent_at may be stale by the time the batch flushes.
        send_time = max(message.sent_at, self.now)
        if message.sender is None:
            deliver_at = send_time
        else:
            link = (message.sender, message.recipient)
            latency = self.latency_model.sample(*link)
            deliver_at = send_time + latency
            deliver_at = max(deliver_at, self._link_clock.get(link, 0.0))
            self._link_clock[link] = deliver_at
        message.delivered_at = deliver_at
        heapq.heappush(self._heap, (deliver_at, self._sequence, message))
        self._sequence += 1
        self.scheduled += 1
        if len(self._heap) > self.queue_depth_high_water:
            self.queue_depth_high_water = len(self._heap)
        if len(self._heap) > self.phase_queue_depth_high_water:
            self.phase_queue_depth_high_water = len(self._heap)
        if self._obs is not None:
            self._obs.on_enqueue(message, deliver_at, len(self._heap))

    def reset_phase_high_water(self) -> None:
        """Start a fresh per-phase queue-depth high-water interval."""
        self.phase_queue_depth_high_water = len(self._heap)

    def _flush_link(self, link: Link) -> None:
        pending = self._egress.pop(link, None)
        if not pending:
            return
        if len(pending) == 1:
            self._push(pending[0])
            return
        first = pending[0]
        self._push(
            PublicationBatchMessage(
                sender=first.sender,
                recipient=first.recipient,
                hops=first.hops,
                injected_at=first.injected_at,
                sent_at=first.sent_at,
                trace_id=first.trace_id,
                messages=pending,
            )
        )

    def _flush_all(self) -> None:
        for link in sorted(self._egress):
            self._flush_link(link)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of deliveries currently queued (egress buffers included)."""
        return len(self._heap) + sum(len(p) for p in self._egress.values())

    def drain(self) -> Iterator[Message]:
        """Deliver queued messages in timestamp order until quiescence.

        The caller processes each yielded message and schedules whatever
        it triggers before the next one is popped — the standard
        discrete-event loop.  Partial egress batches are flushed once the
        timed queue empties, so no publication is ever stranded.
        """
        while True:
            if not self._heap:
                if not self._egress:
                    return
                self._flush_all()
            deliver_at, _, message = heapq.heappop(self._heap)
            self.now = deliver_at
            yield message

    def drain_grouped(
        self,
    ) -> Iterator[Union[Message, List[PublicationMessage]]]:
        """:meth:`drain`, but same-instant publication hops pop as one run.

        Under the zero latency model a maximal run of consecutive plain
        publication hops with one delivery time is popped together and
        yielded as a single list in pop (sequence) order, so the consumer
        can process the whole delivery generation batched per receiving
        broker.  The run is exactly the prefix :meth:`drain` would have
        yielded one message at a time — everything a run member schedules
        carries a later sequence number at the same or a later time, so
        nothing can interleave into the run — which makes the identity
        obligation the *consumer's*: it must keep per-recipient processing
        order and reschedule the run's outgoing messages in original run
        order (see :meth:`~repro.broker.network.BrokerNetwork._drain`).
        Non-publication messages, singleton runs and timed models (whose
        queue-depth gauges reflect exact pop timing) are yielded one
        message at a time.
        """
        heap = self._heap
        group_enabled = self.latency_model.name == "zero"
        while True:
            if not heap:
                if not self._egress:
                    return
                self._flush_all()
            deliver_at, _, message = heapq.heappop(heap)
            self.now = deliver_at
            if not group_enabled or type(message) is not PublicationMessage:
                yield message
                continue
            if not (
                heap
                and heap[0][0] == deliver_at
                and type(heap[0][2]) is PublicationMessage
            ):
                yield message
                continue
            run = [message]
            while (
                heap
                and heap[0][0] == deliver_at
                and type(heap[0][2]) is PublicationMessage
            ):
                run.append(heapq.heappop(heap)[2])
            yield run

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EventKernel(model={self.latency_model.spec!r}, now={self.now:g}, "
            f"pending={self.pending})"
        )
