"""The broker overlay network simulator.

:class:`BrokerNetwork` owns a set of :class:`~repro.broker.broker.Broker`
instances connected by logical links, routes messages between them through
a virtual-time event-driven kernel (:mod:`repro.broker.sim`), and
accumulates the traffic/delivery/latency metrics used by the distributed
experiments.

Every client operation injects one message and runs the kernel to
quiescence, so the external API stays synchronous while the internal
message schedule is fully timed: per-link latencies, FIFO link ordering
and optional egress batching all happen inside the drain.  With the
default ``zero`` latency model the kernel degenerates to the seed's
synchronous FIFO pump, byte for byte.

The simulator additionally keeps a *global oracle* of every subscription in
the system: after each publication it knows exactly which subscribers a
lossless system would have notified, so the notifications lost to erroneous
probabilistic coverage decisions (the concern analysed in Section 5) are
measured directly.  The oracle is keyed by subscription identifier and
matches through a pluggable matcher backend, so unsubscribe storms cost
O(1) bookkeeping per cancellation instead of an O(n) list rebuild.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.broker.broker import Broker
from repro.broker.messages import (
    Message,
    NotificationRecord,
    PublicationBatchMessage,
    PublicationMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from repro.broker.metrics import MetricsSnapshot, NetworkMetrics
from repro.broker.sim import EventKernel, LatencyModel, LognormalLatency, make_latency_model
from repro.core.policies import DEFAULT_MERGE_BUDGET, policy_value, resolve_policy
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.matching.backends import make_backend
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription
from repro.obs import probes as obs_probes
from repro.utils.rng import RandomSource, ensure_rng, spawn_rngs

__all__ = ["BrokerNetwork"]


class BrokerNetwork:
    """A simulated overlay of content-based publish/subscribe brokers.

    Parameters
    ----------
    edges:
        Logical links as ``(broker_a, broker_b)`` pairs; brokers are created
        on first mention.
    policy:
        Reduction strategy applied by every broker (a name from
        :data:`~repro.core.policies.STRATEGY_NAMES`).
    merge_budget:
        False-volume budget of the merging strategies (ignored by the
        covering-only ones).
    delta:
        Error bound of the probabilistic checker (``group`` policy).
    max_iterations:
        RSPC guess cap per covering decision.
    rng:
        Seed or generator controlling every broker's random stream (and the
        latency model's, when it is stochastic).
    matcher_backend:
        Matcher backend every broker's routing table — and the global
        delivery oracle — uses for the forwarding lookup (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`).
    latency_model:
        Per-link hop latency model spec (see
        :func:`~repro.broker.sim.make_latency_model`): ``"zero"`` (the
        default, seed-identical semantics), ``"fixed[:delay]"`` or
        ``"lognormal[:mu,sigma]"``.  With a non-default model the metrics
        additionally track per-notification delivery latency and kernel
        queue depth.
    batch_size:
        Egress publication batching factor of the kernel (``1`` disables
        batching).
    dedup_window:
        Per-broker bound on the publication-id dedup memory.
    obs:
        Optional :class:`~repro.obs.probes.ObsProbe` observing this
        network (stage timers, causal spans, instrument registry).
        Defaults to the module-level probe installed via
        :func:`repro.obs.probes.install`; when none is installed
        (the default) the network runs the exact pre-observability code
        path and its metrics/trace hashes are byte-identical to it.
    shards:
        Worker-process count for the global delivery oracle.  ``0`` (the
        default) keeps the in-process oracle; ``N ≥ 1`` partitions the
        oracle's subscription space across ``N`` shard workers with
        shared-memory arenas — semantics (and therefore every metric and
        trace hash) are unchanged at any count.  Call :meth:`close` when
        done to reap the workers.
    shard_prefilter:
        Candidate pre-filter of the sharded oracle (one of
        :data:`~repro.shard.coordinator.PREFILTER_NAMES`); ignored when
        ``shards=0``.
    """

    def __init__(
        self,
        edges: Iterable[Tuple[str, str]],
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        delta: float = 1e-6,
        max_iterations: int = 1_000,
        rng: RandomSource = None,
        matcher_backend: str = "linear",
        latency_model: str = "zero",
        batch_size: int = 1,
        dedup_window: int = 4096,
        merge_budget: float = DEFAULT_MERGE_BUDGET,
        obs=None,
        shards: int = 0,
        shard_prefilter: str = "hull",
    ):
        self._obs = obs if obs is not None else obs_probes.active()
        self.policy = resolve_policy(policy)
        self.merge_budget = merge_budget
        self.delta = delta
        self.max_iterations = max_iterations
        self.matcher_backend = matcher_backend
        self.dedup_window = dedup_window
        self._rng = ensure_rng(rng)
        if isinstance(latency_model, LatencyModel):
            # A caller-supplied model instance is adopted as-is: reseeding
            # it here would silently splice this network's stream into any
            # other network sharing the object.
            model = latency_model
        else:
            model = make_latency_model(latency_model)
            if isinstance(model, LognormalLatency):
                model.reseed(spawn_rngs(self._rng, 1)[0])
        self.latency_model: LatencyModel = model
        self.kernel = EventKernel(model, batch_size=batch_size, obs=self._obs)
        self.brokers: Dict[str, Broker] = {}
        # With a probe attached, the network's counters live in the
        # probe's instrument registry — one registry is then the single
        # source of truth for every metric of the run.
        self.metrics = NetworkMetrics(
            track_latency=model.name != "zero",
            registry=self._obs.registry if self._obs is not None else None,
        )
        #: ``(phase name, metrics snapshot at phase start)`` marks, in order
        self.phase_marks: List[Tuple[str, MetricsSnapshot]] = []
        #: client identifier -> broker identifier
        self.clients: Dict[str, str] = {}
        #: global oracle: subscription id -> (subscription, client, broker)
        self._all_subscriptions: Dict[str, Tuple[Subscription, str, str]] = {}
        #: matcher backend answering the oracle's "who should be notified".
        #: With ``shards=N`` the oracle's subscription set is partitioned
        #: across N worker processes behind the same MatcherBackend
        #: contract; the oracle is outside every random stream and its
        #: sharded answers are merged back into global insertion order, so
        #: metrics, deliveries and trace hashes are byte-identical at any
        #: shard count (``shards=0`` keeps today's in-process backend).
        if shards:
            from repro.shard.engine import ShardedOracleBackend

            self._oracle = ShardedOracleBackend(
                shards, backend=matcher_backend, prefilter=shard_prefilter
            )
        else:
            self._oracle = make_backend(matcher_backend)
        self._edge_list: List[Tuple[str, str]] = []

        for left, right in edges:
            self.add_link(left, right)
        if not self.brokers:
            raise ValueError("a broker network needs at least one link or broker")

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _new_broker(self, broker_id: str) -> Broker:
        checker = SubsumptionChecker(
            delta=self.delta,
            max_iterations=self.max_iterations,
            rng=spawn_rngs(self._rng, 1)[0],
        )
        broker = Broker(
            broker_id,
            policy=self.policy,
            checker=checker,
            matcher_backend=self.matcher_backend,
            dedup_window=self.dedup_window,
            record_latencies=self.metrics.track_latency,
            merge_budget=self.merge_budget,
            obs=self._obs,
        )
        self.brokers[broker_id] = broker
        return broker

    def add_broker(self, broker_id: str) -> Broker:
        """Create (or fetch) a broker."""
        broker = self.brokers.get(broker_id)
        if broker is None:
            broker = self._new_broker(broker_id)
        return broker

    def add_link(self, left: str, right: str) -> None:
        """Create a bidirectional logical link between two brokers."""
        if left == right:
            raise ValueError("self links are not allowed")
        broker_left = self.add_broker(left)
        broker_right = self.add_broker(right)
        broker_left.connect(right)
        broker_right.connect(left)
        self._edge_list.append((left, right))

    def attach_client(self, client_id: str, broker_id: str) -> None:
        """Attach a subscriber/publisher client to a broker."""
        broker = self.add_broker(broker_id)
        broker.attach_subscriber(client_id)
        self.clients[client_id] = broker_id

    @property
    def broker_ids(self) -> List[str]:
        """Identifiers of every broker in the overlay."""
        return list(self.brokers.keys())

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """The logical links of the overlay."""
        return list(self._edge_list)

    @property
    def now(self) -> float:
        """Current virtual time of the simulation kernel."""
        return self.kernel.now

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def subscribe(
        self, client_id: str, subscription: Subscription
    ) -> None:
        """Issue a subscription on behalf of an attached client."""
        broker_id = self._broker_of(client_id)
        if subscription.subscriber is None:
            subscription = subscription.replace(subscriber=client_id)
        if subscription.id not in self._all_subscriptions:
            self._all_subscriptions[subscription.id] = (
                subscription, client_id, broker_id
            )
            self._oracle.add(subscription)
        message = SubscriptionMessage(
            sender=None,
            recipient=broker_id,
            subscription=subscription,
            origin=broker_id,
        )
        self._run(message)

    def unsubscribe(self, client_id: str, subscription_id: str) -> None:
        """Cancel a previously issued subscription."""
        broker_id = self._broker_of(client_id)
        if self._all_subscriptions.pop(subscription_id, None) is not None:
            self._oracle.remove(subscription_id)
        message = UnsubscriptionMessage(
            sender=None,
            recipient=broker_id,
            subscription_id=subscription_id,
            origin=broker_id,
        )
        self._run(message)

    def publish(self, client_id: str, publication: Publication) -> List[NotificationRecord]:
        """Publish on behalf of an attached client.

        Returns the notifications delivered for this publication (the
        network-wide metrics are updated as a side effect).
        """
        broker_id = self._broker_of(client_id)
        obs = self._obs
        if obs is not None:
            obs.stage_push("network.oracle")
        expected = self._expected_notifications(publication)
        if obs is not None:
            obs.stage_pop()
        self.metrics.expected_notifications += len(expected)

        delivered_before = {
            broker.id: len(broker.delivered) for broker in self.brokers.values()
        }
        message = PublicationMessage(
            sender=None,
            recipient=broker_id,
            publication=publication,
            origin=broker_id,
        )
        self._run(message)
        return self._collect_deliveries(expected, delivered_before)

    def publish_batch(
        self, client_id: str, publications: Sequence[Publication]
    ) -> List[NotificationRecord]:
        """Publish a burst in one timed drain — the kernel batching path.

        All publications of a chunk are injected at the same virtual
        instant, so brokers forwarding them toward a common neighbour
        coalesce them into shared
        :class:`~repro.broker.messages.PublicationBatchMessage` hops when
        the kernel's ``batch_size`` allows (a burst of 100 publications
        crossing one link costs ``ceil(100/batch_size)`` message hops
        instead of 100).  Bursts are drained in chunks of at most
        ``dedup_window`` publications: on cyclic topologies the dedup
        memory is what stops a broker re-processing a publication arriving
        over a second path, and bounding the in-flight set per drain below
        the window guarantees no id is evicted while its duplicates are
        still travelling.  Delivery and loss accounting are identical to
        publishing one by one.
        """
        if not publications:
            return []
        broker_id = self._broker_of(client_id)
        obs = self._obs
        if obs is not None:
            obs.stage_push("network.oracle")
        expected: List[NotificationRecord] = []
        for publication in publications:
            expected.extend(self._expected_notifications(publication))
        if obs is not None:
            obs.stage_pop()
        self.metrics.expected_notifications += len(expected)

        delivered_before = {
            broker.id: len(broker.delivered) for broker in self.brokers.values()
        }
        publications = list(publications)
        for start in range(0, len(publications), self.dedup_window):
            for publication in publications[start:start + self.dedup_window]:
                self._inject(
                    PublicationMessage(
                        sender=None,
                        recipient=broker_id,
                        publication=publication,
                        origin=broker_id,
                    )
                )
            self._drain()
        return self._collect_deliveries(expected, delivered_before)

    def publish_many(
        self, operations: Sequence[Tuple[str, Publication]]
    ) -> List[NotificationRecord]:
        """Publish a burst of ``(client, publication)`` operations at once.

        The batch-native fast path: the delivery oracle answers the whole
        burst through one ``match_batch`` call, the burst is injected at a
        single virtual instant and drained in chunks of at most
        ``dedup_window`` publications (the same re-processing guarantee as
        :meth:`publish_batch`), and the grouped drain hands same-instant
        same-broker publications to the batched broker handler.  Delivery,
        loss and traffic accounting are identical to calling
        :meth:`publish` once per operation — but note the *injection
        timing* differs under non-zero latency models (every operation
        enters at the same virtual time), so timed runs should keep the
        one-at-a-time path.
        """
        if not operations:
            # Cheap no-op: no oracle call, no kernel events, no delivery
            # collection pass over every broker.
            return []
        pairs = [
            (self._broker_of(client_id), publication)
            for client_id, publication in operations
        ]
        obs = self._obs
        if obs is not None:
            obs.stage_push("network.oracle")
        expected: List[NotificationRecord] = []
        oracle_hits = self._oracle.match_batch(
            [publication for _, publication in pairs]
        )
        for (_, publication), (matched, _tests) in zip(pairs, oracle_hits):
            self._expected_records(publication, matched, expected)
        if obs is not None:
            obs.stage_pop()
        self.metrics.expected_notifications += len(expected)

        delivered_before = {
            broker.id: len(broker.delivered) for broker in self.brokers.values()
        }
        for start in range(0, len(pairs), self.dedup_window):
            for broker_id, publication in pairs[start:start + self.dedup_window]:
                self._inject(
                    PublicationMessage(
                        sender=None,
                        recipient=broker_id,
                        publication=publication,
                        origin=broker_id,
                    )
                )
            self._drain()
        return self._collect_deliveries(expected, delivered_before)

    def _collect_deliveries(
        self,
        expected: List[NotificationRecord],
        delivered_before: Dict[str, int],
    ) -> List[NotificationRecord]:
        obs = self._obs
        if obs is not None:
            obs.stage_push("network.collect")
            try:
                return self._collect_deliveries_impl(expected, delivered_before)
            finally:
                obs.stage_pop()
        return self._collect_deliveries_impl(expected, delivered_before)

    def _collect_deliveries_impl(
        self,
        expected: List[NotificationRecord],
        delivered_before: Dict[str, int],
    ) -> List[NotificationRecord]:
        delivered: List[NotificationRecord] = []
        for broker in self.brokers.values():
            start = delivered_before[broker.id]
            new_records = broker.delivered[start:]
            delivered.extend(new_records)
            if self.metrics.track_latency:
                self.metrics.delivery_latencies.extend(
                    broker.delivered_latencies[start:]
                )
        self.metrics.notifications += len(delivered)
        self.metrics.delivered.extend(delivered)

        delivered_keys = {
            (record.subscriber, record.subscription_id, record.publication_id)
            for record in delivered
        }
        expected_keys = {
            (record.subscriber, record.subscription_id, record.publication_id)
            for record in expected
        }
        for record in expected:
            key = (record.subscriber, record.subscription_id, record.publication_id)
            if key not in delivered_keys:
                self.metrics.missed.append(record)
        for record in delivered:
            key = (record.subscriber, record.subscription_id, record.publication_id)
            if key not in expected_keys:
                # Delivered although no subscription asked for it: a
                # merged-filter false positive (impossible under the
                # covering strategies).
                self.metrics.false_positives.append(record)
                self.metrics.false_positive_notifications += 1
        return delivered

    def _broker_of(self, client_id: str) -> str:
        broker_id = self.clients.get(client_id)
        if broker_id is None:
            raise KeyError(f"client {client_id!r} is not attached to any broker")
        return broker_id

    def _expected_notifications(
        self, publication: Publication
    ) -> List[NotificationRecord]:
        matched, _tests = self._oracle.match_candidates(publication)
        expected: List[NotificationRecord] = []
        self._expected_records(publication, matched, expected)
        return expected

    def _expected_records(
        self,
        publication: Publication,
        matched: Sequence[Subscription],
        expected: List[NotificationRecord],
    ) -> None:
        for subscription in matched:
            _, client_id, broker_id = self._all_subscriptions[subscription.id]
            expected.append(
                NotificationRecord(
                    broker=broker_id,
                    subscriber=client_id,
                    subscription_id=subscription.id,
                    publication_id=publication.id,
                )
            )

    # ------------------------------------------------------------------
    # Message pump (virtual-time event loop)
    # ------------------------------------------------------------------
    def _run(self, initial: Message) -> None:
        self._inject(initial)
        self._drain()

    def _inject(self, message: Message) -> None:
        message.injected_at = self.kernel.now
        message.sent_at = self.kernel.now
        if self._obs is not None:
            self._obs.on_inject(message, self.kernel.now)
        self.kernel.schedule(message)

    def _drain(self) -> None:
        kernel = self.kernel
        obs = self._obs
        for message in kernel.drain_grouped():
            if type(message) is list:
                # One same-instant delivery generation, popped as a run:
                # partition it per receiving broker (stably, so every
                # broker processes its share in pop order) and hand each
                # share to the batched handler — one match_batch route
                # lookup per broker instead of one scalar lookup per hop.
                # The run's outgoing messages are then scheduled in
                # original run order, which reproduces the one-at-a-time
                # drain's heap sequence (and therefore every downstream
                # dedup race on cyclic topologies) exactly.
                run = message
                by_recipient: Dict[str, List[int]] = {}
                for position, inner in enumerate(run):
                    by_recipient.setdefault(inner.recipient, []).append(
                        position
                    )
                run_outgoing: List[List[Message]] = [[]] * len(run)
                for recipient, positions in by_recipient.items():
                    broker = self.brokers[recipient]
                    share = [run[position] for position in positions]
                    for inner in share:
                        if obs is not None:
                            obs.on_hop_delivered(inner)
                        if inner.sender is not None:
                            self.metrics.publication_messages += 1
                    dead_before = broker.dead_letter_publications
                    if obs is not None:
                        obs.stage_push("network.handle_publication")
                    share_outgoing = broker.handle_publication_batch(share)
                    if obs is not None:
                        obs.stage_pop()
                    self.metrics.dead_letter_publications += (
                        broker.dead_letter_publications - dead_before
                    )
                    for position, outs in zip(positions, share_outgoing):
                        run_outgoing[position] = outs
                for outs in run_outgoing:
                    for out in outs:
                        kernel.schedule(out)
                continue
            if obs is not None:
                obs.on_hop_delivered(message)
            broker = self.brokers[message.recipient]
            if isinstance(message, SubscriptionMessage):
                if message.sender is not None:
                    self.metrics.subscription_messages += 1
                if obs is not None:
                    obs.stage_push("network.handle_subscription")
                outgoing, decisions = broker.handle_subscription(message)
                if obs is not None:
                    obs.stage_pop()
                self._account_decisions(decisions)
            elif isinstance(message, UnsubscriptionMessage):
                if message.sender is not None:
                    self.metrics.unsubscription_messages += 1
                if obs is not None:
                    obs.stage_push("network.handle_unsubscription")
                outgoing, decisions = broker.handle_unsubscription(message)
                if obs is not None:
                    obs.stage_pop()
                self._account_decisions(decisions)
            elif isinstance(message, PublicationBatchMessage):
                # One hop (and one latency sample) for the whole batch.
                self.metrics.publication_messages += 1
                self.metrics.batched_publications += len(message.messages)
                dead_before = broker.dead_letter_publications
                for inner in message.messages:
                    inner.delivered_at = message.delivered_at
                if obs is not None:
                    obs.stage_push("network.handle_publication")
                outgoing = [
                    out
                    for outs in broker.handle_publication_batch(
                        message.messages, values=message.values_matrix()
                    )
                    for out in outs
                ]
                if obs is not None:
                    obs.stage_pop()
                self.metrics.dead_letter_publications += (
                    broker.dead_letter_publications - dead_before
                )
            elif isinstance(message, PublicationMessage):
                if message.sender is not None:
                    self.metrics.publication_messages += 1
                dead_before = broker.dead_letter_publications
                if obs is not None:
                    obs.stage_push("network.handle_publication")
                outgoing = broker.handle_publication(message)
                if obs is not None:
                    obs.stage_pop()
                self.metrics.dead_letter_publications += (
                    broker.dead_letter_publications - dead_before
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown message type {type(message)!r}")
            for out in outgoing:
                kernel.schedule(out)
        self.metrics.queue_depth_high_water = kernel.queue_depth_high_water
        self.metrics.phase_queue_depth_high_water = (
            kernel.phase_queue_depth_high_water
        )

    def _account_decisions(self, decisions) -> None:
        for decision in decisions:
            self.metrics.subsumption_checks += 1
            self.metrics.rspc_iterations += decision.rspc_iterations
            if decision.merged is not None:
                self.metrics.merged_advertisements += 1
                self.metrics.merge_false_volume += decision.false_volume
            elif not decision.forwarded:
                self.metrics.suppressed_subscriptions += 1

    # ------------------------------------------------------------------
    # Phase accounting
    # ------------------------------------------------------------------
    def mark_phase(self, name: str) -> MetricsSnapshot:
        """Record the start of a named workload phase.

        Returns the metrics snapshot taken at the mark, so callers can later
        ``metrics.diff(snapshot)`` to obtain the phase's counter deltas.  The
        marks are kept (in order) in :attr:`phase_marks` for introspection.
        """
        snapshot = self.metrics.snapshot()
        self.phase_marks.append((name, snapshot))
        self.kernel.reset_phase_high_water()
        self.metrics.phase_queue_depth_high_water = 0
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_routing_entries(self) -> int:
        """Sum of routing-table sizes across all brokers (memory proxy)."""
        return sum(broker.table_size for broker in self.brokers.values())

    def routing_table_sizes(self) -> Dict[str, int]:
        """Routing-table size per broker."""
        return {broker_id: broker.table_size for broker_id, broker in self.brokers.items()}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (shard worker processes); idempotent.

        A no-op for the in-process oracle, so callers can close every
        network unconditionally.
        """
        closer = getattr(self._oracle, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "BrokerNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BrokerNetwork(brokers={len(self.brokers)}, "
            f"policy={policy_value(self.policy)!r}, "
            f"latency={self.latency_model.spec!r})"
        )
