"""The broker overlay network simulator.

:class:`BrokerNetwork` owns a set of :class:`~repro.broker.broker.Broker`
instances connected by logical links, routes messages between them with a
synchronous FIFO queue, and accumulates the traffic/delivery metrics used
by the distributed experiments.

The simulator additionally keeps a *global oracle* of every subscription in
the system: after each publication it knows exactly which subscribers a
lossless system would have notified, so the notifications lost to erroneous
probabilistic coverage decisions (the concern analysed in Section 5) are
measured directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.broker.broker import Broker
from repro.broker.messages import (
    Message,
    NotificationRecord,
    PublicationMessage,
    SubscriptionMessage,
    UnsubscriptionMessage,
)
from repro.broker.metrics import MetricsSnapshot, NetworkMetrics
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng, spawn_rngs

__all__ = ["BrokerNetwork"]


class BrokerNetwork:
    """A simulated overlay of content-based publish/subscribe brokers.

    Parameters
    ----------
    edges:
        Logical links as ``(broker_a, broker_b)`` pairs; brokers are created
        on first mention.
    policy:
        Covering policy applied by every broker.
    delta:
        Error bound of the probabilistic checker (``group`` policy).
    max_iterations:
        RSPC guess cap per covering decision.
    rng:
        Seed or generator controlling every broker's random stream.
    matcher_backend:
        Matcher backend every broker's routing table uses for the
        forwarding lookup (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`).
    """

    def __init__(
        self,
        edges: Iterable[Tuple[str, str]],
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        delta: float = 1e-6,
        max_iterations: int = 1_000,
        rng: RandomSource = None,
        matcher_backend: str = "linear",
    ):
        self.policy = CoveringPolicyName(policy)
        self.delta = delta
        self.max_iterations = max_iterations
        self.matcher_backend = matcher_backend
        self._rng = ensure_rng(rng)
        self.brokers: Dict[str, Broker] = {}
        self.metrics = NetworkMetrics()
        #: ``(phase name, metrics snapshot at phase start)`` marks, in order
        self.phase_marks: List[Tuple[str, MetricsSnapshot]] = []
        #: client identifier -> broker identifier
        self.clients: Dict[str, str] = {}
        #: global oracle: every subscription with its subscriber and broker
        self._all_subscriptions: List[Tuple[Subscription, str, str]] = []
        self._edge_list: List[Tuple[str, str]] = []

        for left, right in edges:
            self.add_link(left, right)
        if not self.brokers:
            raise ValueError("a broker network needs at least one link or broker")

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _new_broker(self, broker_id: str) -> Broker:
        checker = SubsumptionChecker(
            delta=self.delta,
            max_iterations=self.max_iterations,
            rng=spawn_rngs(self._rng, 1)[0],
        )
        broker = Broker(
            broker_id,
            policy=self.policy,
            checker=checker,
            matcher_backend=self.matcher_backend,
        )
        self.brokers[broker_id] = broker
        return broker

    def add_broker(self, broker_id: str) -> Broker:
        """Create (or fetch) a broker."""
        broker = self.brokers.get(broker_id)
        if broker is None:
            broker = self._new_broker(broker_id)
        return broker

    def add_link(self, left: str, right: str) -> None:
        """Create a bidirectional logical link between two brokers."""
        if left == right:
            raise ValueError("self links are not allowed")
        broker_left = self.add_broker(left)
        broker_right = self.add_broker(right)
        broker_left.connect(right)
        broker_right.connect(left)
        self._edge_list.append((left, right))

    def attach_client(self, client_id: str, broker_id: str) -> None:
        """Attach a subscriber/publisher client to a broker."""
        broker = self.add_broker(broker_id)
        broker.attach_subscriber(client_id)
        self.clients[client_id] = broker_id

    @property
    def broker_ids(self) -> List[str]:
        """Identifiers of every broker in the overlay."""
        return list(self.brokers.keys())

    @property
    def edges(self) -> List[Tuple[str, str]]:
        """The logical links of the overlay."""
        return list(self._edge_list)

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    def subscribe(
        self, client_id: str, subscription: Subscription
    ) -> None:
        """Issue a subscription on behalf of an attached client."""
        broker_id = self._broker_of(client_id)
        if subscription.subscriber is None:
            subscription = subscription.replace(subscriber=client_id)
        self._all_subscriptions.append((subscription, client_id, broker_id))
        message = SubscriptionMessage(
            sender=None,
            recipient=broker_id,
            subscription=subscription,
            origin=broker_id,
        )
        self._run(message)

    def unsubscribe(self, client_id: str, subscription_id: str) -> None:
        """Cancel a previously issued subscription."""
        broker_id = self._broker_of(client_id)
        self._all_subscriptions = [
            record
            for record in self._all_subscriptions
            if record[0].id != subscription_id
        ]
        message = UnsubscriptionMessage(
            sender=None,
            recipient=broker_id,
            subscription_id=subscription_id,
            origin=broker_id,
        )
        self._run(message)

    def publish(self, client_id: str, publication: Publication) -> List[NotificationRecord]:
        """Publish on behalf of an attached client.

        Returns the notifications delivered for this publication (the
        network-wide metrics are updated as a side effect).
        """
        broker_id = self._broker_of(client_id)
        expected = self._expected_notifications(publication)
        self.metrics.expected_notifications += len(expected)

        delivered_before = {
            broker.id: len(broker.delivered) for broker in self.brokers.values()
        }
        message = PublicationMessage(
            sender=None,
            recipient=broker_id,
            publication=publication,
            origin=broker_id,
        )
        self._run(message)

        delivered: List[NotificationRecord] = []
        for broker in self.brokers.values():
            new_records = broker.delivered[delivered_before[broker.id]:]
            delivered.extend(new_records)
        self.metrics.notifications += len(delivered)
        self.metrics.delivered.extend(delivered)

        delivered_keys = {
            (record.subscriber, record.subscription_id) for record in delivered
        }
        for record in expected:
            if (record.subscriber, record.subscription_id) not in delivered_keys:
                self.metrics.missed.append(record)
        return delivered

    def _broker_of(self, client_id: str) -> str:
        broker_id = self.clients.get(client_id)
        if broker_id is None:
            raise KeyError(f"client {client_id!r} is not attached to any broker")
        return broker_id

    def _expected_notifications(
        self, publication: Publication
    ) -> List[NotificationRecord]:
        expected: List[NotificationRecord] = []
        for subscription, client_id, broker_id in self._all_subscriptions:
            if subscription.contains_point(publication.values):
                expected.append(
                    NotificationRecord(
                        broker=broker_id,
                        subscriber=client_id,
                        subscription_id=subscription.id,
                        publication_id=publication.id,
                    )
                )
        return expected

    # ------------------------------------------------------------------
    # Message pump
    # ------------------------------------------------------------------
    def _run(self, initial: Message) -> None:
        queue: Deque[Message] = deque([initial])
        while queue:
            message = queue.popleft()
            broker = self.brokers[message.recipient]
            if isinstance(message, SubscriptionMessage):
                if message.sender is not None:
                    self.metrics.subscription_messages += 1
                outgoing, decisions = broker.handle_subscription(message)
                for decision in decisions:
                    self.metrics.subsumption_checks += 1
                    self.metrics.rspc_iterations += decision.rspc_iterations
                    if not decision.forwarded:
                        self.metrics.suppressed_subscriptions += 1
            elif isinstance(message, UnsubscriptionMessage):
                if message.sender is not None:
                    self.metrics.unsubscription_messages += 1
                outgoing = broker.handle_unsubscription(message)
            elif isinstance(message, PublicationMessage):
                if message.sender is not None:
                    self.metrics.publication_messages += 1
                outgoing = broker.handle_publication(message)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown message type {type(message)!r}")
            queue.extend(outgoing)

    # ------------------------------------------------------------------
    # Phase accounting
    # ------------------------------------------------------------------
    def mark_phase(self, name: str) -> MetricsSnapshot:
        """Record the start of a named workload phase.

        Returns the metrics snapshot taken at the mark, so callers can later
        ``metrics.diff(snapshot)`` to obtain the phase's counter deltas.  The
        marks are kept (in order) in :attr:`phase_marks` for introspection.
        """
        snapshot = self.metrics.snapshot()
        self.phase_marks.append((name, snapshot))
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_routing_entries(self) -> int:
        """Sum of routing-table sizes across all brokers (memory proxy)."""
        return sum(broker.table_size for broker in self.brokers.values())

    def routing_table_sizes(self) -> Dict[str, int]:
        """Routing-table size per broker."""
        return {broker_id: broker.table_size for broker_id, broker in self.brokers.items()}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BrokerNetwork(brokers={len(self.brokers)}, policy={self.policy.value!r})"
        )
