"""Broker-chain delivery model (Proposition 5 / Eq. 2).

Section 5 analyses the impact of an erroneous covering decision on a chain
of brokers ``B_1 … B_n``: the new subscription ``s`` issued at ``B_1`` was
(wrongly) declared covered, so it only travels further down the chain when
subsequent brokers do *not* repeat the error; meanwhile a matching
publication is issued at each broker independently with probability
``rho``.  Equation 2 gives the probability that the publication is still
found:

``P = sum_{i=1..n} rho * [(1 - rho) * (1 - delta)]^(i-1)``

with ``delta = (1 - rho_w)^d`` the per-decision error bound of Eq. 1.

This module exposes the analytic value (delegating to
:func:`repro.core.error_model.chain_delivery_probability`) together with a
Monte Carlo simulation of the same abstract process, which the tests use to
validate the closed form and which the Eq. 2 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.error_model import chain_delivery_probability, error_probability
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_probability

__all__ = ["ChainModel", "simulate_chain_delivery"]


def simulate_chain_delivery(
    rho: float,
    delta: float,
    brokers: int,
    runs: int = 10_000,
    rng: RandomSource = None,
) -> float:
    """Monte Carlo estimate of the Eq. 2 delivery probability.

    Each run walks the chain broker by broker: the publication appears at a
    broker with probability ``rho``; the subscription keeps propagating past
    a broker with probability ``1 - delta`` (the covering error is not
    repeated).  The run succeeds when the publication first appears at a
    broker the subscription has reached.
    """
    require_probability(rho, "rho")
    require_probability(delta, "delta")
    if brokers < 1:
        raise ValueError("brokers must be at least 1")
    if runs < 1:
        raise ValueError("runs must be at least 1")
    generator = ensure_rng(rng)
    successes = 0
    for _ in range(runs):
        reached = True  # the subscription is present at B_1 by construction
        for position in range(brokers):
            if generator.random() < rho:
                # The publication enters the network at this broker.
                if reached:
                    successes += 1
                break
            # The publication was not issued here; the subscription only
            # continues down the chain when the covering error is not
            # repeated at the next broker.
            if generator.random() < delta:
                reached = False
    return successes / runs


@dataclass(frozen=True)
class ChainModel:
    """Closed-form + simulated view of the Proposition 5 chain.

    Parameters
    ----------
    rho:
        Probability a matching publication is issued at any given broker
        (determined by network density / communication distance).
    rho_w:
        Point-witness probability of the subsumption instance.
    d:
        Number of RSPC trials performed per decision.
    brokers:
        Chain length ``n``.
    """

    rho: float
    rho_w: float
    d: float
    brokers: int

    @property
    def per_decision_error(self) -> float:
        """The Eq. 1 bound ``(1 - rho_w)^d`` for a single decision."""
        return error_probability(self.rho_w, self.d)

    def delivery_probability(self) -> float:
        """The Eq. 2 lower bound on finding the matching publication."""
        return chain_delivery_probability(
            self.rho, self.per_decision_error, self.brokers
        )

    def simulate(self, runs: int = 10_000, rng: RandomSource = None) -> float:
        """Monte Carlo estimate of the same probability."""
        return simulate_chain_delivery(
            self.rho, self.per_decision_error, self.brokers, runs=runs, rng=rng
        )

    def sweep_chain_lengths(self, lengths: List[int]) -> List[float]:
        """Analytic delivery probability for several chain lengths."""
        return [
            chain_delivery_probability(self.rho, self.per_decision_error, length)
            for length in lengths
        ]
