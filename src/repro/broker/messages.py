"""Messages exchanged between brokers.

The simulator is message-driven: every subscription, unsubscription and
publication travels as a message between neighbouring brokers, and every
message hop is counted by :class:`~repro.broker.metrics.NetworkMetrics`,
which is how the traffic results of the evaluation are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = [
    "Message",
    "SubscriptionMessage",
    "UnsubscriptionMessage",
    "PublicationMessage",
    "NotificationRecord",
]


@dataclass
class Message:
    """Base class of every inter-broker message.

    Attributes
    ----------
    sender:
        Identifier of the sending broker, or ``None`` when the message
        enters the network from a local client.
    recipient:
        Identifier of the receiving broker.
    hops:
        Number of broker-to-broker hops travelled so far.
    """

    sender: Optional[str]
    recipient: str
    hops: int = 0


@dataclass
class SubscriptionMessage(Message):
    """A subscription being propagated through the overlay."""

    subscription: Subscription = None  # type: ignore[assignment]
    #: broker where the subscription entered the network
    origin: str = ""


@dataclass
class UnsubscriptionMessage(Message):
    """An unsubscription being propagated through the overlay."""

    subscription_id: str = ""
    origin: str = ""


@dataclass
class PublicationMessage(Message):
    """A publication being routed along the reverse paths."""

    publication: Publication = None  # type: ignore[assignment]
    #: broker where the publication entered the network
    origin: str = ""


@dataclass(frozen=True)
class NotificationRecord:
    """A notification delivered to a local subscriber."""

    broker: str
    subscriber: str
    subscription_id: str
    publication_id: str
