"""Messages exchanged between brokers.

The simulator is message-driven: every subscription, unsubscription and
publication travels as a message between neighbouring brokers, and every
message hop is counted by :class:`~repro.broker.metrics.NetworkMetrics`,
which is how the traffic results of the evaluation are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = [
    "Message",
    "SubscriptionMessage",
    "UnsubscriptionMessage",
    "PublicationMessage",
    "PublicationBatchMessage",
    "NotificationRecord",
]


@dataclass
class Message:
    """Base class of every inter-broker message.

    Attributes
    ----------
    sender:
        Identifier of the sending broker, or ``None`` when the message
        enters the network from a local client.
    recipient:
        Identifier of the receiving broker.
    hops:
        Number of broker-to-broker hops travelled so far.
    injected_at:
        Virtual time at which the *original* client operation entered the
        network; propagated unchanged across hops so end-to-end delivery
        latency is ``delivered_at - injected_at`` at the delivering broker.
    sent_at:
        Virtual time at which this hop was handed to the simulation kernel.
    delivered_at:
        Virtual time at which the kernel delivered this hop to its
        recipient (``sent_at`` plus the link's sampled latency, pushed
        later if the link's FIFO order demands it).
    trace_id:
        Causal-trace identifier assigned by the observability layer when
        span recording is on (empty otherwise); every hop a client
        operation fans out into inherits it, which is what stitches the
        per-stage spans of :mod:`repro.obs.spans` into one causal chain.
    """

    sender: Optional[str]
    recipient: str
    hops: int = 0
    injected_at: float = 0.0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    trace_id: str = ""

    @property
    def hop_latency(self) -> float:
        """Virtual time this hop spent on the link."""
        return self.delivered_at - self.sent_at


@dataclass
class SubscriptionMessage(Message):
    """A subscription being propagated through the overlay."""

    subscription: Subscription = None  # type: ignore[assignment]
    #: broker where the subscription entered the network
    origin: str = ""


@dataclass
class UnsubscriptionMessage(Message):
    """An unsubscription being propagated through the overlay."""

    subscription_id: str = ""
    origin: str = ""


@dataclass
class PublicationMessage(Message):
    """A publication being routed along the reverse paths."""

    publication: Publication = None  # type: ignore[assignment]
    #: broker where the publication entered the network
    origin: str = ""


@dataclass
class PublicationBatchMessage(Message):
    """Several publications coalesced into one hop on the same link.

    Produced by the simulation kernel's egress batching: a broker that
    emits multiple publications toward the same neighbour within a batch
    window pays one message hop (and one sampled link latency) for the
    whole group.  The recipient unpacks and processes the contained
    publication messages in their original emission order.
    """

    messages: List[PublicationMessage] = field(default_factory=list)

    def values_matrix(self) -> Optional[np.ndarray]:
        """The batch's publication points as one ``(B, m)`` array.

        The structure-of-arrays view consumed by the batched matchers —
        built once per batch hop and ``None`` when the contained
        publications do not share one attribute count (the scalar
        handlers cover that case).
        """
        points = [message.publication.values for message in self.messages]
        if not points or any(p.shape != points[0].shape for p in points):
            return None
        return np.array(points)


@dataclass(frozen=True)
class NotificationRecord:
    """A notification delivered to a local subscriber."""

    broker: str
    subscriber: str
    subscription_id: str
    publication_id: str
