"""The canonical scenario catalog.

Ten canonical tiers, T0 (seconds, CI smoke) through T3 (stress), built
from the repository's workload generators, plus the off-catalog
``t4-massive`` scale-out tier (1M subscriptions / 100k publications,
registered for the sharded benchmarks but excluded from
``CANONICAL_TIERS``):

==================  ====  ==============  =======================================
Name                Tier  Workload        Exercise
==================  ====  ==============  =======================================
``t0-smoke``        T0    bike-rental     tiny ramp/burst/storm sanity run
``t0-discovery``    T0    grid            churn-free ramp + burst (lossless
                                          baseline for delivery assertions)
``t0-latency``      T0    bike-rental     t0-smoke shape under fixed per-hop
                                          latency (timed-kernel smoke)
``t0-merging``      T0    bike-rental     t0-smoke shape under the merging
                                          strategy (false-positive smoke)
``t1-churn``        T1    bike-rental     subscribe/unsubscribe churn under load
``t1-flashcrowd``   T1    bike-rental     repeated flash crowds on a star hub
``t2-burst``        T2    comparison      bursty high-volume traffic (benchmark
                                          tier for runner throughput)
``t2-paper-mix``    T2    paper-redundant Section 6 covering structure under
                                          dynamic arrival/removal
``t2-merge-stress`` T2    comparison      t2-burst shape under merging: routing
                                          state vs false positives under churn
``t3-stress``       T3    bike-rental     largest overlay, heavy steady churn
==================  ====  ==============  =======================================
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.spec import PhaseKind, PhaseSpec, ScenarioSpec, TopologySpec

__all__ = ["CANONICAL_TIERS"]


@register
def t0_smoke() -> ScenarioSpec:
    """Smallest end-to-end exercise of every phase kind."""
    return ScenarioSpec(
        name="t0-smoke",
        tier="T0",
        description="Tiny bike-rental sanity run: ramp, burst, storm, burst.",
        workload="bike-rental",
        topology=TopologySpec(kind="line", size=3),
        clients=8,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 12}),
            PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": 20}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec("after-storm", PhaseKind.PUBLISH_BURST, {"count": 10}),
        ],
        tags=("smoke", "ci"),
    )


@register
def t0_discovery() -> ScenarioSpec:
    """Churn-free Grid discovery run — the lossless-delivery baseline.

    Without unsubscriptions, covering-based suppression is sound for the
    deterministic policies, so a run under ``pairwise`` must deliver every
    expected notification (asserted by the end-to-end tests).
    """
    return ScenarioSpec(
        name="t0-discovery",
        tier="T0",
        description="Grid resource discovery, ramp + burst, no churn.",
        workload="grid",
        topology=TopologySpec(kind="star", size=4),
        clients=8,
        phases=[
            PhaseSpec("announce", PhaseKind.SUBSCRIBE_RAMP, {"count": 14}),
            PhaseSpec("jobs", PhaseKind.PUBLISH_BURST, {"count": 24}),
        ],
        tags=("smoke", "ci", "lossless-baseline"),
    )


@register
def t0_latency() -> ScenarioSpec:
    """T0 smoke run of the timed kernel: fixed per-hop latency.

    Same shape as ``t0-smoke`` but every broker-to-broker hop costs 0.1
    virtual time units, so the report carries delivery-latency percentiles
    and kernel queue-depth marks — the CI check that the virtual-time path
    stays healthy.
    """
    return ScenarioSpec(
        name="t0-latency",
        tier="T0",
        description="Timed-kernel smoke: t0-smoke shape under fixed latency.",
        workload="bike-rental",
        topology=TopologySpec(kind="line", size=3),
        clients=8,
        latency_model="fixed:0.1",
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 12}),
            PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": 20}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec("after-storm", PhaseKind.PUBLISH_BURST, {"count": 10}),
        ],
        tags=("smoke", "ci", "latency"),
    )


@register
def t0_merging() -> ScenarioSpec:
    """T0 smoke run of the merging reduction strategy.

    Same shape as ``t0-smoke`` but every broker advertises merged bounding
    boxes within a false-volume budget, so the report carries merged
    advertisement counts and false-positive deliveries — the CI check
    that the merging path stays healthy end to end.
    """
    return ScenarioSpec(
        name="t0-merging",
        tier="T0",
        description="Merging-strategy smoke: t0-smoke shape, merged adverts.",
        workload="bike-rental",
        topology=TopologySpec(kind="line", size=3),
        clients=8,
        policy="merging",
        merge_budget=0.4,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 12}),
            PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": 20}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec("after-storm", PhaseKind.PUBLISH_BURST, {"count": 10}),
        ],
        tags=("smoke", "ci", "merging"),
    )


@register
def t1_churn() -> ScenarioSpec:
    """Subscription churn: ramp, storm, re-ramp, traffic, steady mix."""
    return ScenarioSpec(
        name="t1-churn",
        tier="T1",
        description="Bike-rental subscription churn on a 2x3 broker grid.",
        workload="bike-rental",
        topology=TopologySpec(kind="grid", rows=2, columns=3),
        clients=24,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 60}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.4}),
            PhaseSpec("re-ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 40}),
            PhaseSpec("traffic", PhaseKind.PUBLISH_BURST, {"count": 120}),
            PhaseSpec(
                "steady",
                PhaseKind.STEADY_STATE,
                {
                    "ops": 150,
                    "publish_weight": 0.6,
                    "subscribe_weight": 0.25,
                    "unsubscribe_weight": 0.15,
                },
            ),
        ],
        tags=("churn",),
    )


@register
def t1_flashcrowd() -> ScenarioSpec:
    """Flash crowds hammering a star hub."""
    return ScenarioSpec(
        name="t1-flashcrowd",
        tier="T1",
        description="Repeated flash crowds (subscribe pile-in + burst) on a star.",
        workload="bike-rental",
        topology=TopologySpec(kind="star", size=5),
        clients=30,
        phases=[
            PhaseSpec("warmup", PhaseKind.SUBSCRIBE_RAMP, {"count": 40}),
            PhaseSpec(
                "crowd-1",
                PhaseKind.FLASH_CROWD,
                {"subscriptions": 30, "publications": 100},
            ),
            PhaseSpec("cooldown", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.3}),
            PhaseSpec(
                "crowd-2",
                PhaseKind.FLASH_CROWD,
                {"subscriptions": 20, "publications": 80},
            ),
        ],
        tags=("burst",),
    )


@register
def t2_burst() -> ScenarioSpec:
    """High-volume bursty traffic — the runner-throughput benchmark tier."""
    return ScenarioSpec(
        name="t2-burst",
        tier="T2",
        description="Bursty comparison-workload traffic on a random tree.",
        workload="comparison",
        workload_params={"m": 8, "domain_size": 10_000},
        topology=TopologySpec(kind="random-tree", size=8),
        clients=40,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 150}),
            PhaseSpec("burst-1", PhaseKind.PUBLISH_BURST, {"count": 300}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec("re-ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 100}),
            PhaseSpec("burst-2", PhaseKind.PUBLISH_BURST, {"count": 300}),
            PhaseSpec(
                "steady",
                PhaseKind.STEADY_STATE,
                {"ops": 300, "publish_weight": 0.7, "subscribe_weight": 0.2,
                 "unsubscribe_weight": 0.1},
            ),
        ],
        tags=("benchmark",),
    )


@register
def t2_paper_mix() -> ScenarioSpec:
    """The paper's redundant-covering structure under dynamic churn.

    Streams Section 6.1 instances (joint covers with ~80 % redundancy)
    through the overlay, so the group policy's probabilistic decisions are
    exercised exactly where the paper measured them — but with arrival and
    removal dynamics the static experiments cannot express.
    """
    return ScenarioSpec(
        name="t2-paper-mix",
        tier="T2",
        description="Redundant-covering paper instances with churn and bursts.",
        workload="paper-redundant",
        workload_params={"m": 8, "domain_size": 10_000, "k": 20},
        topology=TopologySpec(kind="random-tree", size=6),
        clients=24,
        delta=1e-4,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 120}),
            PhaseSpec("burst-1", PhaseKind.PUBLISH_BURST, {"count": 200}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.6}),
            PhaseSpec("re-ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 80}),
            PhaseSpec("burst-2", PhaseKind.PUBLISH_BURST, {"count": 150}),
        ],
        tags=("paper",),
    )


@register
def t2_merge_stress() -> ScenarioSpec:
    """The merging trade-off under real churn — the covering-vs-merging tier.

    The ``t2-burst`` shape re-run under the merging strategy: brokers
    shrink their advertised sets by merging within a false-volume budget,
    so the report quantifies the related-work trade-off the paper argues
    against — smaller routing state bought with false-positive deliveries
    and dead-end publication traffic — on the same workload the covering
    policies are benchmarked on.
    """
    return ScenarioSpec(
        name="t2-merge-stress",
        tier="T2",
        description="t2-burst shape under merging: state vs false positives.",
        workload="comparison",
        workload_params={"m": 8, "domain_size": 10_000},
        topology=TopologySpec(kind="random-tree", size=8),
        clients=40,
        policy="merging",
        merge_budget=0.4,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 150}),
            PhaseSpec("burst-1", PhaseKind.PUBLISH_BURST, {"count": 300}),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec("re-ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 100}),
            PhaseSpec("burst-2", PhaseKind.PUBLISH_BURST, {"count": 300}),
            PhaseSpec(
                "steady",
                PhaseKind.STEADY_STATE,
                {"ops": 300, "publish_weight": 0.7, "subscribe_weight": 0.2,
                 "unsubscribe_weight": 0.1},
            ),
        ],
        tags=("benchmark", "merging"),
    )


@register
def t3_stress() -> ScenarioSpec:
    """Largest canonical tier: big overlay, sustained churn and traffic."""
    return ScenarioSpec(
        name="t3-stress",
        tier="T3",
        description="3x3 broker grid, 100 clients, sustained heavy churn.",
        workload="bike-rental",
        topology=TopologySpec(kind="grid", rows=3, columns=3),
        clients=100,
        phases=[
            PhaseSpec("ramp", PhaseKind.SUBSCRIBE_RAMP, {"count": 400}),
            PhaseSpec(
                "crowd",
                PhaseKind.FLASH_CROWD,
                {"subscriptions": 200, "publications": 400},
            ),
            PhaseSpec("storm", PhaseKind.UNSUBSCRIBE_STORM, {"fraction": 0.5}),
            PhaseSpec(
                "steady",
                PhaseKind.STEADY_STATE,
                {"ops": 1_000, "publish_weight": 0.6, "subscribe_weight": 0.25,
                 "unsubscribe_weight": 0.15},
            ),
        ],
        tags=("stress",),
    )


@register
def t4_massive() -> ScenarioSpec:
    """Million-subscription scale-out tier for the sharded decision pool.

    One million subscriptions and one hundred thousand publications,
    shaped as fifty ramp/storm cycles (20k subscriptions in, 98% out)
    with a final storm-free ramp feeding the publication burst.  The
    cycles keep the *live* set bounded at ~20k: every subscribe runs a
    covering decision against the live set, so an unbounded straight
    ramp is intrinsically quadratic in live subscriptions — cyclic
    churn is how a million decisions stay tractable while still
    exercising arena compaction and the decision pool at full depth.
    Deliberately **not** part of ``CANONICAL_TIERS``: compiling two
    million events in-process is a benchmark-scale job, not a tier-1
    registry test.  Run it via::

        PYTHONPATH=src python -m repro.scenarios run t4-massive \\
            --backend engine --shards 8
    """
    cycles = 50
    phases: list = []
    for cycle in range(cycles - 1):
        phases.append(
            PhaseSpec(
                f"ramp-{cycle:02d}", PhaseKind.SUBSCRIBE_RAMP, {"count": 20_000}
            )
        )
        phases.append(
            PhaseSpec(
                f"storm-{cycle:02d}",
                PhaseKind.UNSUBSCRIBE_STORM,
                {"fraction": 0.98},
            )
        )
    phases.append(
        PhaseSpec("ramp-final", PhaseKind.SUBSCRIBE_RAMP, {"count": 20_000})
    )
    phases.append(
        PhaseSpec("burst", PhaseKind.PUBLISH_BURST, {"count": 100_000})
    )
    return ScenarioSpec(
        name="t4-massive",
        tier="T4",
        description="1M subscriptions over 50 ramp/storm cycles + 100k "
        "publication burst (sharded scale-out tier).",
        workload="paper-redundant",
        workload_params={"m": 8, "domain_size": 10_000, "k": 20},
        topology=TopologySpec(kind="random-tree", size=8),
        clients=500,
        policy="pairwise",
        phases=phases,
        tags=("massive", "sharded"),
    )


#: the canonical tier names, in escalation order
CANONICAL_TIERS = (
    "t0-smoke",
    "t0-discovery",
    "t0-latency",
    "t0-merging",
    "t1-churn",
    "t1-flashcrowd",
    "t2-burst",
    "t2-paper-mix",
    "t2-merge-stress",
    "t3-stress",
)
