"""Command-line interface of the scenario harness.

::

    python -m repro.scenarios list                    # registered scenarios
    python -m repro.scenarios describe t1-churn       # spec + timeline
    python -m repro.scenarios run t1-churn --seed 7   # execute + report
    python -m repro.scenarios run t1-churn --seed 7 --trace run.jsonl
    python -m repro.scenarios run t0-smoke --engine-backend selectivity
    python -m repro.scenarios replay run.jsonl        # byte-exact re-run

``run`` and ``replay`` print the same per-phase metric table; a replay of
a recorded trace reproduces the original run's metrics exactly (wall
times excepted).  ``--engine-backend`` selects the matcher backend
(``linear``/``counting``/``selectivity``) the system under test matches
publications with; ``--latency-model`` selects the simulation kernel's
per-link hop latency model (``zero``, ``fixed[:delay]``,
``lognormal[:mu,sigma]``); ``--policy`` selects the reduction strategy
every broker applies (``none``/``pairwise``/``group``/``merging``/
``hybrid``, with ``--merge-budget`` bounding the merging strategies'
false volume).  All these choices are folded into the spec, so traces
record them and replays default to them.  ``--json`` emits the
machine-readable report instead.

Observability: ``run --obs-spans PATH`` attaches a probe with a span
recorder and exports the run's hop-level causal spans as JSONL (render
them with ``repro-obs report``); ``run --metrics-json PATH`` dumps the
final metric totals plus the per-phase metric deltas as JSON.  Both are
purely observational — the metric table, the trace file and its hash
are unchanged by either flag.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.broker.sim import parse_latency_model
from repro.core.policies import policy_value, strategy_names
from repro.matching.backends import BACKEND_NAMES
from repro.obs.probes import ObsProbe
from repro.obs.spans import SpanRecorder, write_spans
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.events import compile_scenario
from repro.scenarios.registry import REGISTRY
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.trace import TraceError, read_trace, write_trace
from repro.shard.coordinator import PREFILTER_NAMES as SHARD_PREFILTER_NAMES
from repro.utils.tables import render_table

__all__ = ["main"]


def _cmd_list(arguments: argparse.Namespace) -> int:
    rows = []
    for name, spec in REGISTRY.items():
        if arguments.tier and spec.tier.lower() != arguments.tier.lower():
            continue
        rows.append(
            (name, spec.tier, spec.workload, spec.topology.kind,
             str(len(spec.phases)), spec.description)
        )
    if not rows:
        print("no scenarios registered" + (f" for tier {arguments.tier}" if arguments.tier else ""))
        return 1
    labels = ("name", "tier", "workload", "topology", "phases", "description")
    print(render_table(labels, rows))
    return 0


def _get_spec(name: str):
    try:
        return REGISTRY.get(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2)


def _cmd_describe(arguments: argparse.Namespace) -> int:
    spec = _get_spec(arguments.name)
    if arguments.json:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"{spec.name} ({spec.tier}) — {spec.description}")
    print(f"  workload : {spec.workload} {dict(spec.workload_params) or ''}".rstrip())
    print(f"  topology : {spec.topology.kind} ({spec.topology.broker_count} brokers)")
    print(f"  clients  : {spec.clients}")
    print(f"  policy   : {policy_value(spec.policy)} (delta={spec.delta:g}, "
          f"max_iterations={spec.max_iterations})")
    if policy_value(spec.policy) in ("merging", "hybrid"):
        print(f"  merge    : budget {spec.merge_budget:g}")
    print(f"  latency  : {spec.latency_model}")
    if spec.tags:
        print(f"  tags     : {', '.join(spec.tags)}")
    print("  timeline :")
    for phase in spec.phases:
        params = ", ".join(f"{key}={value}" for key, value in phase.params.items())
        print(f"    {phase.name:<14} {phase.kind.value:<18} {params}")
    return 0


def _cmd_run(arguments: argparse.Namespace) -> int:
    spec = _get_spec(arguments.name)
    if arguments.engine_backend:
        # Fold the override into the spec so the trace (and its hash)
        # records exactly what ran and a bare `replay` reproduces it.
        spec = dataclasses.replace(spec, engine_backend=arguments.engine_backend)
    if arguments.latency_model:
        spec = dataclasses.replace(spec, latency_model=arguments.latency_model)
    if arguments.policy:
        spec = dataclasses.replace(spec, policy=arguments.policy)
    if arguments.merge_budget is not None:
        spec = dataclasses.replace(spec, merge_budget=arguments.merge_budget)
    compiled = compile_scenario(spec, arguments.seed)
    if arguments.trace:
        digest = write_trace(arguments.trace, compiled, backend=arguments.backend)
        print(f"[trace written to {arguments.trace} ({digest[:12]}…)]",
              file=sys.stderr)
    recorder = None
    obs = None
    if arguments.obs_spans:
        recorder = SpanRecorder()
        obs = ObsProbe(spans=recorder)
    runner = ScenarioRunner(
        spec,
        seed=arguments.seed,
        backend=arguments.backend,
        obs=obs,
        shards=arguments.shards,
        shard_prefilter=arguments.shard_prefilter,
    )
    report = runner.run(compiled)
    if recorder is not None:
        count = write_spans(arguments.obs_spans, recorder)
        print(
            f"[{count} spans ({len(recorder.traces())} traces) written to "
            f"{arguments.obs_spans}]",
            file=sys.stderr,
        )
    if arguments.metrics_json:
        payload = {
            "scenario": report.scenario,
            "seed": report.seed,
            "backend": report.backend,
            "policy": report.policy,
            "trace_hash": report.trace_hash,
            "totals": dict(report.totals),
            "phases": [
                {"name": phase.name, "metrics": dict(phase.metrics)}
                for phase in report.phases
            ],
        }
        with open(arguments.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[metrics written to {arguments.metrics_json}]", file=sys.stderr)
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_replay(arguments: argparse.Namespace) -> int:
    compiled = read_trace(arguments.trace, verify=not arguments.no_verify)
    # Default to the backend the trace was recorded from, so a bare
    # `replay` reproduces the original run's metrics.
    backend = arguments.backend or compiled.recorded_backend or "network"
    engine_backend = (
        arguments.engine_backend or compiled.recorded_engine_backend
    )
    latency_model = (
        arguments.latency_model or compiled.recorded_latency_model
    )
    runner = ScenarioRunner(
        backend=backend,
        engine_backend=engine_backend,
        latency_model=latency_model,
        shards=arguments.shards,
        shard_prefilter=arguments.shard_prefilter,
    )
    report = runner.run(compiled)
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared ``--shards``/``--shard-prefilter`` flags of run and replay.

    Sharding is an execution-mode choice, not part of the spec: traces
    and their hashes never record it, so a trace recorded single-process
    replays sharded (and vice versa) with identical metrics for the
    network backend.
    """
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run with N shard worker processes (0 = single-process, "
             "the default; network backend: shards the delivery oracle, "
             "semantics unchanged; engine backend: parallel per-shard "
             "decision pool)",
    )
    parser.add_argument(
        "--shard-prefilter",
        choices=SHARD_PREFILTER_NAMES,
        default="hull",
        help="candidate pre-filter of the shard coordinator "
             "(default: hull; 'rows' screens against the workers' "
             "shared-memory arenas zero-copy)",
    )


def _latency_model(value: str) -> str:
    """argparse type hook: validate a latency-model spec string."""
    try:
        parse_latency_model(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.scenarios``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Registry-driven, replayable dynamic-workload scenarios.",
        epilog="Static paper figures live in `python -m repro.experiments`.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--tier", default=None, help="only show one tier")
    list_parser.set_defaults(handler=_cmd_list)

    describe = commands.add_parser("describe", help="show one scenario's spec")
    describe.add_argument("name", help="registered scenario name")
    describe.add_argument("--json", action="store_true", help="emit the spec as JSON")
    describe.set_defaults(handler=_cmd_describe)

    run = commands.add_parser("run", help="compile and execute a scenario")
    run.add_argument("name", help="registered scenario name")
    run.add_argument("--seed", type=int, default=0, help="compilation/backend seed")
    run.add_argument(
        "--backend",
        choices=("network", "engine"),
        default="network",
        help="drive the broker overlay (default) or a single matching engine",
    )
    run.add_argument(
        "--engine-backend",
        choices=BACKEND_NAMES,
        default=None,
        help="matcher backend to match publications with "
             "(default: the spec's engine_backend field)",
    )
    run.add_argument(
        "--latency-model",
        type=_latency_model,
        default=None,
        metavar="MODEL",
        help="per-link hop latency model of the simulation kernel "
             "(zero, fixed[:delay], lognormal[:mu,sigma]; "
             "default: the spec's latency_model field)",
    )
    run.add_argument(
        "--policy",
        choices=strategy_names(),
        default=None,
        help="reduction strategy every broker applies "
             "(default: the spec's policy field); folded into the spec so "
             "traces record it and replays honour it",
    )
    run.add_argument(
        "--merge-budget",
        type=float,
        default=None,
        metavar="FRACTION",
        help="false-volume budget of the merging/hybrid strategies "
             "(default: the spec's merge_budget field)",
    )
    _add_shard_arguments(run)
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record the compiled event stream as a JSONL trace")
    run.add_argument(
        "--obs-spans",
        default=None,
        metavar="PATH",
        help="record hop-level causal spans and export them as JSONL "
             "(render with `repro-obs report PATH`)",
    )
    run.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="dump the final metric totals and per-phase deltas as JSON",
    )
    run.add_argument("--json", action="store_true", help="emit the report as JSON")
    run.set_defaults(handler=_cmd_run)

    replay = commands.add_parser("replay", help="re-run a recorded trace")
    replay.add_argument("trace", help="path to a trace written by `run --trace`")
    replay.add_argument(
        "--backend",
        choices=("network", "engine"),
        default=None,
        help="backend to replay against (default: the one the trace records)",
    )
    replay.add_argument(
        "--engine-backend",
        choices=BACKEND_NAMES,
        default=None,
        help="matcher backend to replay with "
             "(default: the one the trace records)",
    )
    replay.add_argument(
        "--latency-model",
        type=_latency_model,
        default=None,
        metavar="MODEL",
        help="latency model to replay with "
             "(default: the one the trace records)",
    )
    _add_shard_arguments(replay)
    replay.add_argument("--no-verify", action="store_true",
                        help="skip the event-count / trace-hash check")
    replay.add_argument("--json", action="store_true", help="emit the report as JSON")
    replay.set_defaults(handler=_cmd_replay)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    except (TraceError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
