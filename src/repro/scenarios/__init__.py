"""Registry-driven, replayable dynamic-workload scenarios.

Where :mod:`repro.workloads` generates the paper's *static* evaluation
instances (a subscription plus a candidate set), this package expresses
*dynamic* workloads: declarative, seeded :class:`ScenarioSpec` timelines
of subscribe ramps, unsubscribe storms, publication bursts, flash crowds
and steady-state mixes, compiled into deterministic event streams and
executed against the broker overlay or the matching engine with per-phase
metrics.

The moving parts:

:class:`ScenarioSpec` / :class:`PhaseSpec` / :class:`TopologySpec`
    Declarative scenario description (:mod:`repro.scenarios.spec`).
:func:`compile_scenario`
    ``(spec, seed) -> CompiledScenario`` deterministic event stream
    (:mod:`repro.scenarios.events`).
:class:`ScenarioRegistry` / :func:`register`
    Central catalog; ``repro.scenarios.catalog`` registers the seven
    canonical tiers T0–T3 (:mod:`repro.scenarios.registry`).
:class:`ScenarioRunner`
    Drives :class:`~repro.broker.network.BrokerNetwork` or
    :class:`~repro.matching.engine.MatchingEngine` through the stream,
    reporting per-phase metric deltas (:mod:`repro.scenarios.runner`).
:func:`write_trace` / :func:`read_trace`
    JSONL trace recording; any run replays byte-for-byte from its trace
    (:mod:`repro.scenarios.trace`).

Command line: ``python -m repro.scenarios {list,describe,run,replay}``.
"""

from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.catalog import CANONICAL_TIERS
from repro.scenarios.events import (
    CompiledScenario,
    EventAction,
    ScenarioEvent,
    compile_scenario,
    make_workload,
    trace_hash,
)
from repro.scenarios.registry import (
    REGISTRY,
    ScenarioRegistry,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.runner import PhaseReport, ScenarioReport, ScenarioRunner
from repro.scenarios.spec import PhaseKind, PhaseSpec, ScenarioSpec, TopologySpec
from repro.scenarios.trace import TraceError, read_trace, write_trace

__all__ = [
    "CANONICAL_TIERS",
    "CompiledScenario",
    "EventAction",
    "PhaseKind",
    "PhaseReport",
    "PhaseSpec",
    "REGISTRY",
    "ScenarioEvent",
    "ScenarioRegistry",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "TraceError",
    "compile_scenario",
    "get_scenario",
    "make_workload",
    "read_trace",
    "register",
    "scenario_names",
    "trace_hash",
    "write_trace",
]
