"""Compilation of a :class:`~repro.scenarios.spec.ScenarioSpec` into events.

``compile_scenario(spec, seed)`` turns the declarative phase timeline into a
flat, deterministic stream of :class:`ScenarioEvent` operations (subscribe /
unsubscribe / publish), each bound to a client and carrying its payload.

Determinism contract
--------------------
The same ``(spec, seed)`` pair always produces the same compiled scenario:

* all randomness flows from four named streams spawned in a fixed order
  from ``numpy.random.SeedSequence(seed)`` (topology shape, workload
  content, phase mixing, broker network), so adding consumers to one
  stream never perturbs the others;
* subscription and publication identifiers are rewritten to sequential
  scenario-scoped identifiers (``s00001``, ``p00001``, …), so the global
  process-wide ID counters of the data model never leak into a trace.

This is what makes the trace hash of a compiled scenario a stable
fingerprint: two compilations of the same ``(spec, seed)`` — in the same
process or years apart — hash identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.serialization import (
    publication_from_dict,
    publication_to_dict,
    schema_to_dict,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.model.subscriptions import Subscription
from repro.scenarios.spec import PhaseKind, PhaseSpec, ScenarioSpec
from repro.utils.rng import ensure_rng
from repro.workloads.bike_rental import BikeRentalWorkload
from repro.workloads.comparison import ComparisonWorkload
from repro.workloads.grid import GridWorkload
from repro.workloads.scenarios import ScenarioName, generate_scenario

__all__ = [
    "EventAction",
    "ScenarioEvent",
    "CompiledScenario",
    "compile_scenario",
    "derive_streams",
    "make_workload",
    "trace_hash",
    "WORKLOAD_NAMES",
]


class EventAction(str, Enum):
    """What one event does to the system under test."""

    SUBSCRIBE = "subscribe"
    UNSUBSCRIBE = "unsubscribe"
    PUBLISH = "publish"


@dataclass(frozen=True)
class ScenarioEvent:
    """One operation of the compiled event stream.

    Exactly one of ``subscription`` / ``publication`` / ``subscription_id``
    is set, matching the action.
    """

    seq: int
    phase: str
    action: EventAction
    client: str
    subscription: Optional[Subscription] = None
    publication: Optional[Publication] = None
    subscription_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-safe dictionary (one trace line)."""
        payload: Dict[str, Any] = {
            "seq": self.seq,
            "phase": self.phase,
            "action": self.action.value,
            "client": self.client,
        }
        if self.action is EventAction.SUBSCRIBE:
            payload["subscription"] = subscription_to_dict(self.subscription)
        elif self.action is EventAction.PUBLISH:
            payload["publication"] = publication_to_dict(self.publication)
        else:
            payload["subscription_id"] = self.subscription_id
        return payload

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], schema: Schema
    ) -> "ScenarioEvent":
        """Deserialize an event produced by :meth:`to_dict`."""
        action = EventAction(payload["action"])
        subscription = None
        publication = None
        subscription_id = None
        if action is EventAction.SUBSCRIBE:
            subscription = subscription_from_dict(payload["subscription"], schema)
        elif action is EventAction.PUBLISH:
            publication = publication_from_dict(payload["publication"], schema)
        else:
            subscription_id = payload["subscription_id"]
        return cls(
            seq=payload["seq"],
            phase=payload["phase"],
            action=action,
            client=payload["client"],
            subscription=subscription,
            publication=publication,
            subscription_id=subscription_id,
        )


@dataclass
class CompiledScenario:
    """A spec materialised into a concrete, runnable event stream.

    ``recorded_backend``, ``recorded_engine_backend`` and
    ``recorded_latency_model`` are only set on scenarios loaded from a
    trace whose header names the runner backend / matcher backend /
    latency model the original run used; they are advisory replay
    metadata, not part of the stream (and not part of the trace hash — the
    stream itself is backend-independent, and reports always display which
    backends ran).  The matcher backend and latency model that *compile
    into* the spec (``ScenarioSpec.engine_backend`` /
    ``ScenarioSpec.latency_model``) are, by contrast, replay-binding and
    hashed with the rest of the spec.
    """

    spec: ScenarioSpec
    seed: int
    schema: Schema
    edges: List[Tuple[str, str]]
    clients: Dict[str, str]
    events: List[ScenarioEvent]
    recorded_backend: Optional[str] = None
    recorded_engine_backend: Optional[str] = None
    recorded_latency_model: Optional[str] = None

    @property
    def event_count(self) -> int:
        """Number of events in the stream."""
        return len(self.events)

    def trace_hash(self) -> str:
        """Stable fingerprint of the whole compiled scenario.

        Covers everything that determines a replay's outcome — the spec,
        the seed, the schema, the materialised topology, the client
        placement *and* the event stream — so editing any replay-relevant
        part of a recorded trace changes the hash, not just editing event
        lines.
        """
        digest = hashlib.sha256()
        binding = {
            "seed": self.seed,
            "scenario": self.spec.to_dict(),
            "schema": schema_to_dict(self.schema),
            "edges": [list(edge) for edge in self.edges],
            "clients": dict(self.clients),
        }
        digest.update(
            json.dumps(binding, sort_keys=True, separators=(",", ":")).encode()
        )
        digest.update(b"\n")
        digest.update(trace_hash(self.events).encode())
        return digest.hexdigest()


def trace_hash(events: List[ScenarioEvent]) -> str:
    """SHA-256 over the canonical JSON serialization of the events."""
    digest = hashlib.sha256()
    for event in events:
        digest.update(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":")).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()


def derive_streams(seed: int) -> Dict[str, np.random.SeedSequence]:
    """The four named RNG streams of a scenario, spawned in fixed order."""
    topology, workload, mix, network = np.random.SeedSequence(seed).spawn(4)
    return {
        "topology": topology,
        "workload": workload,
        "mix": mix,
        "network": network,
    }


# ----------------------------------------------------------------------
# Workload adapters
# ----------------------------------------------------------------------
class _GridAdapter:
    """Maps the Grid workload onto the subscription/publication protocol."""

    def __init__(self, workload: GridWorkload):
        self._workload = workload
        self.schema = workload.schema

    def subscription(self, subscriber: Optional[str] = None) -> Subscription:
        return self._workload.service_subscription(service_id=subscriber)

    def publication(self, publisher: Optional[str] = None) -> Publication:
        return self._workload.job_publication(job_id=publisher)


class _PaperFigureWorkload:
    """Streams subscriptions/publications out of the paper's static scenarios.

    Each paper-figure generator produces one *instance* — a base
    subscription ``s`` plus candidate set ``S`` engineered for a specific
    covering structure (Section 6).  The adapter turns that into a stream:
    it drains ``[s] + S`` as the subscription source (regenerating a fresh
    instance when the pool is exhausted) and publishes points that fall
    inside the current base subscription with probability
    ``match_probability`` (else uniformly in the space), so publications
    actually exercise the covering-structured routing state.
    """

    def __init__(
        self,
        scenario: ScenarioName,
        schema: Schema,
        rng: np.random.Generator,
        k: int = 20,
        match_probability: float = 0.7,
        **scenario_kwargs: Any,
    ):
        self.schema = schema
        self._scenario = ScenarioName(scenario)
        self._rng = rng
        self._k = k
        self._match_probability = match_probability
        self._scenario_kwargs = dict(scenario_kwargs)
        self._pool: List[Subscription] = []
        self._base: Optional[Subscription] = None

    def _refill(self) -> None:
        instance = generate_scenario(
            self._scenario, self.schema, self._k, rng=self._rng,
            **self._scenario_kwargs,
        )
        self._base = instance.subscription
        self._pool = [instance.subscription, *instance.candidates]

    def subscription(self, subscriber: Optional[str] = None) -> Subscription:
        if not self._pool:
            self._refill()
        return self._pool.pop(0).replace(subscriber=subscriber)

    def publication(self, publisher: Optional[str] = None) -> Publication:
        if self._base is None:
            self._refill()
        if self._rng.random() < self._match_probability:
            values = self._base.sample_point(self._rng)
        else:
            values = Subscription.whole_space(self.schema).sample_point(self._rng)
        return Publication(self.schema, values, publisher=publisher)


#: workload names accepted by :func:`make_workload`
WORKLOAD_NAMES = (
    "bike-rental",
    "grid",
    "comparison",
    "paper-redundant",
    "paper-noncover",
    "paper-extreme",
)

_PAPER_SCENARIOS = {
    "paper-redundant": ScenarioName.REDUNDANT_COVERING,
    "paper-noncover": ScenarioName.NON_COVER,
    "paper-extreme": ScenarioName.EXTREME_NON_COVER,
}


def make_workload(name: str, params: Mapping[str, Any], rng: np.random.Generator):
    """Instantiate the named workload adapter with its own RNG stream.

    The returned object exposes ``schema``, ``subscription(subscriber=…)``
    and ``publication(publisher=…)``.
    """
    params = dict(params)
    if name == "bike-rental":
        return BikeRentalWorkload(rng=rng, **params)
    if name == "grid":
        return _GridAdapter(GridWorkload(rng=rng, **params))
    if name == "comparison":
        m = params.pop("m", 8)
        domain_size = params.pop("domain_size", 10_000)
        schema = Schema.uniform_integer(m, 0, domain_size)
        return ComparisonWorkload(schema=schema, rng=rng, **params)
    if name in _PAPER_SCENARIOS:
        m = params.pop("m", 8)
        domain_size = params.pop("domain_size", 10_000)
        schema = Schema.uniform_integer(m, 0, domain_size)
        if _PAPER_SCENARIOS[name] is ScenarioName.EXTREME_NON_COVER:
            params.setdefault("gap_fraction", 0.02)
        return _PaperFigureWorkload(
            _PAPER_SCENARIOS[name], schema, rng, **params
        )
    raise ValueError(
        f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
    )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class _EventBuilder:
    """Accumulates events while tracking live subscriptions for churn."""

    def __init__(self, spec: ScenarioSpec, workload, mix: np.random.Generator):
        self.spec = spec
        self.workload = workload
        self.mix = mix
        self.events: List[ScenarioEvent] = []
        self.client_names = [f"c{index + 1:03d}" for index in range(spec.clients)]
        #: live subscription ids in issue order -> owning client
        self._live: Dict[str, str] = {}
        self._subscription_count = 0
        self._publication_count = 0

    def _pick_client(self) -> str:
        return self.client_names[int(self.mix.integers(0, len(self.client_names)))]

    def subscribe(self, phase: str) -> None:
        client = self._pick_client()
        self._subscription_count += 1
        identifier = f"s{self._subscription_count:05d}"
        subscription = self.workload.subscription(subscriber=client).replace(
            subscription_id=identifier
        )
        self._live[identifier] = client
        self.events.append(
            ScenarioEvent(
                seq=len(self.events) + 1,
                phase=phase,
                action=EventAction.SUBSCRIBE,
                client=client,
                subscription=subscription,
            )
        )

    def unsubscribe(self, phase: str) -> bool:
        if not self._live:
            return False
        identifiers = list(self._live)
        identifier = identifiers[int(self.mix.integers(0, len(identifiers)))]
        client = self._live.pop(identifier)
        self.events.append(
            ScenarioEvent(
                seq=len(self.events) + 1,
                phase=phase,
                action=EventAction.UNSUBSCRIBE,
                client=client,
                subscription_id=identifier,
            )
        )
        return True

    def publish(self, phase: str) -> None:
        client = self._pick_client()
        self._publication_count += 1
        raw = self.workload.publication(publisher=client)
        publication = Publication(
            raw.schema,
            raw.values,
            publication_id=f"p{self._publication_count:05d}",
            publisher=client,
            metadata=dict(raw.metadata),
        )
        self.events.append(
            ScenarioEvent(
                seq=len(self.events) + 1,
                phase=phase,
                action=EventAction.PUBLISH,
                client=client,
                publication=publication,
            )
        )

    @property
    def live_count(self) -> int:
        return len(self._live)


def _compile_phase(builder: _EventBuilder, phase: PhaseSpec) -> None:
    params = phase.params
    if phase.kind is PhaseKind.SUBSCRIBE_RAMP:
        for _ in range(int(params.get("count", 0))):
            builder.subscribe(phase.name)
    elif phase.kind is PhaseKind.PUBLISH_BURST:
        for _ in range(int(params.get("count", 0))):
            builder.publish(phase.name)
    elif phase.kind is PhaseKind.UNSUBSCRIBE_STORM:
        if "count" in params:
            victims = min(int(params["count"]), builder.live_count)
        else:
            victims = int(round(float(params["fraction"]) * builder.live_count))
        for _ in range(victims):
            if not builder.unsubscribe(phase.name):
                break
    elif phase.kind is PhaseKind.FLASH_CROWD:
        for _ in range(int(params.get("subscriptions", 0))):
            builder.subscribe(phase.name)
        for _ in range(int(params.get("publications", 0))):
            builder.publish(phase.name)
    elif phase.kind is PhaseKind.STEADY_STATE:
        ops = int(params.get("ops", 0))
        weights = np.array(
            [
                float(params.get("publish_weight", 0.6)),
                float(params.get("subscribe_weight", 0.3)),
                float(params.get("unsubscribe_weight", 0.1)),
            ]
        )
        weights = weights / weights.sum()
        for _ in range(ops):
            roll = float(builder.mix.random())
            if roll < weights[0]:
                builder.publish(phase.name)
            elif roll < weights[0] + weights[1]:
                builder.subscribe(phase.name)
            elif not builder.unsubscribe(phase.name):
                # Nothing live to cancel; keep the op count by publishing.
                builder.publish(phase.name)
    else:  # pragma: no cover - PhaseSpec validates kinds
        raise ValueError(f"unknown phase kind {phase.kind!r}")


def compile_scenario(spec: ScenarioSpec, seed: int = 0) -> CompiledScenario:
    """Compile ``spec`` into a deterministic event stream for ``seed``."""
    streams = derive_streams(seed)
    topology_rng = ensure_rng(streams["topology"])
    workload_rng = ensure_rng(streams["workload"])
    mix_rng = ensure_rng(streams["mix"])

    edges = spec.topology.build(rng=topology_rng)
    workload = make_workload(spec.workload, spec.workload_params, workload_rng)

    builder = _EventBuilder(spec, workload, mix_rng)
    # Clients are attached round-robin over the brokers in edge-list order
    # (stable across runs because the edge list itself is deterministic).
    broker_order: List[str] = []
    for left, right in edges:
        for broker in (left, right):
            if broker not in broker_order:
                broker_order.append(broker)
    if not broker_order:
        broker_order = ["B1"]
    clients = {
        client: broker_order[index % len(broker_order)]
        for index, client in enumerate(builder.client_names)
    }

    for phase in spec.phases:
        _compile_phase(builder, phase)

    return CompiledScenario(
        spec=spec,
        seed=seed,
        schema=workload.schema,
        edges=edges,
        clients=clients,
        events=builder.events,
    )
