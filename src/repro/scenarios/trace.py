"""JSONL trace recording and replay.

A trace file is one header line followed by one line per event::

    {"kind": "repro.scenarios.trace", "version": 1, "seed": 7,
     "scenario": {...}, "schema": {...}, "edges": [...],
     "clients": {...}, "event_count": 123, "trace_hash": "...",
     "engine_backend": "linear"}
    {"seq": 1, "phase": "ramp", "action": "subscribe", ...}
    ...

The header embeds everything a replay needs — the spec, the compilation
seed, the materialised topology and the client placement — so a recorded
run is self-contained: ``read_trace`` reconstructs the exact
:class:`~repro.scenarios.events.CompiledScenario` the original run
executed, and feeding it back through the runner reproduces the original
per-phase metrics bit for bit (the backend RNG is re-derived from the
recorded seed).

The header's ``trace_hash`` is the SHA-256 of the canonical event lines
*bound to* the replay-relevant header fields (spec, seed, schema, edges,
client placement); ``read_trace`` recomputes and verifies it, so silent
corruption or hand-editing of either the events or the header is detected
instead of producing quietly different replays.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Union

from repro.model.serialization import schema_from_dict, schema_to_dict
from repro.scenarios.events import CompiledScenario, ScenarioEvent
from repro.scenarios.spec import ScenarioSpec

__all__ = ["TraceError", "write_trace", "read_trace", "TRACE_KIND", "TRACE_VERSION"]

TRACE_KIND = "repro.scenarios.trace"
TRACE_VERSION = 1


class TraceError(ValueError):
    """A trace file is malformed, truncated or corrupted."""


def write_trace(
    path: Union[str, os.PathLike],
    compiled: CompiledScenario,
    backend: Optional[str] = None,
) -> str:
    """Write ``compiled`` as a JSONL trace; returns the trace hash.

    ``backend`` records which runner backend the run used, so a later
    replay can default to the same one (the event stream itself is
    backend-agnostic).  The header also mirrors the spec's matcher
    backend (``engine_backend``) so a replay reproduces the original
    metrics — including the per-backend membership-test counters —
    byte-exactly.
    """
    digest = compiled.trace_hash()
    header: Dict[str, Any] = {
        "kind": TRACE_KIND,
        "version": TRACE_VERSION,
        "seed": compiled.seed,
        "scenario": compiled.spec.to_dict(),
        "schema": schema_to_dict(compiled.schema),
        "edges": [list(edge) for edge in compiled.edges],
        "clients": dict(compiled.clients),
        "event_count": compiled.event_count,
        "trace_hash": digest,
        "engine_backend": compiled.spec.engine_backend,
        "latency_model": compiled.spec.latency_model,
    }
    if backend is not None:
        header["backend"] = backend
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True))
        handle.write("\n")
        for event in compiled.events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return digest


def read_trace(
    path: Union[str, os.PathLike], verify: bool = True
) -> CompiledScenario:
    """Load a JSONL trace back into a runnable :class:`CompiledScenario`.

    With ``verify`` (the default) the event count and trace hash recorded
    in the header are checked against the actual event lines.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in (raw.strip() for raw in handle) if line]
    if not lines:
        raise TraceError(f"trace {os.fspath(path)!r} is empty")

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc
    if header.get("kind") != TRACE_KIND:
        raise TraceError(
            f"not a scenario trace (kind={header.get('kind')!r})"
        )
    if header.get("version") != TRACE_VERSION:
        raise TraceError(
            f"unsupported trace version {header.get('version')!r} "
            f"(expected {TRACE_VERSION})"
        )

    try:
        spec = ScenarioSpec.from_dict(header["scenario"])
        schema = schema_from_dict(header["schema"])
        seed = int(header["seed"])
        edges = [tuple(edge) for edge in header["edges"]]
        clients = dict(header["clients"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc

    events = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            events.append(ScenarioEvent.from_dict(json.loads(line), schema))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed event on line {index}: {exc}") from exc

    compiled = CompiledScenario(
        spec=spec,
        seed=seed,
        schema=schema,
        edges=edges,
        clients=clients,
        events=events,
        recorded_backend=header.get("backend"),
        recorded_engine_backend=header.get("engine_backend"),
        recorded_latency_model=header.get("latency_model"),
    )
    if verify:
        expected_count = header.get("event_count")
        if expected_count is not None and expected_count != len(events):
            raise TraceError(
                f"trace declares {expected_count} events but contains "
                f"{len(events)}"
            )
        recorded = header.get("trace_hash")
        actual = compiled.trace_hash()
        if recorded is not None and recorded != actual:
            raise TraceError(
                "trace hash mismatch: header says "
                f"{recorded[:12]}…, trace content hashes to {actual[:12]}… "
                "(events or replay-relevant header fields were modified)"
            )
    return compiled
