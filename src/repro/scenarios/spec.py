"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a *dynamic* publish/subscribe workload:
which attribute-space workload generates subscriptions and publications,
which broker overlay carries them, which covering policy the brokers apply,
and — the part the static ``repro.workloads`` generators cannot express —
a timeline of :class:`PhaseSpec` phases: subscribe ramps, unsubscribe
storms, publication bursts, flash crowds and steady-state mixes.

Specs are plain data.  Together with a seed they compile into a
deterministic event stream (see :mod:`repro.scenarios.events`); the same
``(spec, seed)`` pair always yields the same stream, which is what makes
every scenario run replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.broker.sim import parse_latency_model
from repro.broker.topologies import (
    grid_topology,
    line_topology,
    random_tree_topology,
    star_topology,
)
from repro.core.policies import DEFAULT_MERGE_BUDGET, policy_value, resolve_policy
from repro.core.store import CoveringPolicyName
from repro.matching.backends import BACKEND_NAMES
from repro.utils.rng import RandomSource

__all__ = ["PhaseKind", "PhaseSpec", "TopologySpec", "ScenarioSpec"]


class PhaseKind(str, Enum):
    """The kinds of workload phases a scenario timeline can contain."""

    #: ``count`` new subscriptions arrive, spread over the client pool
    SUBSCRIBE_RAMP = "subscribe_ramp"
    #: a ``fraction`` of the active subscriptions (or a fixed ``count``)
    #: is cancelled in one go
    UNSUBSCRIBE_STORM = "unsubscribe_storm"
    #: ``count`` publications arrive back to back
    PUBLISH_BURST = "publish_burst"
    #: ``subscriptions`` new subscribers pile in, immediately followed by
    #: ``publications`` publications — the flash-crowd pattern
    FLASH_CROWD = "flash_crowd"
    #: ``ops`` operations drawn from a publish/subscribe/unsubscribe mix
    STEADY_STATE = "steady_state"


#: parameters each phase kind understands (used for validation)
_PHASE_PARAMS: Dict[PhaseKind, Tuple[str, ...]] = {
    PhaseKind.SUBSCRIBE_RAMP: ("count",),
    PhaseKind.UNSUBSCRIBE_STORM: ("fraction", "count"),
    PhaseKind.PUBLISH_BURST: ("count",),
    PhaseKind.FLASH_CROWD: ("subscriptions", "publications"),
    PhaseKind.STEADY_STATE: (
        "ops",
        "publish_weight",
        "subscribe_weight",
        "unsubscribe_weight",
    ),
}


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a scenario timeline.

    Parameters
    ----------
    name:
        Unique (within the scenario) phase label, used in reports/traces.
    kind:
        What the phase does (see :class:`PhaseKind`).
    params:
        Kind-specific parameters, e.g. ``{"count": 100}`` for a ramp or
        ``{"fraction": 0.5}`` for a storm.
    """

    name: str
    kind: PhaseKind
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", PhaseKind(self.kind))
        object.__setattr__(self, "params", dict(self.params))
        allowed = _PHASE_PARAMS[self.kind]
        unknown = set(self.params) - set(allowed)
        if unknown:
            raise ValueError(
                f"phase {self.name!r} ({self.kind.value}) does not accept "
                f"parameters {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        if self.kind is PhaseKind.UNSUBSCRIBE_STORM:
            if ("fraction" in self.params) == ("count" in self.params):
                raise ValueError(
                    f"phase {self.name!r}: an unsubscribe storm needs exactly "
                    "one of 'fraction' or 'count'"
                )
        if self.kind is PhaseKind.STEADY_STATE:
            weights = [
                float(self.params.get("publish_weight", 0.6)),
                float(self.params.get("subscribe_weight", 0.3)),
                float(self.params.get("unsubscribe_weight", 0.1)),
            ]
            if any(weight < 0 for weight in weights) or sum(weights) <= 0:
                raise ValueError(
                    f"phase {self.name!r}: steady-state weights must be "
                    "non-negative with a positive sum"
                )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary."""
        return {"name": self.name, "kind": self.kind.value, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PhaseSpec":
        """Deserialize a phase produced by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            kind=PhaseKind(payload["kind"]),
            params=payload.get("params", {}),
        )


@dataclass(frozen=True)
class TopologySpec:
    """A broker overlay described by shape rather than edge list.

    ``kind`` is one of ``line``, ``star``, ``grid`` or ``random-tree``;
    ``size`` is the broker count (for grids, ``rows``/``columns`` are used
    instead).  ``random-tree`` draws its shape from the scenario's derived
    topology RNG stream, so it too is deterministic per ``(spec, seed)``.
    """

    kind: str = "line"
    size: int = 3
    rows: int = 0
    columns: int = 0

    _BUILDERS = ("line", "star", "grid", "random-tree")

    def __post_init__(self) -> None:
        if self.kind not in self._BUILDERS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{self._BUILDERS}"
            )
        if self.kind == "grid" and (self.rows < 1 or self.columns < 1):
            raise ValueError("grid topologies need positive rows and columns")
        if self.kind != "grid" and self.size < 1:
            raise ValueError("a topology needs at least one broker")

    def build(self, rng: RandomSource = None) -> List[Tuple[str, str]]:
        """Materialise the edge list."""
        if self.kind == "line":
            return line_topology(self.size)
        if self.kind == "star":
            return star_topology(self.size)
        if self.kind == "grid":
            return grid_topology(self.rows, self.columns)
        return random_tree_topology(self.size, rng=rng)

    @property
    def broker_count(self) -> int:
        """Number of brokers the topology will contain."""
        if self.kind == "grid":
            return self.rows * self.columns
        return self.size

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "grid":
            payload["rows"] = self.rows
            payload["columns"] = self.columns
        else:
            payload["size"] = self.size
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        """Deserialize a topology produced by :meth:`to_dict`."""
        return cls(
            kind=payload.get("kind", "line"),
            size=payload.get("size", 3),
            rows=payload.get("rows", 0),
            columns=payload.get("columns", 0),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative dynamic-workload scenario.

    Attributes
    ----------
    name:
        Registry identifier (e.g. ``t1-churn``).
    tier:
        Scale tier, ``T0`` (smoke) through ``T3`` (stress).
    description:
        One-line human description shown by ``repro-scenarios list``.
    workload:
        Name of the subscription/publication generator driving the
        scenario: ``bike-rental``, ``grid``, ``comparison`` or one of the
        paper-figure streams (``paper-redundant``, ``paper-noncover``,
        ``paper-extreme``).
    workload_params:
        Extra keyword parameters for the workload factory.
    topology:
        Broker overlay shape.
    clients:
        Number of clients attached (round-robin) to the brokers.
    policy:
        Reduction strategy every broker applies (``none``, ``pairwise``,
        ``group``, ``merging`` or ``hybrid``).  Like the matcher backend
        it is recorded in traces; the pre-existing values serialize
        exactly as they always did, so their trace hashes are unchanged.
    merge_budget:
        False-volume budget of the merging strategies.  Folded into the
        serialized spec (and therefore the trace hash) only when
        non-default, so specs predating the merging strategies keep their
        hashes.
    delta:
        Error bound of the probabilistic checker (``group`` policy).
    max_iterations:
        RSPC guess cap per covering decision.
    engine_backend:
        Matcher backend the system under test matches publications with
        (one of :data:`~repro.matching.backends.BACKEND_NAMES`): the
        matching engine's membership indexes on the ``engine`` runner
        backend, every broker's routing-table lookup on the ``network``
        one.  Recorded in traces so replays reproduce the original
        metrics exactly.
    latency_model:
        Per-link hop latency model of the broker network's simulation
        kernel (``"zero"``, ``"fixed[:delay]"`` or
        ``"lognormal[:mu,sigma]"`` — see
        :func:`~repro.broker.sim.make_latency_model`).  Like the matcher
        backend it is recorded in traces (and folded into the trace hash
        when non-default) so replays reproduce the original run's timed
        metrics exactly.  Ignored by the ``engine`` runner backend.
    phases:
        The workload timeline.
    tags:
        Free-form labels (used by ``list`` filtering and CI selection).
    """

    name: str
    tier: str = "T0"
    description: str = ""
    workload: str = "bike-rental"
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    topology: TopologySpec = field(default_factory=TopologySpec)
    clients: int = 8
    policy: CoveringPolicyName = CoveringPolicyName.GROUP
    merge_budget: float = DEFAULT_MERGE_BUDGET
    delta: float = 1e-6
    max_iterations: int = 200
    engine_backend: str = "linear"
    latency_model: str = "zero"
    phases: Sequence[PhaseSpec] = ()
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", resolve_policy(self.policy))
        if self.merge_budget < 0:
            raise ValueError("merge_budget must be non-negative")
        if self.engine_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown engine backend {self.engine_backend!r}; expected "
                f"one of {BACKEND_NAMES}"
            )
        parse_latency_model(self.latency_model)  # validates, raises ValueError
        object.__setattr__(self, "workload_params", dict(self.workload_params))
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.clients < 1:
            raise ValueError("a scenario needs at least one client")
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        seen: set = set()
        for phase in self.phases:
            if phase.name in seen:
                raise ValueError(
                    f"scenario {self.name!r} has duplicate phase {phase.name!r}"
                )
            seen.add(phase.name)

    @property
    def phase_names(self) -> Tuple[str, ...]:
        """The ordered phase labels of the timeline."""
        return tuple(phase.name for phase in self.phases)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary (JSON-safe).

        The default ``engine_backend``, ``latency_model`` and
        ``merge_budget`` are omitted so that the serialized form — and
        therefore the trace hash bound to it — of every spec predating
        those seams is unchanged; only a non-default value (which
        genuinely changes the replay's metrics) alters the hash.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "tier": self.tier,
            "description": self.description,
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "topology": self.topology.to_dict(),
            "clients": self.clients,
            "policy": policy_value(self.policy),
            "delta": self.delta,
            "max_iterations": self.max_iterations,
            "phases": [phase.to_dict() for phase in self.phases],
            "tags": list(self.tags),
        }
        if self.engine_backend != "linear":
            payload["engine_backend"] = self.engine_backend
        if self.latency_model != "zero":
            payload["latency_model"] = self.latency_model
        if self.merge_budget != DEFAULT_MERGE_BUDGET:
            payload["merge_budget"] = self.merge_budget
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Deserialize a scenario produced by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            tier=payload.get("tier", "T0"),
            description=payload.get("description", ""),
            workload=payload.get("workload", "bike-rental"),
            workload_params=payload.get("workload_params", {}),
            topology=TopologySpec.from_dict(payload.get("topology", {})),
            clients=payload.get("clients", 8),
            policy=payload.get("policy", "group"),
            merge_budget=payload.get("merge_budget", DEFAULT_MERGE_BUDGET),
            delta=payload.get("delta", 1e-6),
            max_iterations=payload.get("max_iterations", 200),
            engine_backend=payload.get("engine_backend", "linear"),
            latency_model=payload.get("latency_model", "zero"),
            phases=[PhaseSpec.from_dict(item) for item in payload.get("phases", [])],
            tags=tuple(payload.get("tags", ())),
        )
