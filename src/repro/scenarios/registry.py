"""The scenario registry.

Scenarios are contributed as zero-argument *factories* returning a
:class:`~repro.scenarios.spec.ScenarioSpec`, registered with the
``@register`` decorator::

    from repro.scenarios.registry import register

    @register
    def my_scenario() -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", ...)

The default registry is module-level so the canonical catalog
(:mod:`repro.scenarios.catalog`), project-local scenario files and tests
all share one namespace; isolated registries can be created for testing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioRegistry", "REGISTRY", "register", "get_scenario", "scenario_names"]

ScenarioFactory = Callable[[], ScenarioSpec]


class ScenarioRegistry:
    """A name → scenario-factory mapping with decorator-based registration."""

    def __init__(self) -> None:
        self._factories: Dict[str, ScenarioFactory] = {}

    def register(
        self, factory: Optional[ScenarioFactory] = None, *, name: Optional[str] = None
    ) -> Callable:
        """Register a scenario factory (usable bare or with ``name=…``).

        The factory is invoked once at registration to validate the spec
        and learn its name; later :meth:`get` calls invoke it again so every
        caller receives a fresh spec.
        """
        def _decorate(fn: ScenarioFactory) -> ScenarioFactory:
            spec = fn()
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(
                    f"scenario factory {fn!r} must return a ScenarioSpec, "
                    f"got {type(spec)!r}"
                )
            key = name or spec.name
            if key != spec.name:
                raise ValueError(
                    f"registration name {key!r} does not match spec name "
                    f"{spec.name!r}"
                )
            if key in self._factories:
                raise ValueError(f"scenario {key!r} is already registered")
            self._factories[key] = fn
            return fn

        if factory is not None:
            return _decorate(factory)
        return _decorate

    def get(self, name: str) -> ScenarioSpec:
        """A fresh spec for the named scenario."""
        factory = self._factories.get(name)
        if factory is None:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(f"unknown scenario {name!r}; registered: {known}")
        return factory()

    def names(self) -> List[str]:
        """Registered scenario names, sorted."""
        return sorted(self._factories)

    def items(self) -> Iterator[Tuple[str, ScenarioSpec]]:
        """``(name, spec)`` pairs in name order."""
        for name in self.names():
            yield name, self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


#: the process-wide default registry
REGISTRY = ScenarioRegistry()

#: decorator registering into the default registry
register = REGISTRY.register


def get_scenario(name: str) -> ScenarioSpec:
    """Fetch a scenario spec from the default registry."""
    return REGISTRY.get(name)


def scenario_names() -> List[str]:
    """Names registered in the default registry."""
    return REGISTRY.names()
