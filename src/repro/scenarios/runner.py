"""Execution of compiled scenarios against the system under test.

:class:`ScenarioRunner` drives either the distributed
:class:`~repro.broker.network.BrokerNetwork` (``backend="network"``, the
default — measures routing traffic, covering decisions and delivery loss
against the network's global oracle) or a single
:class:`~repro.matching.engine.MatchingEngine` (``backend="engine"`` — the
hot-loop configuration used by the throughput benchmark).

Per phase, the runner takes a metrics snapshot before and after the
phase's events and reports the counter deltas, so a report reads as
"what did the *storm* cost" rather than one blurred total.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.broker.network import BrokerNetwork
from repro.broker.sim import parse_latency_model
from repro.core.policies import policy_value
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.matching.backends import BACKEND_NAMES
from repro.matching.engine import MatchingEngine
from repro.obs import probes as obs_probes
from repro.scenarios.events import (
    CompiledScenario,
    EventAction,
    compile_scenario,
    derive_streams,
)
from repro.scenarios.spec import ScenarioSpec
from repro.utils.rng import ensure_rng
from repro.utils.tables import render_table

__all__ = ["PhaseReport", "ScenarioReport", "ScenarioRunner"]


@dataclass
class PhaseReport:
    """Outcome of one phase of a scenario run."""

    name: str
    kind: str
    events: int
    subscribes: int
    unsubscribes: int
    publishes: int
    wall_time: float
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary."""
        return {
            "name": self.name,
            "kind": self.kind,
            "events": self.events,
            "subscribes": self.subscribes,
            "unsubscribes": self.unsubscribes,
            "publishes": self.publishes,
            "wall_time": self.wall_time,
            "metrics": dict(self.metrics),
        }


@dataclass
class ScenarioReport:
    """Outcome of a full scenario run."""

    scenario: str
    tier: str
    seed: int
    backend: str
    policy: str
    brokers: int
    clients: int
    event_count: int
    trace_hash: str
    wall_time: float
    engine_backend: str = "linear"
    latency_model: str = "zero"
    phases: List[PhaseReport] = field(default_factory=list)
    totals: Dict[str, float] = field(default_factory=dict)

    @property
    def false_decision_rate(self) -> float:
        """Fraction of expected notifications lost to erroneous decisions."""
        expected = self.totals.get("expected_notifications", 0)
        if not expected:
            return 0.0
        return self.totals.get("missed_notifications", 0) / expected

    @property
    def events_per_second(self) -> float:
        """Throughput of the run (0.0 when wall time was unmeasurably small)."""
        if self.wall_time <= 0:
            return 0.0
        return self.event_count / self.wall_time

    def phase_metrics(self) -> List[Dict[str, Any]]:
        """Per-phase metric deltas, wall-time excluded.

        This is the replay-comparison view: two runs of the same compiled
        scenario must agree on it exactly, while wall times naturally
        differ.
        """
        return [
            {"name": phase.name, "events": phase.events, "metrics": dict(phase.metrics)}
            for phase in self.phases
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary (JSON-safe)."""
        return {
            "scenario": self.scenario,
            "tier": self.tier,
            "seed": self.seed,
            "backend": self.backend,
            "engine_backend": self.engine_backend,
            "policy": self.policy,
            "brokers": self.brokers,
            "clients": self.clients,
            "event_count": self.event_count,
            "trace_hash": self.trace_hash,
            "latency_model": self.latency_model,
            "wall_time": self.wall_time,
            "events_per_second": round(self.events_per_second, 1),
            "false_decision_rate": round(self.false_decision_rate, 6),
            "phases": [phase.to_dict() for phase in self.phases],
            "totals": dict(self.totals),
        }

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    _NETWORK_COLUMNS = (
        ("events", "events"),
        ("sub msgs", "subscription_messages"),
        ("unsub msgs", "unsubscription_messages"),
        ("pub msgs", "publication_messages"),
        ("notified", "notifications"),
        ("missed", "missed_notifications"),
        ("false pos", "false_positive_notifications"),
        ("suppressed", "suppressed_subscriptions"),
        ("checks", "subsumption_checks"),
        ("rspc iters", "rspc_iterations"),
    )
    _ENGINE_COLUMNS = (
        ("events", "events"),
        ("matched pubs", "publications"),
        ("notified", "notifications"),
        ("active tests", "active_tests"),
        ("covered tests", "covered_tests"),
        ("stored subs", "subscriptions_total"),
    )

    @property
    def _COLUMNS(self):
        return self._ENGINE_COLUMNS if self.backend == "engine" else self._NETWORK_COLUMNS

    def render(self) -> str:
        """ASCII table of the per-phase metric deltas plus a totals row."""
        header = [
            f"Scenario {self.scenario} ({self.tier}) — seed {self.seed}, "
            f"backend {self.backend}, matcher {self.engine_backend}, "
            f"latency {self.latency_model}, policy {self.policy}",
            f"brokers {self.brokers}, clients {self.clients}, "
            f"{self.event_count} events in {self.wall_time * 1000:.1f} ms "
            f"({self.events_per_second:,.0f} events/s), "
            f"false-decision rate {self.false_decision_rate:.4f}",
        ]
        labels = ["phase"] + [label for label, _ in self._COLUMNS] + ["ms"]
        rows: List[List[str]] = []
        for phase in self.phases:
            row = [phase.name, str(phase.events)]
            for _, key in self._COLUMNS[1:]:
                value = phase.metrics.get(key, "")
                row.append(f"{value:g}" if value != "" else "-")
            row.append(f"{phase.wall_time * 1000:.1f}")
            rows.append(row)
        total_row = ["TOTAL", str(self.event_count)]
        for _, key in self._COLUMNS[1:]:
            value = self.totals.get(key, "")
            total_row.append(f"{value:g}" if value != "" else "-")
        total_row.append(f"{self.wall_time * 1000:.1f}")
        rows.append(total_row)

        return "\n".join(
            header + [render_table(labels, rows, right_align_from=1)]
        )


class ScenarioRunner:
    """Runs a (compiled) scenario against the chosen backend.

    Parameters
    ----------
    spec:
        The scenario to run (ignored when :meth:`run` is given an already
        compiled scenario).
    seed:
        Seed controlling compilation *and* the backend's random streams.
    backend:
        ``network`` (broker overlay, full metrics) or ``engine`` (single
        matching engine, hot-loop throughput).
    engine_backend:
        Matcher backend override (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`); when ``None``
        the spec's ``engine_backend`` field decides.
    latency_model:
        Latency model override for the network backend's simulation
        kernel; when ``None`` the spec's ``latency_model`` field decides.
    obs:
        Optional :class:`~repro.obs.probes.ObsProbe`.  When given, it is
        installed as the module-level active probe for the duration of
        :meth:`run` (the previous probe is restored afterwards), so both
        backends — the network's construction-time capture and the
        engine's per-call lookup — observe through it.  ``None`` (the
        default) leaves whatever probe state the process already has.
    shards:
        Multi-process execution (``0``, the default, is today's
        single-process path, byte for byte).  An execution-mode choice,
        deliberately *not* part of the spec: traces and their hashes do
        not record it.  For the network backend it shards the global
        delivery oracle (semantics unchanged at any count); for the
        engine backend it runs a pool of per-shard engines whose checker
        streams derive from the fixed shard→seed mapping, and groups
        consecutive publish events into batched dispatches.
    shard_prefilter:
        Candidate pre-filter of the shard coordinator (one of
        :data:`~repro.shard.coordinator.PREFILTER_NAMES`); ignored when
        ``shards=0``.
    """

    def __init__(
        self,
        spec: Optional[ScenarioSpec] = None,
        seed: int = 0,
        backend: str = "network",
        engine_backend: Optional[str] = None,
        latency_model: Optional[str] = None,
        obs=None,
        shards: int = 0,
        shard_prefilter: str = "hull",
    ):
        if backend not in ("network", "engine"):
            raise ValueError(f"unknown backend {backend!r}")
        if engine_backend is not None and engine_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown engine backend {engine_backend!r}; expected one "
                f"of {BACKEND_NAMES}"
            )
        if latency_model is not None:
            parse_latency_model(latency_model)
        if shards < 0:
            raise ValueError("shards must be >= 0")
        self.spec = spec
        self.seed = seed
        self.backend = backend
        self.engine_backend = engine_backend
        self.latency_model = latency_model
        self.obs = obs
        self.shards = shards
        self.shard_prefilter = shard_prefilter

    def _engine_backend_for(self, compiled: CompiledScenario) -> str:
        return self.engine_backend or compiled.spec.engine_backend

    def _latency_model_for(self, compiled: CompiledScenario) -> str:
        return self.latency_model or compiled.spec.latency_model

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, compiled: Optional[CompiledScenario] = None) -> ScenarioReport:
        """Execute the scenario and return its report.

        When ``compiled`` is given (e.g. loaded from a trace), the event
        stream is taken verbatim and only the backend's random stream is
        re-derived from the compiled seed — which is what makes a replay
        reproduce the original run's metrics exactly.
        """
        if compiled is None:
            if self.spec is None:
                raise ValueError("runner needs a spec or a compiled scenario")
            compiled = compile_scenario(self.spec, self.seed)
        if self.obs is not None:
            with obs_probes.enabled(self.obs):
                return self._dispatch(compiled)
        return self._dispatch(compiled)

    def _dispatch(self, compiled: CompiledScenario) -> ScenarioReport:
        if self.backend == "network":
            return self._run_network(compiled)
        return self._run_engine(compiled)

    # ------------------------------------------------------------------
    # Network backend
    # ------------------------------------------------------------------
    def _run_network(self, compiled: CompiledScenario) -> ScenarioReport:
        spec = compiled.spec
        engine_backend = self._engine_backend_for(compiled)
        latency_model = self._latency_model_for(compiled)
        network_rng = ensure_rng(derive_streams(compiled.seed)["network"])
        network = BrokerNetwork(
            compiled.edges,
            policy=spec.policy,
            delta=spec.delta,
            max_iterations=spec.max_iterations,
            rng=network_rng,
            matcher_backend=engine_backend,
            latency_model=latency_model,
            merge_budget=spec.merge_budget,
            shards=self.shards,
            shard_prefilter=self.shard_prefilter,
        )
        try:
            return self._run_network_impl(
                compiled, network, engine_backend, latency_model
            )
        finally:
            network.close()

    def _run_network_impl(
        self,
        compiled: CompiledScenario,
        network: BrokerNetwork,
        engine_backend: str,
        latency_model: str,
    ) -> ScenarioReport:
        spec = compiled.spec
        for client, broker in compiled.clients.items():
            network.attach_client(client, broker)

        phases: List[PhaseReport] = []
        started = time.perf_counter()
        for phase_name, phase_events in self._grouped(compiled):
            snapshot = network.mark_phase(phase_name)
            phase_started = time.perf_counter()
            counts = {"subscribe": 0, "unsubscribe": 0, "publish": 0}
            # Under the zero latency model the kernel is the seed's FIFO
            # pump, so a run of consecutive publish events can be injected
            # as one burst through the batch-native path without changing
            # any observable outcome.  Timed models keep the
            # one-at-a-time injection (burst injection would collapse the
            # events onto a single virtual instant).
            group_publishes = latency_model == "zero"
            total = len(phase_events)
            index = 0
            while index < total:
                event = phase_events[index]
                counts[event.action.value] += 1
                if event.action is EventAction.SUBSCRIBE:
                    network.subscribe(event.client, event.subscription)
                    index += 1
                elif event.action is EventAction.UNSUBSCRIBE:
                    network.unsubscribe(event.client, event.subscription_id)
                    index += 1
                else:
                    run_end = index + 1
                    if group_publishes:
                        while (
                            run_end < total
                            and phase_events[run_end].action
                            is EventAction.PUBLISH
                        ):
                            run_end += 1
                    if run_end - index == 1:
                        network.publish(event.client, event.publication)
                    else:
                        counts["publish"] += run_end - index - 1
                        network.publish_many(
                            [
                                (e.client, e.publication)
                                for e in phase_events[index:run_end]
                            ]
                        )
                    index = run_end
            phases.append(
                PhaseReport(
                    name=phase_name,
                    kind=self._phase_kind(spec, phase_name),
                    events=len(phase_events),
                    subscribes=counts["subscribe"],
                    unsubscribes=counts["unsubscribe"],
                    publishes=counts["publish"],
                    wall_time=time.perf_counter() - phase_started,
                    metrics=network.metrics.diff(snapshot),
                )
            )
        wall_time = time.perf_counter() - started

        return ScenarioReport(
            scenario=spec.name,
            tier=spec.tier,
            seed=compiled.seed,
            backend="network",
            policy=policy_value(spec.policy),
            brokers=len(network.brokers),
            clients=len(compiled.clients),
            event_count=compiled.event_count,
            trace_hash=compiled.trace_hash(),
            wall_time=wall_time,
            engine_backend=engine_backend,
            latency_model=latency_model,
            phases=phases,
            totals=network.metrics.summary(),
        )

    # ------------------------------------------------------------------
    # Engine backend
    # ------------------------------------------------------------------
    def _run_engine(self, compiled: CompiledScenario) -> ScenarioReport:
        spec = compiled.spec
        engine_backend = self._engine_backend_for(compiled)
        if self.shards:
            from repro.shard.engine import ShardedMatchingEngine

            engine = ShardedMatchingEngine(
                shards=self.shards,
                policy=spec.policy,
                backend=engine_backend,
                delta=spec.delta,
                max_iterations=spec.max_iterations,
                merge_budget=spec.merge_budget,
                seed=compiled.seed,
                prefilter=self.shard_prefilter,
            )
            try:
                return self._run_engine_impl(compiled, engine, engine_backend)
            finally:
                engine.close()
        checker = SubsumptionChecker(
            delta=spec.delta,
            max_iterations=spec.max_iterations,
            rng=ensure_rng(derive_streams(compiled.seed)["network"]),
        )
        engine = MatchingEngine(
            policy=spec.policy,
            checker=checker,
            backend=engine_backend,
            merge_budget=spec.merge_budget,
        )
        return self._run_engine_impl(compiled, engine, engine_backend)

    def _run_engine_impl(
        self, compiled: CompiledScenario, engine, engine_backend: str
    ) -> ScenarioReport:
        spec = compiled.spec
        #: the shard pool amortises its round-trips over publish runs —
        #: results are identical to one-at-a-time matching, and the
        #: single-process path keeps the exact seed loop
        sharded = self.shards > 0

        phases: List[PhaseReport] = []
        started = time.perf_counter()
        for phase_name, phase_events in self._grouped(compiled):
            before = dict(engine.stats)
            phase_started = time.perf_counter()
            counts = {"subscribe": 0, "unsubscribe": 0, "publish": 0}
            total = len(phase_events)
            index = 0
            while index < total:
                event = phase_events[index]
                counts[event.action.value] += 1
                if event.action is EventAction.SUBSCRIBE:
                    engine.subscribe(event.subscription)
                    index += 1
                elif event.action is EventAction.UNSUBSCRIBE:
                    engine.unsubscribe(event.subscription_id)
                    index += 1
                else:
                    run_end = index + 1
                    if sharded:
                        while (
                            run_end < total
                            and phase_events[run_end].action
                            is EventAction.PUBLISH
                        ):
                            run_end += 1
                    if run_end - index == 1:
                        engine.match(event.publication)
                    else:
                        counts["publish"] += run_end - index - 1
                        engine.match_batch(
                            [e.publication for e in phase_events[index:run_end]]
                        )
                    index = run_end
            if sharded:
                # Routing is fire-and-forget; drain the shard pipes at
                # the phase boundary so buffered decision work is charged
                # to the phase that generated it (and deferred worker
                # errors surface here, not phases later).
                engine.sync()
            metrics = {
                key: engine.stats[key] - before[key] for key in engine.stats
            }
            metrics["subscriptions_total"] = len(engine)
            phases.append(
                PhaseReport(
                    name=phase_name,
                    kind=self._phase_kind(spec, phase_name),
                    events=len(phase_events),
                    subscribes=counts["subscribe"],
                    unsubscribes=counts["unsubscribe"],
                    publishes=counts["publish"],
                    wall_time=time.perf_counter() - phase_started,
                    metrics=metrics,
                )
            )
        wall_time = time.perf_counter() - started

        totals: Dict[str, float] = dict(engine.stats)
        totals["subscriptions_total"] = len(engine)
        return ScenarioReport(
            scenario=spec.name,
            tier=spec.tier,
            seed=compiled.seed,
            backend="engine",
            policy=policy_value(spec.policy),
            brokers=0,
            clients=len(compiled.clients),
            event_count=compiled.event_count,
            trace_hash=compiled.trace_hash(),
            wall_time=wall_time,
            engine_backend=engine_backend,
            phases=phases,
            totals=totals,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _grouped(compiled: CompiledScenario):
        """Events grouped by phase, preserving timeline order.

        Phases that compiled to zero events (e.g. a storm with nothing
        live) still appear, so reports always show the full timeline.
        """
        groups: Dict[str, List] = {
            phase.name: [] for phase in compiled.spec.phases
        }
        for event in compiled.events:
            groups.setdefault(event.phase, []).append(event)
        return groups.items()

    @staticmethod
    def _phase_kind(spec: ScenarioSpec, phase_name: str) -> str:
        for phase in spec.phases:
            if phase.name == phase_name:
                return phase.kind.value
        return "unknown"
