"""Multi-process sharded execution of the subscription space.

The package layers a coordinator/worker deployment *under* the existing
seams — :class:`~repro.matching.backends.MatcherBackend` for the broker
network's global delivery oracle, the
:class:`~repro.matching.engine.MatchingEngine` surface for the decision
pool — so sharding is an execution-mode choice (``shards=N``), invisible
to scenario specs, trace hashes and golden metrics (``shards=0`` runs
today's in-process path byte for byte).

* :mod:`repro.shard.partition` — who owns a subscription:
  hash-of-subscriber (default) or attribute-range partitioners, plus the
  fixed shard→seed mapping.
* :mod:`repro.shard.shm` — each worker's
  :class:`~repro.core.arena.SubscriptionArena` with its contiguous
  float64 bounds arrays placed in ``multiprocessing.shared_memory``, and
  the coordinator-side zero-copy views over them.
* :mod:`repro.shard.worker` — the worker process: a full matching
  engine (decision pool) or a bare matcher backend (delivery oracle)
  behind a pipe command loop, with busy-time accounting.
* :mod:`repro.shard.coordinator` — process lifecycle, routing, the
  candidate pre-filter (per-shard bounds hulls, optionally a vectorised
  row screen over the shared-memory arrays), dispatch/collect with
  merge-ordered results, and the obs spans/instruments.
* :mod:`repro.shard.engine` — the two façades:
  :class:`~repro.shard.engine.ShardedMatchingEngine` (drop-in for the
  scenario runner's engine backend) and
  :class:`~repro.shard.engine.ShardedOracleBackend` (a
  :class:`~repro.matching.backends.MatcherBackend` for the broker
  network's oracle).
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.engine import ShardedMatchingEngine, ShardedOracleBackend
from repro.shard.partition import (
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
    shard_seed,
)
from repro.shard.shm import SharedSubscriptionArena

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "ShardCoordinator",
    "ShardedMatchingEngine",
    "ShardedOracleBackend",
    "SharedSubscriptionArena",
    "make_partitioner",
    "shard_seed",
]
