"""Subscription-space partitioners and the fixed shard→seed mapping.

A partitioner answers one question — which shard owns a subscription —
and must answer it identically in every process and every run, because
routing *is* part of the deterministic story: the same scenario at the
same worker count must send every subscription to the same shard.

``hash`` (default)
    Stable CRC-32 of the subscriber identifier (falling back to the
    subscription id for ownerless subscriptions, e.g. synthetic merged
    boxes).  Keying on the *subscriber* keeps all of one client's
    subscriptions co-located, which keeps per-client unsubscribe storms
    on a single shard.
``range`` / ``range:ATTR``
    Equal-width buckets over one attribute's domain (the subscription's
    interval midpoint decides).  Localises spatially clustered workloads
    so the coordinator's bounds-hull pre-filter can prune whole shards.

The shard→seed mapping feeds each worker's probabilistic checker its own
:class:`numpy.random.SeedSequence`, derived from the scenario seed and
the shard index only — never from process ids or timing — so per-shard
RSPC streams replay byte-exactly at any worker count.
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

import numpy as np

from repro.model.subscriptions import Subscription

__all__ = [
    "HashPartitioner",
    "RangePartitioner",
    "PARTITIONER_NAMES",
    "make_partitioner",
    "shard_seed",
]

#: spec prefixes accepted by :func:`make_partitioner`
PARTITIONER_NAMES = ("hash", "range")

#: domain-separation constant of the shard seed stream — keeps worker
#: checker streams disjoint from every other stream derived from the
#: scenario seed (``derive_streams`` uses spawn keys, brokers use
#: ``spawn_rngs``)
_SHARD_SEED_SALT = 0x5AD


def shard_seed(seed: int, shard_index: int) -> np.random.SeedSequence:
    """The fixed, process-independent seed of one shard's random stream."""
    return np.random.SeedSequence([_SHARD_SEED_SALT, int(seed), int(shard_index)])


class HashPartitioner:
    """Stable hash of the subscriber (or subscription) identifier."""

    name = "hash"

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("a partitioner needs at least one shard")
        self.shards = shards

    def shard_of(self, subscription: Subscription) -> int:
        key = subscription.subscriber or subscription.id
        return zlib.crc32(key.encode("utf-8")) % self.shards

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"HashPartitioner(shards={self.shards})"


class RangePartitioner:
    """Equal-width buckets over one attribute's domain.

    The bucket of a subscription is decided by the midpoint of its
    interval on ``attribute``.  Domain bounds default to the first
    subscription's schema (every later subscription is clipped into
    range, so mixed or out-of-domain inputs degrade to the edge buckets
    instead of erroring).
    """

    name = "range"

    def __init__(
        self,
        shards: int,
        attribute: int = 0,
        bounds: Optional[Tuple[float, float]] = None,
    ):
        if shards < 1:
            raise ValueError("a partitioner needs at least one shard")
        if attribute < 0:
            raise ValueError("attribute index must be non-negative")
        self.shards = shards
        self.attribute = attribute
        self._bounds = bounds

    def shard_of(self, subscription: Subscription) -> int:
        if self.attribute >= subscription.m:
            return 0
        if self._bounds is None:
            lows, highs = subscription.schema.full_bounds()
            self._bounds = (
                float(lows[self.attribute]),
                float(highs[self.attribute]),
            )
        low, high = self._bounds
        span = high - low
        if span <= 0:
            return 0
        midpoint = (
            float(subscription.lows[self.attribute])
            + float(subscription.highs[self.attribute])
        ) / 2.0
        bucket = int((midpoint - low) / span * self.shards)
        return min(self.shards - 1, max(0, bucket))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RangePartitioner(shards={self.shards}, "
            f"attribute={self.attribute})"
        )


def make_partitioner(spec: str, shards: int):
    """Instantiate a partitioner from its spec string.

    ``"hash"`` or ``"range"``/``"range:ATTR"`` (``ATTR`` an attribute
    index).  An already constructed partitioner-like object (anything
    with a ``shard_of`` method) passes through unchanged, so custom
    partitioners can be injected directly.
    """
    if hasattr(spec, "shard_of"):
        return spec
    name, _, argument = str(spec).partition(":")
    if name == "hash":
        return HashPartitioner(shards)
    if name == "range":
        attribute = int(argument) if argument else 0
        return RangePartitioner(shards, attribute=attribute)
    raise ValueError(
        f"unknown partitioner {spec!r}; expected one of {PARTITIONER_NAMES}"
    )
