"""Shared-memory-backed subscription arenas and coordinator-side views.

Each shard worker owns a :class:`SharedSubscriptionArena` — a
:class:`~repro.core.arena.SubscriptionArena` whose contiguous float64
``lows``/``highs`` arrays live in a ``multiprocessing.shared_memory``
segment instead of private heap pages.  Growth allocates a new segment
(double capacity), copies, and retires the old one; compaction works
unchanged because both are expressed against the arena's storage hooks.

The coordinator attaches read-only :class:`ShardArenaView` objects over
those segments, giving it a zero-copy window onto every shard's bounds
for vectorised candidate pre-filtering — no rows are ever pickled back.

Lifecycle rules (POSIX):

* the **worker** is the sole owner: it creates segments and is the only
  process that ever ``unlink``\\ s them;
* the **coordinator** merely attaches; CPython registers on attach as
  well as on create, but coordinator and workers share one resource
  tracker (inherited through fork/spawn) with a set-based cache, so the
  extra registration is absorbed and the worker's unlink retires the
  name exactly once;
* a retired generation is unlinked lazily, once no live numpy view
  exports its buffer (``close`` raises ``BufferError`` until then).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.core.arena import SubscriptionArena

__all__ = ["ArenaSpec", "SharedSubscriptionArena", "ShardArenaView"]

#: ``(segment name, capacity, m, generation)`` — everything a peer
#: process needs to map one arena generation
ArenaSpec = Tuple[str, int, int, int]


class SharedSubscriptionArena(SubscriptionArena):
    """A subscription arena whose bounds arrays live in shared memory.

    One segment holds both arrays as a ``(2, capacity, m)`` float64
    block (``[0]`` = lows, ``[1]`` = highs).  ``spec()`` describes the
    current generation for peers; every growth bumps the generation and
    publishes a new segment name, so an attached view refreshes lazily.
    """

    def __init__(self, m: Optional[int] = None, capacity: int = 1024,
                 name_prefix: Optional[str] = None):
        self._name_prefix = name_prefix or f"rpr{os.getpid():x}"
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._pending_segment: Optional[shared_memory.SharedMemory] = None
        self._retired: List[shared_memory.SharedMemory] = []
        self._generation = 0
        super().__init__(m=m, capacity=capacity)

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------
    def _new_arrays(self, capacity: int, m: int):
        self._reap_retired()
        self._generation += 1
        name = f"{self._name_prefix}g{self._generation}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=2 * capacity * m * 8
        )
        block = np.ndarray((2, capacity, m), dtype=np.float64, buffer=segment.buf)
        if self._segment is None:
            self._segment = segment
        else:
            self._pending_segment = segment
        return block[0], block[1]

    def _retire_arrays(self, lows: np.ndarray, highs: np.ndarray) -> None:
        # The caller's frame still exports views over the old buffer, so
        # the segment cannot be closed here — park it for a later reap.
        old = self._segment
        self._segment = self._pending_segment or old
        self._pending_segment = None
        if old is not None and old is not self._segment:
            self._retired.append(old)

    def _reap_retired(self) -> None:
        still_exported: List[shared_memory.SharedMemory] = []
        for segment in self._retired:
            try:
                segment.close()
            except BufferError:
                still_exported.append(segment)
                continue
            segment.unlink()
        self._retired = still_exported

    # ------------------------------------------------------------------
    # Peer-process description / teardown
    # ------------------------------------------------------------------
    def spec(self) -> Optional[ArenaSpec]:
        """Current ``(name, capacity, m, generation)``, ``None`` pre-allocation."""
        if self._segment is None or self._m is None:
            return None
        return (self._segment.name, self._capacity, self._m, self._generation)

    def close(self) -> None:
        """Release every segment this arena ever created (worker-side)."""
        self._lows = None
        self._highs = None
        self._retired.append(self._segment)
        if self._pending_segment is not None:
            self._retired.append(self._pending_segment)
        self._segment = None
        self._pending_segment = None
        self._retired = [segment for segment in self._retired if segment is not None]
        self._reap_retired()
        # Anything still exported leaks its mapping until process exit;
        # unlink regardless so the name disappears from /dev/shm.
        for segment in self._retired:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass
        self._retired = []


class ShardArenaView:
    """Coordinator-side zero-copy window onto one shard's arena.

    ``refresh(spec)`` (re-)attaches when the generation changed; ``lows``
    and ``highs`` are views over the live shared block, sliced to the
    meaningful prefix by the caller (the worker reports ``next_row`` with
    every reply).
    """

    def __init__(self) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._generation = -1
        self.lows: Optional[np.ndarray] = None
        self.highs: Optional[np.ndarray] = None

    @property
    def generation(self) -> int:
        return self._generation

    def refresh(self, spec: Optional[ArenaSpec]) -> None:
        if spec is None:
            return
        name, capacity, m, generation = spec
        if generation == self._generation:
            return
        # CPython registers shared memory with the resource tracker on
        # attach as well as on create.  Coordinator and workers share one
        # tracker process (it is inherited through fork/spawn) whose cache
        # is a *set*, so the attach-side registration collapses into the
        # worker's own and the worker's eventual unlink unregisters the
        # name exactly once — no cleanup race, no double-unregister.
        segment = shared_memory.SharedMemory(name=name)
        block = np.ndarray((2, capacity, m), dtype=np.float64, buffer=segment.buf)
        self._drop_mapping()
        self._segment = segment
        self._generation = generation
        self.lows = block[0]
        self.highs = block[1]

    def _drop_mapping(self) -> None:
        self.lows = None
        self.highs = None
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass
            self._segment = None

    def close(self) -> None:
        self._drop_mapping()
        self._generation = -1
