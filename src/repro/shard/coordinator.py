"""Shard coordinator: worker lifecycle, routing, pre-filter, dispatch.

The coordinator owns ``N`` worker processes (one pipe + one daemon
process each), routes subscription mutations to their owning shard in
buffered fire-and-forget batches, and fans publication bursts out to the
shards that can possibly match them.

Candidate pre-filtering (``prefilter=``) decides which shards see which
publications:

``none``
    Every shard with at least one subscription sees every publication.
``hull`` (default)
    Per-shard running bounds hull, maintained at route time: a shard is
    consulted only when the publication's point lies inside the
    axis-aligned hull of everything ever routed to it.  The hull never
    shrinks, so it is always a sound superset — including for merging
    policies, whose merged boxes are bounding boxes of routed members.
``rows``
    The zero-copy screen: the publication's point is tested against the
    shard's actual subscription rows, read directly out of the worker's
    shared-memory arena — no rows cross the pipe.  Reads are concurrent
    with worker mutation, which is safe because stale rows only ever
    produce false positives; the two genuinely racy windows are covered
    explicitly (adds routed since the last ``sync`` are screened against
    a pending-adds hull; a shard with unsubscriptions in flight falls
    back to its hull for the batch, because compaction may move rows
    mid-read).

Dispatch is two-phase: all selected shards receive their slice first,
then replies are collected in shard order — workers overlap while the
coordinator waits.  Observability lands in the ``shard.dispatch`` /
``shard.collect`` stage timers and per-shard registry instruments.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from multiprocessing import resource_tracker
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.publications import Publication
from repro.model.subscriptions import Subscription
from repro.obs import probes as obs_probes
from repro.shard.partition import make_partitioner
from repro.shard.shm import ShardArenaView
from repro.shard.worker import worker_main

__all__ = ["PREFILTER_NAMES", "ShardCoordinator"]

#: accepted ``prefilter=`` values
PREFILTER_NAMES = ("none", "hull", "rows")

#: ops buffered per shard before an eager flush (synchronous commands
#: always flush first, so this only bounds memory, not staleness)
_OPS_FLUSH_THRESHOLD = 2048

#: publications screened per vectorised ``rows`` pre-filter slab (bounds
#: the ``(chunk, rows, m)`` broadcast temporary)
_ROWS_SCREEN_CHUNK = 256

#: distinguishes the shared-memory namespaces of coordinators living in
#: one process (tests routinely run several)
_coordinator_ids = itertools.count(1)


class _ShardHull:
    """Running axis-aligned hull of everything routed to one shard."""

    __slots__ = ("low", "high")

    def __init__(self) -> None:
        self.low: Optional[np.ndarray] = None
        self.high: Optional[np.ndarray] = None

    def cover(self, subscription: Subscription) -> None:
        if self.low is None:
            self.low = np.array(subscription.lows, dtype=float)
            self.high = np.array(subscription.highs, dtype=float)
        elif self.low.shape == subscription.lows.shape:
            np.minimum(self.low, subscription.lows, out=self.low)
            np.maximum(self.high, subscription.highs, out=self.high)
        else:  # mixed arity: widen to "everything" (disables pruning)
            self.low = None
            self.high = None
            self.cover(subscription)
            self.low.fill(-np.inf)
            self.high.fill(np.inf)

    def admits(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask over a ``(B, m)`` point stack: inside the hull?"""
        if self.low is None:
            return np.zeros(len(values), dtype=bool)
        if values.shape[1:] != self.low.shape:
            return np.ones(len(values), dtype=bool)
        return ((self.low <= values) & (values <= self.high)).all(axis=1)


class ShardCoordinator:
    """Routes one subscription space across ``shards`` worker processes.

    Parameters
    ----------
    shards:
        Worker count (≥ 1).
    mode:
        ``"index"`` (bare matcher backend — the delivery-oracle shape) or
        ``"engine"`` (full matching engine — the decision pool).
    backend, policy, delta, max_iterations, merge_budget, seed:
        Forwarded into each worker's engine/backend; ``seed`` feeds the
        fixed shard→seed mapping of the workers' checker streams.
    partitioner:
        ``"hash"`` (default), ``"range"``/``"range:ATTR"``, or any object
        with a ``shard_of`` method.
    prefilter:
        One of :data:`PREFILTER_NAMES`; see the module docstring.
    """

    def __init__(
        self,
        shards: int,
        mode: str = "index",
        backend: str = "linear",
        policy: str = "group",
        delta: float = 0.001,
        max_iterations: int = 1000,
        merge_budget: float = 0.1,
        seed: int = 0,
        partitioner: Any = "hash",
        prefilter: str = "hull",
    ):
        if shards < 1:
            raise ValueError("a shard coordinator needs at least one worker")
        if prefilter not in PREFILTER_NAMES:
            raise ValueError(
                f"unknown prefilter {prefilter!r}; expected one of {PREFILTER_NAMES}"
            )
        self.shards = shards
        self.mode = mode
        self.prefilter = prefilter
        self.partitioner = make_partitioner(partitioner, shards)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        # Start the resource tracker *before* forking, so every worker
        # inherits this process's tracker instead of lazily spawning its
        # own on first shared-memory registration.  With one shared
        # tracker, the worker's create-registration and the
        # coordinator's attach-registration collapse into a single cache
        # entry that the worker's unlink retires cleanly.
        resource_tracker.ensure_running()
        namespace = f"rs{os.getpid():x}c{next(_coordinator_ids)}"
        self._conns = []
        self._processes = []
        for index in range(shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=worker_main,
                args=(
                    child_conn,
                    {
                        "shard_index": index,
                        "mode": mode,
                        "backend": backend,
                        "policy": policy,
                        "delta": delta,
                        "max_iterations": max_iterations,
                        "merge_budget": merge_budget,
                        "seed": seed,
                        "shm_prefix": f"{namespace}s{index}",
                    },
                ),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._views = [ShardArenaView() for _ in range(shards)]
        self._pending_ops: List[List[Tuple[str, Any]]] = [[] for _ in range(shards)]
        self._hulls = [_ShardHull() for _ in range(shards)]
        self._pending_hulls = [_ShardHull() for _ in range(shards)]
        self._unsubs_in_flight = [0] * shards
        self._synced_rows = [0] * shards
        self._live = [0] * shards
        self._busy = [0.0] * shards
        self._shard_of: Dict[str, int] = {}
        self._seq_of: Dict[str, int] = {}
        self._sequence = itertools.count()
        self._closed = False

    # ------------------------------------------------------------------
    # Routing (fire-and-forget, buffered)
    # ------------------------------------------------------------------
    def route_subscribe(self, subscription: Subscription) -> int:
        """Assign a subscription to its shard; returns the shard index."""
        if subscription.id in self._shard_of:
            raise ValueError(
                f"subscription {subscription.id!r} is already routed"
            )
        shard = self.partitioner.shard_of(subscription)
        self._shard_of[subscription.id] = shard
        self._seq_of[subscription.id] = next(self._sequence)
        self._hulls[shard].cover(subscription)
        self._pending_hulls[shard].cover(subscription)
        self._live[shard] += 1
        self._buffer(shard, ("sub", subscription))
        return shard

    def route_unsubscribe(self, subscription_id: str) -> Optional[int]:
        """Route a removal to the owning shard; ``None`` when unknown."""
        shard = self._shard_of.pop(subscription_id, None)
        if shard is None:
            return None
        self._seq_of.pop(subscription_id, None)
        self._live[shard] -= 1
        self._unsubs_in_flight[shard] += 1
        self._buffer(shard, ("unsub", subscription_id))
        return shard

    def sequence_of(self, subscription_id: str) -> int:
        """Global arrival rank of a routed subscription (merge order)."""
        return self._seq_of[subscription_id]

    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._shard_of

    @property
    def live_counts(self) -> Tuple[int, ...]:
        """Routed-subscription count per shard."""
        return tuple(self._live)

    @property
    def busy_seconds(self) -> Tuple[float, ...]:
        """Cumulative worker busy time per shard (as of the last reply)."""
        return tuple(self._busy)

    def _buffer(self, shard: int, operation: Tuple[str, Any]) -> None:
        pending = self._pending_ops[shard]
        pending.append(operation)
        if len(pending) >= _OPS_FLUSH_THRESHOLD:
            self._flush(shard)

    def _flush(self, shard: int) -> None:
        pending = self._pending_ops[shard]
        if not pending:
            return
        self._conns[shard].send(("ops", pending))
        self._instrument("shard.ops", shard, len(pending))
        self._pending_ops[shard] = []

    def flush_all(self) -> None:
        """Push every buffered op down its pipe (does not wait)."""
        for shard in range(self.shards):
            self._flush(shard)

    # ------------------------------------------------------------------
    # Candidate pre-filter
    # ------------------------------------------------------------------
    def _stack_values(
        self, publications: Sequence[Publication]
    ) -> Optional[np.ndarray]:
        arity = {publication.values.shape for publication in publications}
        if len(arity) != 1:
            return None
        return np.array([publication.values for publication in publications])

    def _select(
        self, publications: Sequence[Publication]
    ) -> List[List[int]]:
        """Per shard, the positions of the publications it must see."""
        everything = [
            list(range(len(publications))) if self._live[shard] else []
            for shard in range(self.shards)
        ]
        if self.prefilter == "none":
            return everything
        values = self._stack_values(publications)
        if values is None:
            return everything
        selected: List[List[int]] = []
        for shard in range(self.shards):
            if not self._live[shard]:
                selected.append([])
                continue
            if self.prefilter == "rows":
                mask = self._rows_mask(shard, values)
            else:
                mask = self._hulls[shard].admits(values)
            selected.append(list(np.nonzero(mask)[0]))
        return selected

    def _rows_mask(self, shard: int, values: np.ndarray) -> np.ndarray:
        """Row-level screen of one shard (falls back to the hull).

        Sound under concurrent worker mutation: rows confirmed synced are
        immutable except via compaction, which only runs on removal — a
        shard with removals in flight since its last sync uses its hull
        instead.  Adds since the last sync are admitted through the
        pending-adds hull.
        """
        if self._unsubs_in_flight[shard]:
            return self._hulls[shard].admits(values)
        view = self._views[shard]
        rows = self._synced_rows[shard]
        if view.lows is None or rows == 0:
            return self._pending_hulls[shard].admits(values)
        lows = view.lows[:rows]
        highs = view.highs[:rows]
        if values.shape[1] != lows.shape[1]:
            return np.ones(len(values), dtype=bool)
        mask = np.zeros(len(values), dtype=bool)
        for start in range(0, len(values), _ROWS_SCREEN_CHUNK):
            chunk = values[start : start + _ROWS_SCREEN_CHUNK]
            points = chunk[:, np.newaxis, :]
            mask[start : start + len(chunk)] = (
                ((lows <= points) & (points <= highs)).all(axis=2).any(axis=1)
            )
        return mask | self._pending_hulls[shard].admits(values)

    # ------------------------------------------------------------------
    # Synchronous commands
    # ------------------------------------------------------------------
    def _receive(self, shard: int):
        try:
            status, payload, meta = self._conns[shard].recv()
        except (EOFError, OSError) as error:
            raise RuntimeError(
                f"shard worker {shard} died (pipe closed)"
            ) from error
        self._busy[shard] = meta["busy"]
        self._views[shard].refresh(meta["arena"])
        if status == "err":
            raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
        return payload, meta

    def _instrument(self, name: str, shard: int, amount: float) -> None:
        obs = obs_probes.ACTIVE
        if obs is not None and amount:
            obs.registry.counter(name, shard=shard).inc(amount)

    def match(
        self, publications: Sequence[Publication]
    ) -> List[Dict[int, Any]]:
        """Fan a burst out to the owning shards; collect shard-ordered.

        Returns, per shard, a mapping from publication position (in
        ``publications``) to that worker's reply entry for it — the
        façades merge these into per-publication results.  Positions
        pruned by the pre-filter are simply absent (provably no match).
        """
        publications = list(publications)
        if not publications:
            return [{} for _ in range(self.shards)]
        obs = obs_probes.ACTIVE
        if obs is not None:
            obs.stage_push("shard.dispatch")
        try:
            selected = self._select(publications)
            for shard, positions in enumerate(selected):
                self._flush(shard)
                if positions:
                    self._conns[shard].send(
                        ("match", [publications[i] for i in positions])
                    )
                    self._instrument("shard.match_pubs", shard, len(positions))
                self._instrument(
                    "shard.pruned_pubs",
                    shard,
                    len(publications) - len(positions),
                )
        finally:
            if obs is not None:
                obs.stage_pop()
        if obs is not None:
            obs.stage_push("shard.collect")
        try:
            collected: List[Dict[int, Any]] = []
            for shard, positions in enumerate(selected):
                if not positions:
                    collected.append({})
                    continue
                payload, _meta = self._receive(shard)
                collected.append(dict(zip(positions, payload)))
        finally:
            if obs is not None:
                obs.stage_pop()
        return collected

    def sync(self) -> None:
        """Drain every pipe; surfaces any parked worker error.

        Also the point where the ``rows`` pre-filter's view of the world
        is re-anchored: arena views refresh, synced row counts advance,
        and the pending-adds hulls / in-flight removal counters reset.
        """
        self.flush_all()
        for shard in range(self.shards):
            self._conns[shard].send(("sync",))
        for shard in range(self.shards):
            _payload, meta = self._receive(shard)
            self._synced_rows[shard] = meta["rows"]
            self._pending_hulls[shard] = _ShardHull()
            self._unsubs_in_flight[shard] = 0
        obs = obs_probes.ACTIVE
        if obs is not None:
            for shard in range(self.shards):
                obs.registry.gauge("shard.busy_seconds", shard=shard).set(
                    self._busy[shard]
                )
                obs.registry.gauge("shard.subscriptions", shard=shard).set(
                    self._live[shard]
                )

    def stats(self) -> List[Dict[str, Any]]:
        """Per-worker statistics dictionaries, in shard order."""
        self.flush_all()
        for shard in range(self.shards):
            self._conns[shard].send(("stats",))
        return [self._receive(shard)[0] for shard in range(self.shards)]

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent; never raises)."""
        if self._closed:
            return
        self._closed = True
        for shard in range(self.shards):
            try:
                self._conns[shard].send(("shutdown",))
            except (OSError, ValueError):
                pass
        for shard in range(self.shards):
            try:
                if self._conns[shard].poll(5.0):
                    self._conns[shard].recv()
            except (EOFError, OSError):
                pass
        for view in self._views:
            view.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass
