"""Façades presenting the shard pool behind the existing seams.

Two consumers want sharded execution, through two different surfaces:

* the scenario runner's ``engine`` backend drives a
  :class:`~repro.matching.engine.MatchingEngine`-shaped object —
  :class:`ShardedMatchingEngine` mirrors the surface it uses
  (``subscribe``/``unsubscribe``/``match``/``match_batch``/``stats``/
  ``len``) over a pool of per-shard engines, each running the covering
  policy on its slice of the subscription space with its own seeded
  checker stream;
* the broker network's global delivery oracle is a
  :class:`~repro.matching.backends.MatcherBackend` —
  :class:`ShardedOracleBackend` implements that contract over an
  ``index``-mode pool, merging per-shard matches back into global
  insertion order (the coordinator's arrival sequence), so the oracle's
  answers are *identical* to the unsharded backend's and the network's
  metrics/trace hashes do not move at any worker count.

Both own their :class:`~repro.shard.coordinator.ShardCoordinator` and
must be ``close()``-d (or used as context managers) to reap the worker
processes and their shared-memory segments.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.matching.backends import MatchCandidates, MatcherBackend
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription
from repro.shard.coordinator import ShardCoordinator

__all__ = ["ShardedMatchResult", "ShardedMatchingEngine", "ShardedOracleBackend"]

#: publications dispatched per coordinator round-trip (bounds the pickled
#: burst size; results are independent of the chunking)
_MATCH_CHUNK = 4096


class _SubscriptionRef:
    """What the oracle's consumers actually read off a matched subscription.

    The broker network keys its expected-notification records on
    ``subscription.id`` alone (plus ``subscriber`` for engine-style
    consumers), so shard workers ship these two strings per match instead
    of pickling whole subscription objects back.
    """

    __slots__ = ("id", "subscriber")

    def __init__(self, subscription_id: str, subscriber: Optional[str]):
        self.id = subscription_id
        self.subscriber = subscriber

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"_SubscriptionRef(id={self.id!r})"


class ShardedOracleBackend(MatcherBackend):
    """A :class:`MatcherBackend` whose subscription set lives in shards.

    Matching semantics are exactly the wrapped per-shard backends' —
    pure membership, no covering, no randomness — so the answers equal
    the unsharded backend's for any shard count; per-shard results are
    merged back into global insertion order via the coordinator's
    arrival sequence.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        backend: str = "linear",
        partitioner: Any = "hash",
        prefilter: str = "hull",
    ):
        self._coordinator = ShardCoordinator(
            shards,
            mode="index",
            backend=backend,
            partitioner=partitioner,
            prefilter=prefilter,
        )

    @property
    def coordinator(self) -> ShardCoordinator:
        return self._coordinator

    def add(self, subscription: Subscription) -> None:
        self._coordinator.route_subscribe(subscription)

    def remove(self, subscription_id: str) -> bool:
        return self._coordinator.route_unsubscribe(subscription_id) is not None

    def match_candidates(self, publication: Publication) -> MatchCandidates:
        return self.match_batch([publication])[0]

    def match_batch(
        self,
        publications: Sequence[Publication],
        values: Optional[np.ndarray] = None,
    ) -> List[MatchCandidates]:
        publications = list(publications)
        results: List[MatchCandidates] = []
        coordinator = self._coordinator
        for start in range(0, len(publications), _MATCH_CHUNK):
            chunk = publications[start : start + _MATCH_CHUNK]
            collected = coordinator.match(chunk)
            for position in range(len(chunk)):
                refs: List[Tuple[int, _SubscriptionRef]] = []
                tests = 0
                for shard_entries in collected:
                    entry = shard_entries.get(position)
                    if entry is None:
                        continue
                    shard_refs, shard_tests = entry
                    tests += shard_tests
                    for subscription_id, subscriber in shard_refs:
                        refs.append(
                            (
                                coordinator.sequence_of(subscription_id),
                                _SubscriptionRef(subscription_id, subscriber),
                            )
                        )
                refs.sort(key=lambda pair: pair[0])
                results.append(([ref for _, ref in refs], tests))
        return results

    def __len__(self) -> int:
        return len(self._coordinator)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._coordinator

    def sync(self) -> None:
        """Drain the op pipes (surfaces any deferred worker error)."""
        self._coordinator.sync()

    def close(self) -> None:
        self._coordinator.close()

    def __enter__(self) -> "ShardedOracleBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedMatchResult:
    """Per-publication outcome of the sharded decision pool.

    Mirrors the fields of :class:`~repro.matching.engine.MatchResult`
    that the runner/benchmarks consume; matched subscriptions stay in
    their shards, so only their count travels back.
    """

    __slots__ = (
        "publication",
        "subscribers",
        "matched_count",
        "active_tests",
        "covered_tests",
    )

    def __init__(
        self,
        publication: Publication,
        subscribers: Tuple[str, ...],
        matched_count: int,
        active_tests: int,
        covered_tests: int,
    ):
        self.publication = publication
        self.subscribers = subscribers
        self.matched_count = matched_count
        self.active_tests = active_tests
        self.covered_tests = covered_tests

    @property
    def total_tests(self) -> int:
        return self.active_tests + self.covered_tests

    def __bool__(self) -> bool:
        return bool(self.matched_count)


class ShardedMatchingEngine:
    """The parallel decision pool behind the matching-engine surface.

    Each worker runs a complete engine — store, covering policy,
    probabilistic checker — on the subscriptions its partitioner assigns
    to it; checker streams come from the fixed shard→seed mapping, so a
    given (seed, shard count) is fully reproducible.  Covering decisions
    are taken against per-shard candidate sets, which is what makes the
    decision phase parallel *and* cheaper (candidate sets shrink by the
    shard factor); notifications remain exactly the unsharded engine's
    for deterministic policies, because a subscription and anything that
    pair-wise covers it land on the same shard only when the partitioner
    co-locates them — and a shard that suppresses locally still holds
    the covered subscription, so Algorithm 5's gate re-finds it.
    Test/decision counters are partition-dependent by nature and are
    reported per shard.
    """

    def __init__(
        self,
        shards: int,
        policy: Any = "group",
        backend: str = "linear",
        delta: float = 0.001,
        max_iterations: int = 1000,
        merge_budget: float = 0.1,
        seed: int = 0,
        partitioner: Any = "hash",
        prefilter: str = "hull",
    ):
        from repro.core.policies import policy_value

        self._coordinator = ShardCoordinator(
            shards,
            mode="engine",
            backend=backend,
            policy=policy_value(policy),
            delta=delta,
            max_iterations=max_iterations,
            merge_budget=merge_budget,
            seed=seed,
            partitioner=partitioner,
            prefilter=prefilter,
        )
        self.stats: Dict[str, int] = {
            "publications": 0,
            "notifications": 0,
            "active_tests": 0,
            "covered_tests": 0,
        }

    @property
    def coordinator(self) -> ShardCoordinator:
        return self._coordinator

    @property
    def shards(self) -> int:
        return self._coordinator.shards

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscription: Subscription) -> None:
        """Route a subscription to its owning shard (fire-and-forget)."""
        self._coordinator.route_subscribe(subscription)

    def subscribe_all(self, subscriptions: Iterable[Subscription]) -> None:
        for subscription in subscriptions:
            self.subscribe(subscription)

    def unsubscribe(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Route a removal; promotions stay shard-local, so this is ``()``."""
        self._coordinator.route_unsubscribe(subscription_id)
        return ()

    def __len__(self) -> int:
        return len(self._coordinator)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> ShardedMatchResult:
        return self.match_batch([publication])[0]

    def match_all(
        self, publications: Iterable[Publication]
    ) -> List[ShardedMatchResult]:
        return self.match_batch(list(publications))

    def match_batch(
        self, publications: Sequence[Publication]
    ) -> List[ShardedMatchResult]:
        publications = list(publications)
        results: List[ShardedMatchResult] = []
        for start in range(0, len(publications), _MATCH_CHUNK):
            chunk = publications[start : start + _MATCH_CHUNK]
            collected = self._coordinator.match(chunk)
            for position, publication in enumerate(chunk):
                subscribers: Dict[str, None] = {}
                matched_count = 0
                active_tests = 0
                covered_tests = 0
                for shard_entries in collected:
                    entry = shard_entries.get(position)
                    if entry is None:
                        continue
                    shard_subscribers, shard_matched, shard_active, shard_covered = entry
                    for subscriber in shard_subscribers:
                        subscribers[subscriber] = None
                    matched_count += shard_matched
                    active_tests += shard_active
                    covered_tests += shard_covered
                result = ShardedMatchResult(
                    publication,
                    tuple(subscribers),
                    matched_count,
                    active_tests,
                    covered_tests,
                )
                self.stats["publications"] += 1
                self.stats["notifications"] += len(result.subscribers)
                self.stats["active_tests"] += active_tests
                self.stats["covered_tests"] += covered_tests
                results.append(result)
        return results

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Wait for every shard to drain its op stream.

        Surfaces deferred worker errors and — because routing is
        fire-and-forget — is what gives per-phase wall times an honest
        meaning: call it at a phase boundary so buffered decision work is
        attributed to the phase that generated it.
        """
        self._coordinator.sync()

    @property
    def shard_busy_seconds(self) -> Tuple[float, ...]:
        """Cumulative per-worker busy time (the load-balance measure)."""
        return self._coordinator.busy_seconds

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-shard statistics (engine counters, store stats, arena)."""
        return self._coordinator.stats()

    def close(self) -> None:
        self._coordinator.close()

    def __enter__(self) -> "ShardedMatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
