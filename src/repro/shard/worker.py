"""Shard worker process: one slice of the subscription space.

A worker owns every subscription its partitioner assigns to it, in one of
two modes:

``engine``
    A full :class:`~repro.matching.engine.MatchingEngine` — store,
    covering policy, probabilistic checker (seeded from the fixed
    shard→seed mapping) and matcher backend.  This is the parallel
    decision pool: ``decide``/``check`` work happens here.
``index``
    A bare :class:`~repro.matching.backends.MatcherBackend` — pure
    membership matching, no covering.  This shards the broker network's
    global delivery oracle, whose semantics must stay byte-identical to
    the unsharded run (no policy, no randomness).

Either way the worker mirrors its subscriptions' bounds into a
:class:`~repro.shard.shm.SharedSubscriptionArena`, so the coordinator can
pre-filter publications against this shard's rows without any data moving
over the pipe.

The command loop is deliberately tiny — five message kinds over one
duplex pipe:

``("ops", [...])``
    Fire-and-forget subscription mutations, each ``("sub", subscription)``
    or ``("unsub", id)``.  Errors are parked and surfaced by the next
    synchronous command, so a routing burst costs no round-trips.
``("match", publications)`` → ``("ok", payload, meta)``
    Match a burst.  ``payload`` is one entry per publication:
    ``(refs, tests)`` in index mode (``refs`` = ``(id, subscriber)``
    pairs, insertion order) or ``(subscribers, n_matched, active_tests,
    covered_tests)`` in engine mode.
``("sync",)`` / ``("stats",)`` → ``("ok", ..., meta)``
    Drain the op stream (surfacing any parked error) / report counters.
``("shutdown",)`` → ``("bye", None, meta)``
    Release the shared segments and exit.

Every reply's ``meta`` carries the worker's cumulative busy seconds (the
per-shard load measure the benchmarks attribute critical paths with), the
current arena spec/row count, and the subscription count.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.subsumption import SubsumptionChecker
from repro.matching.backends import make_backend
from repro.matching.engine import MatchingEngine
from repro.shard.partition import shard_seed
from repro.shard.shm import SharedSubscriptionArena

__all__ = ["worker_main"]


class _SchemaInterner:
    """Map unpickled :class:`Schema` copies to one canonical instance.

    Every pipe message unpickles a fresh ``Schema`` object graph (pickle
    memoises within a message, not across them), so the engine's
    identity-first schema checks — one ``is`` per candidate in a
    single-process run — degrade into deep per-attribute dataclass
    comparisons against every stored subscription.  At scale that
    comparison dominated worker CPU.  Interning restores the
    one-object-per-schema invariant for one hash lookup per message
    object; the last raw/canonical pair is kept as an identity fast
    path because all objects of one unpickled batch share a single raw
    ``Schema`` (strong refs, so ``is`` cannot alias a recycled id).
    """

    __slots__ = ("_canonical", "_last_raw", "_last_canonical")

    def __init__(self):
        self._canonical: Dict[Any, Any] = {}
        self._last_raw = None
        self._last_canonical = None

    def __call__(self, schema):
        if schema is self._last_raw or schema is self._last_canonical:
            return self._last_canonical
        canonical = self._canonical.setdefault(schema, schema)
        self._last_raw = schema
        self._last_canonical = canonical
        return canonical


class _ShardWorker:
    """State behind the command loop (kept separate for direct testing)."""

    def __init__(self, config: Dict[str, Any]):
        self.shard_index = int(config["shard_index"])
        self.mode = config.get("mode", "index")
        if self.mode not in ("engine", "index"):
            raise ValueError(f"unknown shard worker mode {self.mode!r}")
        self.mirror = SharedSubscriptionArena(
            capacity=int(config.get("arena_capacity", 1024)),
            name_prefix=config.get("shm_prefix"),
        )
        self.engine: Optional[MatchingEngine] = None
        self.index = None
        if self.mode == "engine":
            checker = SubsumptionChecker(
                delta=config.get("delta", 0.001),
                max_iterations=config.get("max_iterations", 1000),
                rng=np.random.default_rng(
                    shard_seed(config.get("seed", 0), self.shard_index)
                ),
            )
            self.engine = MatchingEngine(
                policy=config.get("policy", "group"),
                checker=checker,
                backend=config.get("backend", "linear"),
                merge_budget=config.get("merge_budget", 0.1),
            )
        else:
            self.index = make_backend(config.get("backend", "linear"))
        self.busy = 0.0
        self.pending_error: Optional[str] = None
        self._intern_schema = _SchemaInterner()

    # ------------------------------------------------------------------
    # Mutations (fire-and-forget)
    # ------------------------------------------------------------------
    def apply_ops(self, operations: List[Tuple[str, Any]]) -> None:
        for kind, payload in operations:
            if kind == "sub":
                payload.schema = self._intern_schema(payload.schema)
                if self.engine is not None:
                    self.engine.subscribe(payload)
                else:
                    self.index.add(payload)
                self.mirror.add(payload)
            elif kind == "unsub":
                if self.engine is not None:
                    self.engine.unsubscribe(payload)
                else:
                    self.index.remove(payload)
                self.mirror.discard(payload)
            else:
                raise ValueError(f"unknown shard op {kind!r}")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publications) -> List[Tuple]:
        for publication in publications:
            publication.schema = self._intern_schema(publication.schema)
        if self.engine is not None:
            return [
                (
                    result.subscribers,
                    len(result.matched),
                    result.active_tests,
                    result.covered_tests,
                )
                for result in self.engine.match_batch(publications)
            ]
        return [
            (
                [(s.id, s.subscriber) for s in matched],
                tests,
            )
            for matched, tests in self.index.match_batch(publications)
        ]

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "shard": self.shard_index,
            "mode": self.mode,
            "busy_seconds": self.busy,
            "subscriptions": len(self),
            "arena_compactions": self.mirror.compactions,
            "arena_moved_rows": self.mirror.moved_rows,
        }
        if self.engine is not None:
            payload["engine"] = dict(self.engine.stats)
            payload["store"] = dict(self.engine.store.stats)
        return payload

    def meta(self) -> Dict[str, Any]:
        return {
            "busy": self.busy,
            "arena": self.mirror.spec(),
            "rows": self.mirror.next_row,
            "count": len(self),
        }

    def __len__(self) -> int:
        if self.engine is not None:
            return len(self.engine)
        return len(self.index)

    def close(self) -> None:
        self.mirror.close()


def worker_main(conn, config: Dict[str, Any]) -> None:
    """Entry point of one shard worker process.

    Runs the command loop until ``shutdown`` or the pipe closes; every
    exception is reported to the coordinator rather than killing the
    process silently (op-stream errors are parked until the next
    synchronous command, per the fire-and-forget contract).
    """
    worker = _ShardWorker(config)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command = message[0]
            started = time.perf_counter()
            if command == "ops":
                try:
                    worker.apply_ops(message[1])
                except Exception:
                    if worker.pending_error is None:
                        worker.pending_error = traceback.format_exc()
                worker.busy += time.perf_counter() - started
                continue
            if command == "shutdown":
                worker.busy += time.perf_counter() - started
                conn.send(("bye", None, worker.meta()))
                break
            try:
                if worker.pending_error is not None:
                    error, worker.pending_error = worker.pending_error, None
                    raise RuntimeError(
                        f"deferred shard op failure:\n{error}"
                    )
                if command == "match":
                    payload = worker.match(message[1])
                elif command == "sync":
                    payload = None
                elif command == "stats":
                    payload = worker.stats()
                else:
                    raise ValueError(f"unknown shard command {command!r}")
            except Exception:
                worker.busy += time.perf_counter() - started
                conn.send(("err", traceback.format_exc(), worker.meta()))
                continue
            worker.busy += time.perf_counter() - started
            conn.send(("ok", payload, worker.meta()))
    finally:
        worker.close()
        conn.close()
