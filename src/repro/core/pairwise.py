"""Pair-wise coverage — the classical baseline.

Deterministic publish/subscribe systems (Siena, Rebeca, padres-style
brokers) reduce subscription traffic by checking a new subscription against
every existing subscription *individually*: ``s`` is dropped only when some
single ``s_i`` covers it.  This module implements that baseline both as a
stateless checker and as an incremental set maintainer used by the
comparison experiment (Figures 13 and 14) and by the broker simulator's
``pairwise`` covering policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import CandidateSet
from repro.model.subscriptions import Subscription

__all__ = ["PairwiseResult", "PairwiseCoverageChecker"]


@dataclass
class PairwiseResult:
    """Outcome of a pair-wise coverage check.

    Attributes
    ----------
    covered:
        Whether some single existing subscription covers the new one.
    covering:
        The first covering subscription found, if any.
    comparisons:
        Number of pair-wise comparisons performed (cost accounting).
    """

    covered: bool
    covering: Optional[Subscription]
    comparisons: int


class PairwiseCoverageChecker:
    """Stateless + incremental pair-wise covering.

    The stateless entry point is :meth:`check`; the incremental interface
    (:meth:`add`, :attr:`active`) maintains the classical *covering-reduced*
    subscription set: a new subscription is added only when it is not
    covered by an existing one, and existing subscriptions covered by the
    newcomer are demoted (they would not be forwarded further by a broker).
    """

    def __init__(self, initial: Iterable[Subscription] = ()):
        self._active: List[Subscription] = []
        self._covered: List[Subscription] = []
        self.comparisons = 0
        for subscription in initial:
            self.add(subscription)

    # ------------------------------------------------------------------
    # Stateless check
    # ------------------------------------------------------------------
    @staticmethod
    def check(
        subscription: Subscription, candidates: Sequence[Subscription]
    ) -> PairwiseResult:
        """Check whether any single candidate covers ``subscription``.

        Candidate-set snapshots are tested in one vectorised pass over
        their stacked bounds; the comparison accounting mirrors the
        scan's early exit (first coverer found stops the scan).
        """
        if isinstance(candidates, CandidateSet) and len(candidates):
            hits = np.nonzero(candidates.covering_rows_mask(subscription))[0]
            if hits.size:
                first = int(hits[0])
                return PairwiseResult(True, candidates[first], first + 1)
            return PairwiseResult(False, None, len(candidates))
        comparisons = 0
        for candidate in candidates:
            comparisons += 1
            if candidate.covers(subscription):
                return PairwiseResult(True, candidate, comparisons)
        return PairwiseResult(False, None, comparisons)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @property
    def active(self) -> Tuple[Subscription, ...]:
        """Subscriptions currently forwarded (not pair-wise covered)."""
        return tuple(self._active)

    @property
    def covered(self) -> Tuple[Subscription, ...]:
        """Subscriptions retained locally but not forwarded."""
        return tuple(self._covered)

    @property
    def active_count(self) -> int:
        """Size of the forwarded (active) set."""
        return len(self._active)

    def add(self, subscription: Subscription) -> PairwiseResult:
        """Insert a subscription, maintaining the covering-reduced set.

        Returns the coverage verdict for the newcomer.  When the newcomer is
        itself uncovered, any active subscriptions it covers are demoted to
        the covered list (they became redundant for forwarding purposes).
        """
        result = self.check(subscription, self._active)
        self.comparisons += result.comparisons
        if result.covered:
            self._covered.append(subscription)
            return result

        still_active: List[Subscription] = []
        for existing in self._active:
            self.comparisons += 1
            if subscription.covers(existing):
                self._covered.append(existing)
            else:
                still_active.append(existing)
        still_active.append(subscription)
        self._active = still_active
        return result

    def remove(self, subscription_id: str) -> bool:
        """Remove a subscription (by id) from either set.

        Note: promoting covered subscriptions back to active on removal of
        their coverer is the responsibility of higher-level stores (see
        :class:`repro.core.store.SubscriptionStore`), because it requires
        re-checking coverage; the plain baseline simply forgets the entry.
        """
        for bucket in (self._active, self._covered):
            for index, existing in enumerate(bucket):
                if existing.id == subscription_id:
                    del bucket[index]
                    return True
        return False

    def __len__(self) -> int:
        return len(self._active) + len(self._covered)
