"""Result types returned by the subsumption pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Answer", "DecisionMethod", "SubsumptionResult"]


class Answer(str, Enum):
    """Outcome of a subsumption question ``s ⊑ S``."""

    #: definitely covered (deterministic evidence, e.g. pair-wise cover)
    COVERED = "covered"
    #: probably covered — RSPC exhausted its trials without a witness
    PROBABLY_COVERED = "probably_covered"
    #: definitely not covered (a witness was found)
    NOT_COVERED = "not_covered"

    @property
    def is_covered(self) -> bool:
        """Whether the answer treats ``s`` as covered (and thus redundant)."""
        return self in (Answer.COVERED, Answer.PROBABLY_COVERED)

    @property
    def is_certain(self) -> bool:
        """Whether the answer carries deterministic certainty."""
        return self in (Answer.COVERED, Answer.NOT_COVERED)


class DecisionMethod(str, Enum):
    """Which stage of the pipeline produced the answer."""

    #: there are no candidate subscriptions at all
    EMPTY_CANDIDATE_SET = "empty_candidate_set"
    #: Corollary 1 — a single candidate covers ``s``
    PAIRWISE_COVER = "pairwise_cover"
    #: Corollary 3 — sorted conflict-table rows prove a polyhedron witness
    POLYHEDRON_WITNESS = "polyhedron_witness"
    #: the MCS reduction removed every candidate
    EMPTY_MCS = "empty_mcs"
    #: RSPC guessed a point witness
    POINT_WITNESS = "point_witness"
    #: RSPC exhausted its trials → probabilistic YES
    RSPC_EXHAUSTED = "rspc_exhausted"
    #: the exact oracle decided (only when explicitly requested)
    EXACT = "exact"


@dataclass
class SubsumptionResult:
    """Rich outcome of a group-subsumption check.

    Attributes
    ----------
    answer:
        The verdict (covered / probably covered / not covered).
    method:
        Pipeline stage that produced the verdict.
    original_set_size:
        ``k`` — number of candidate subscriptions handed to the checker.
    reduced_set_size:
        Size of the candidate set after the MCS reduction (equal to
        ``original_set_size`` when MCS is disabled or never ran).
    rho_w:
        Estimated lower bound on the point-witness probability
        (``I(sw)/I(s)``); ``None`` when RSPC never ran.
    theoretical_iterations:
        The paper's ``d`` — trials needed for the requested error bound;
        may be ``inf`` when ``rho_w`` is 0.
    iterations_performed:
        Random guesses actually performed by RSPC (0 for fast decisions).
    error_bound:
        Residual probability that a "probably covered" verdict is wrong,
        ``(1 - rho_w)^iterations_performed``; 0 for deterministic verdicts.
    witness_point:
        The point witness proving non-coverage, when one was found.
    covering_row:
        Index (into the original candidate list) of the single subscription
        covering ``s`` for pair-wise decisions.
    truncated:
        Whether RSPC stopped early because of the ``max_iterations`` cap,
        i.e. the verdict's error bound is weaker than requested.
    details:
        Free-form extra diagnostics (timings, per-stage notes).
    """

    answer: Answer
    method: DecisionMethod
    original_set_size: int
    reduced_set_size: int
    rho_w: Optional[float] = None
    theoretical_iterations: Optional[float] = None
    iterations_performed: int = 0
    error_bound: float = 0.0
    witness_point: Optional[np.ndarray] = None
    covering_row: Optional[int] = None
    truncated: bool = False
    details: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def covered(self) -> bool:
        """Whether ``s`` is considered covered (deterministic or not)."""
        return self.answer.is_covered

    @property
    def certain(self) -> bool:
        """Whether the verdict is deterministic."""
        return self.answer.is_certain

    @property
    def is_probabilistic(self) -> bool:
        """Whether the verdict may be wrong (probabilistic YES)."""
        return self.answer is Answer.PROBABLY_COVERED

    @property
    def reduction_ratio(self) -> float:
        """Fraction of candidates removed by the MCS reduction."""
        if self.original_set_size == 0:
            return 0.0
        removed = self.original_set_size - self.reduced_set_size
        return removed / self.original_set_size

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.answer.value}",
            f"method={self.method.value}",
            f"k={self.original_set_size}->{self.reduced_set_size}",
            f"iterations={self.iterations_performed}",
        ]
        if self.rho_w is not None:
            parts.append(f"rho_w={self.rho_w:.3g}")
        if self.theoretical_iterations is not None:
            parts.append(f"d={self.theoretical_iterations:.3g}")
        if self.is_probabilistic:
            parts.append(f"error<={self.error_bound:.3g}")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.summary()
