"""Fast deterministic decisions (Section 4.3, Algorithm 4).

Before resorting to the probabilistic RSPC test, three cheap sufficient
conditions can settle the subsumption question deterministically:

1. **Pair-wise subsumption** (Corollary 1): a conflict-table row with no
   defined entry means that single candidate covers ``s`` → definite YES.
2. **Polyhedron witness** (Corollary 3): sort the rows by their number of
   defined entries ``t_i``; if the ``j``-th smallest satisfies
   ``t_{i_j} >= j`` for every ``j`` then a polyhedron witness exists →
   definite NO.
3. **Empty MCS output**: if the Minimized Cover Set removes every
   candidate, no subset of ``S`` can jointly cover ``s`` → definite NO.
   (This check lives in the orchestrator because it needs the MCS result.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.core.conflict_table import ConflictTable

__all__ = [
    "FastDecisionKind",
    "FastDecision",
    "detect_pairwise_cover",
    "detect_polyhedron_witness",
    "try_fast_decisions",
]


class FastDecisionKind(str, Enum):
    """Which sufficient condition fired."""

    #: Corollary 1 — some candidate covers ``s`` on its own
    PAIRWISE_COVER = "pairwise_cover"
    #: Corollary 3 — the sorted-row condition proves a polyhedron witness
    POLYHEDRON_WITNESS = "polyhedron_witness"


@dataclass(frozen=True)
class FastDecision:
    """A deterministic verdict produced without running RSPC.

    Attributes
    ----------
    kind:
        The sufficient condition that fired.
    covered:
        The verdict: ``True`` for pair-wise cover, ``False`` for a
        polyhedron witness.
    covering_row:
        For pair-wise cover, the row index of the covering candidate.
    """

    kind: FastDecisionKind
    covered: bool
    covering_row: Optional[int] = None


def detect_pairwise_cover(table: ConflictTable) -> Optional[FastDecision]:
    """Corollary 1: find a row whose entries are all undefined.

    Such a row's candidate covers ``s`` by itself, so the group question is
    answered with a definite YES in ``O(k)`` once the table is built.
    """
    if table.k == 0:
        return None
    empty_rows = np.nonzero(table.row_defined_counts == 0)[0]
    if empty_rows.size:
        return FastDecision(
            kind=FastDecisionKind.PAIRWISE_COVER,
            covered=True,
            covering_row=int(empty_rows[0]),
        )
    return None


def detect_polyhedron_witness(table: ConflictTable) -> Optional[FastDecision]:
    """Corollary 3: the sorted-row sufficient condition for non-coverage.

    Sort the per-row defined-entry counts ``t_i`` in ascending order; when
    the ``j``-th smallest count is at least ``j`` (1-based) for every row, a
    polyhedron witness can always be constructed greedily, so ``s`` is
    definitely not covered.
    """
    if table.k == 0:
        return None
    counts = np.sort(table.row_defined_counts)
    positions = np.arange(1, table.k + 1)
    if np.all(counts >= positions):
        return FastDecision(
            kind=FastDecisionKind.POLYHEDRON_WITNESS,
            covered=False,
        )
    return None


def try_fast_decisions(table: ConflictTable) -> Optional[FastDecision]:
    """Apply the conflict-table-only fast decisions in the paper's order."""
    decision = detect_pairwise_cover(table)
    if decision is not None:
        return decision
    return detect_polyhedron_witness(table)
