"""Contiguous subscription-bounds storage — the subsumption arena.

The probabilistic pipeline (conflict table, MCS, ``rho_w`` estimation,
RSPC) is pure bounds arithmetic: every stage consumes the candidates'
``(k, m)`` lower/upper bound matrices, never the subscription objects
themselves.  Historically each :meth:`SubsumptionChecker.check` call
re-materialised those matrices with ``np.vstack`` over a Python list —
an O(m·k) Python-loop cost paid per check, thousands of times per
scenario over largely overlapping candidate sets.

This module keeps the bounds resident instead:

* :class:`SubscriptionArena` — an incrementally maintained pair of
  ``(capacity, m)`` float64 arrays (lows/highs) with an id→row map and a
  free-list, owned by :class:`~repro.core.store.SubscriptionStore` (and
  exposed through :class:`~repro.matching.engine.MatchingEngine`).
  Adding or removing a subscription touches one row; a candidate set
  becomes a row-index gather instead of an object loop.
* :class:`CandidateSet` — an immutable snapshot of one candidate set:
  a ``Sequence[Subscription]`` (so every existing strategy/checker API
  keeps working) that also carries the stacked bounds.  Arena-backed
  snapshots gather their rows in a single vectorised fancy-index; plain
  snapshots (e.g. a broker link's advertisement set) stack lazily, once,
  instead of on every decision.  Each snapshot carries a process-unique
  ``fingerprint`` token, which is what the checker's verdict cache keys
  on: any add/remove invalidates the snapshot, forcing a new fingerprint
  and therefore a cache miss — stale verdicts can never be served.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.errors import ValidationError
from repro.model.subscriptions import Subscription

__all__ = ["SubscriptionArena", "CandidateSet", "as_candidate_set"]

#: process-unique tokens for candidate-set snapshots; never reused, so a
#: verdict cached against a dead snapshot can never collide with a new one
_fingerprints = itertools.count(1)

#: free-list size below which compaction never triggers — small stores
#: churn through the free-list for free, only sustained deletion at scale
#: should pay for row moves
_COMPACT_MIN_FREE = 64


class CandidateSet(Sequence):
    """Immutable snapshot of a candidate set with contiguous bounds.

    Behaves as a ``Sequence[Subscription]`` (iteration, indexing,
    ``len``) so it is a drop-in replacement for the candidate lists the
    reduction strategies and checkers historically received, while
    exposing the stacked ``(k, m)`` bounds the vectorised pipeline
    stages consume directly.

    Parameters
    ----------
    subscriptions:
        The candidate subscriptions, in decision order.
    lows, highs:
        Pre-gathered bounds (e.g. an arena row gather).  When omitted
        they are stacked lazily on first access — once per snapshot, not
        once per check.
    """

    __slots__ = ("subscriptions", "schema", "fingerprint", "_lows", "_highs", "_ids")

    def __init__(
        self,
        subscriptions: Sequence[Subscription],
        lows: Optional[np.ndarray] = None,
        highs: Optional[np.ndarray] = None,
    ):
        self.subscriptions: Tuple[Subscription, ...] = tuple(subscriptions)
        if self.subscriptions:
            schema = self.subscriptions[0].schema
            # Identity-first scan: same-object schemas (the overwhelmingly
            # common case) cost one `is` each; genuinely different schemas
            # are rejected here so the zero-copy consumers downstream can
            # trust the snapshot without re-validating per candidate.
            for candidate in self.subscriptions:
                if candidate.schema is not schema and candidate.schema != schema:
                    raise ValidationError(
                        "candidate set requires all subscriptions to share a schema"
                    )
        else:
            schema = None
        self.schema = schema
        self.fingerprint = next(_fingerprints)
        self._lows = lows
        self._highs = highs
        self._ids: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Vectorised containment
    # ------------------------------------------------------------------
    def _check_same_schema(self, subscription: Subscription) -> None:
        """Schema validation mirroring ``Subscription.covers`` (identity first)."""
        if (
            self.schema is not None
            and subscription.schema is not self.schema
            and subscription.schema != self.schema
        ):
            raise ValidationError(
                "subscriptions belong to different schemas "
                f"({subscription.schema.name!r} vs {self.schema.name!r})"
            )

    def covered_rows_mask(self, subscription: Subscription) -> np.ndarray:
        """Boolean mask of candidates pair-wise covered *by* ``subscription``.

        One broadcast containment test — the vectorised form of
        ``subscription.covers(candidate)`` per row (including its schema
        validation); shared by the store's demotion pass and anything
        else that asks "whom does the newcomer dominate?".
        """
        self._check_same_schema(subscription)
        return np.all(
            (subscription.lows <= self.lows) & (self.highs <= subscription.highs),
            axis=1,
        )

    def covering_rows_mask(self, subscription: Subscription) -> np.ndarray:
        """Boolean mask of candidates that pair-wise cover ``subscription``.

        The vectorised form of ``candidate.covers(subscription)`` per row
        (the classical covering test of the pair-wise strategies),
        including its schema validation.
        """
        self._check_same_schema(subscription)
        return np.all(
            (self.lows <= subscription.lows) & (subscription.highs <= self.highs),
            axis=1,
        )

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _stack(self) -> None:
        if self.subscriptions:
            self._lows = np.array([s.lows for s in self.subscriptions])
            self._highs = np.array([s.highs for s in self.subscriptions])
        else:
            m = 0 if self.schema is None else self.schema.m
            self._lows = np.empty((0, m), dtype=float)
            self._highs = np.empty((0, m), dtype=float)

    @property
    def lows(self) -> np.ndarray:
        """Stacked per-candidate lower bounds, shape ``(k, m)``."""
        if self._lows is None:
            self._stack()
        return self._lows

    @property
    def highs(self) -> np.ndarray:
        """Stacked per-candidate upper bounds, shape ``(k, m)``."""
        if self._highs is None:
            self._stack()
        return self._highs

    @property
    def ids(self) -> Tuple[str, ...]:
        """Candidate identifiers, in decision order."""
        if self._ids is None:
            self._ids = tuple(s.id for s in self.subscriptions)
        return self._ids

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subscriptions)

    def __getitem__(self, index):
        return self.subscriptions[index]

    def __iter__(self) -> Iterator[Subscription]:
        return iter(self.subscriptions)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CandidateSet(k={len(self.subscriptions)}, fp={self.fingerprint})"


def as_candidate_set(candidates: Sequence[Subscription]) -> CandidateSet:
    """Wrap ``candidates`` in a :class:`CandidateSet` (no-op when it is one)."""
    if isinstance(candidates, CandidateSet):
        return candidates
    return CandidateSet(candidates)


class SubscriptionArena:
    """Incrementally maintained contiguous bounds arrays.

    Rows are allocated on :meth:`add`, recycled through a free-list on
    :meth:`remove`, and the backing arrays double in capacity when full
    (amortised O(1) per insertion).  ``version`` increases on every
    mutation; snapshots taken through :meth:`select` copy the selected
    rows out, so they stay valid — and immutable — across later arena
    mutations.

    Sustained deletion compacts lazily: once the free-list holds at least
    ``_COMPACT_MIN_FREE`` rows *and* outnumbers the live rows, the live
    tail rows are moved down into the free slots.  The pass is O(dead +
    moved), touches the id↔row maps only for the rows it actually moves
    (never a full rebuild), and keeps the live rows densely packed in
    ``[0, next_row)`` — which is what lets churn at millions of rows
    proceed without stalls, and lets zero-copy consumers scan a bounded
    prefix instead of the whole capacity.
    """

    def __init__(self, m: Optional[int] = None, capacity: int = 32):
        self._m = m
        self._capacity = max(int(capacity), 1)
        self._lows: Optional[np.ndarray] = None
        self._highs: Optional[np.ndarray] = None
        if m is not None:
            self._allocate(m)
        self._row_of: dict = {}
        self._id_at: dict = {}
        self._free: List[int] = []
        self._next_row = 0
        self._version = 0
        self._compactions = 0
        self._moved_rows = 0

    def _allocate(self, m: int) -> None:
        self._m = int(m)
        self._lows, self._highs = self._new_arrays(self._capacity, self._m)

    # ------------------------------------------------------------------
    # Storage hooks (overridden by shared-memory-backed subclasses)
    # ------------------------------------------------------------------
    def _new_arrays(self, capacity: int, m: int):
        """Allocate a ``(capacity, m)`` lows/highs array pair.

        Subclasses override this to place the backing storage elsewhere
        (e.g. ``multiprocessing.shared_memory``); growth and compaction
        then work unchanged against whatever arrays it returns.
        """
        return (
            np.empty((capacity, m), dtype=float),
            np.empty((capacity, m), dtype=float),
        )

    def _retire_arrays(self, lows: np.ndarray, highs: np.ndarray) -> None:
        """Release a superseded array pair after a grow (default: GC)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def m(self) -> Optional[int]:
        """Number of attributes per row (``None`` until the first add)."""
        return self._m

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every add/remove)."""
        return self._version

    @property
    def capacity(self) -> int:
        """Currently allocated number of rows."""
        return self._capacity if self._lows is not None else 0

    @property
    def next_row(self) -> int:
        """One past the highest row ever handed out (live rows ⊆ ``[0, next_row)``)."""
        return self._next_row

    @property
    def compactions(self) -> int:
        """Number of compaction passes performed so far."""
        return self._compactions

    @property
    def moved_rows(self) -> int:
        """Total rows relocated by compaction (the O(moved) work measure)."""
        return self._moved_rows

    @property
    def lows(self) -> Optional[np.ndarray]:
        """The backing lower-bound array (``(capacity, m)``; live rows only are meaningful)."""
        return self._lows

    @property
    def highs(self) -> Optional[np.ndarray]:
        """The backing upper-bound array."""
        return self._highs

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._row_of

    def row_of(self, subscription_id: str) -> int:
        """Arena row currently holding ``subscription_id``."""
        return self._row_of[subscription_id]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> int:
        """Copy a subscription's bounds into the arena; returns its row."""
        if self._lows is None:
            self._allocate(subscription.m)
        elif subscription.m != self._m:
            raise ValidationError(
                f"arena holds {self._m}-attribute rows; got {subscription.m}"
            )
        if subscription.id in self._row_of:
            raise ValidationError(
                f"subscription {subscription.id!r} is already in the arena"
            )
        if self._free:
            row = self._free.pop()
        else:
            if self._next_row == self._capacity:
                self._grow()
            row = self._next_row
            self._next_row += 1
        self._lows[row] = subscription.lows
        self._highs[row] = subscription.highs
        self._row_of[subscription.id] = row
        self._id_at[row] = subscription.id
        self._version += 1
        return row

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        lows, highs = self._new_arrays(new_capacity, self._m)
        lows[: self._capacity] = self._lows
        highs[: self._capacity] = self._highs
        old_lows, old_highs = self._lows, self._highs
        self._lows = lows
        self._highs = highs
        self._capacity = new_capacity
        self._retire_arrays(old_lows, old_highs)

    def remove(self, subscription_id: str) -> int:
        """Release the row of ``subscription_id`` back to the free-list."""
        row = self._row_of.pop(subscription_id)
        del self._id_at[row]
        self._free.append(row)
        self._version += 1
        if (
            len(self._free) >= _COMPACT_MIN_FREE
            and len(self._free) >= len(self._row_of)
        ):
            self._compact()
        return row

    def _compact(self) -> None:
        """Pack the live rows into ``[0, live)``; O(dead + moved).

        Only the rows moved down out of the tail touch the id↔row maps —
        entries of unmoved rows are left exactly as they were (no eager
        rebuild), which the regression test pins.
        """
        live = len(self._row_of)
        dest_slots = sorted(row for row in self._free if row < live)
        if dest_slots:
            src_rows = sorted(
                (row for row in self._id_at if row >= live), reverse=True
            )
            for dest, src in zip(dest_slots, src_rows):
                subscription_id = self._id_at.pop(src)
                self._lows[dest] = self._lows[src]
                self._highs[dest] = self._highs[src]
                self._row_of[subscription_id] = dest
                self._id_at[dest] = subscription_id
            self._moved_rows += len(dest_slots)
        self._free.clear()
        self._next_row = live
        self._compactions += 1
        self._version += 1

    def discard(self, subscription_id: str) -> Optional[int]:
        """Like :meth:`remove`, but a no-op for unknown identifiers."""
        if subscription_id not in self._row_of:
            return None
        return self.remove(subscription_id)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def select(self, subscriptions: Sequence[Subscription]) -> CandidateSet:
        """Snapshot a candidate set in one vectorised row gather.

        The subscriptions must all be resident in the arena; their order
        defines the snapshot's candidate order (and therefore the row
        indices of verdicts computed against it).
        """
        subscriptions = tuple(subscriptions)
        if not subscriptions or self._lows is None:
            return CandidateSet(subscriptions)
        rows = np.fromiter(
            (self._row_of[s.id] for s in subscriptions),
            dtype=np.intp,
            count=len(subscriptions),
        )
        return CandidateSet(subscriptions, self._lows[rows], self._highs[rows])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SubscriptionArena(n={len(self._row_of)}, m={self._m}, "
            f"capacity={self.capacity}, version={self._version})"
        )
