"""Random Simple Predicates Cover (Algorithm 1).

RSPC is the Monte Carlo core of the paper: it repeatedly guesses a uniform
random point inside the tested subscription ``s`` and checks whether the
point is a *point witness*, i.e. lies outside every subscription of the
candidate set ``S``.  Finding a witness proves non-coverage (a definite
NO); exhausting the ``d`` allowed guesses yields a probabilistic YES whose
error probability is bounded by ``(1 - rho_w)^d`` (Proposition 1 / Eq. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.arena import CandidateSet
from repro.core.error_model import effective_error, required_iterations
from repro.core.witness import point_is_witness
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["RSPCOutcome", "RSPCResult", "run_rspc"]


class RSPCOutcome(str, Enum):
    """Verdict of one RSPC execution."""

    #: a point witness was found — ``s`` is definitely not covered
    WITNESS_FOUND = "witness_found"
    #: all guesses failed — ``s`` is covered with probability ``>= 1 - error``
    EXHAUSTED = "exhausted"
    #: there was nothing to guess against (empty candidate set)
    NO_CANDIDATES = "no_candidates"


@dataclass
class RSPCResult:
    """Outcome and accounting of an RSPC execution.

    Attributes
    ----------
    outcome:
        Which of the three verdicts was reached.
    covered:
        Interpretation of the outcome as a cover answer.
    iterations_performed:
        Number of random guesses actually executed (``<= iterations_allowed``).
    iterations_allowed:
        The guess budget used for this execution (the capped ``d``).
    theoretical_iterations:
        The uncapped ``d`` implied by the error bound, possibly ``inf``.
    witness_point:
        The discovered point witness, when ``outcome`` is ``WITNESS_FOUND``.
    rho_w:
        The point-witness probability bound the budget was derived from.
    error_bound:
        Residual error probability of a YES verdict after the performed
        guesses, ``(1 - rho_w)^iterations_performed``.
    truncated:
        True when the budget was capped below the theoretical ``d`` so the
        achieved error bound is weaker than requested.
    """

    outcome: RSPCOutcome
    covered: bool
    iterations_performed: int
    iterations_allowed: int
    theoretical_iterations: float
    witness_point: Optional[np.ndarray]
    rho_w: float
    error_bound: float
    truncated: bool


#: how many random guesses are generated and tested per vectorised batch
_BATCH_SIZE = 256

#: candidates per membership-test block (see ``_guess_witness``)
_CANDIDATE_BLOCK = 8

#: sampling-plan step kinds (see :func:`_sampling_plan`)
_DRAW_INTEGERS = 0
_DRAW_UNIFORM = 1
_DRAW_CONSTANT = 2


def _sampling_plan(subscription: Subscription) -> list:
    """Precompute the per-attribute sampling spec of one RSPC check.

    The plan fixes, once per check instead of once per 256-point batch,
    how each attribute column is drawn: discrete columns from
    ``rng.integers``, non-degenerate continuous columns from
    ``rng.uniform``, degenerate columns as a constant fill.  The draw
    sequence is identical to the historical per-batch derivation, so
    seeded runs produce bit-identical guess streams.
    """
    cached = getattr(subscription, "_rspc_plan", None)
    if cached is not None:
        return cached
    schema = subscription.schema
    vectors = getattr(schema, "vectors", None)
    plan = []
    lows = subscription.lows.tolist()
    highs = subscription.highs.tolist()
    for attribute in range(schema.m):
        low = lows[attribute]
        high = highs[attribute]
        discrete = (
            bool(vectors.discrete[attribute])
            if vectors is not None
            else schema.domain(attribute).is_discrete
        )
        if discrete:
            plan.append((_DRAW_INTEGERS, int(low), int(high) + 1))
        elif high > low:
            plan.append((_DRAW_UNIFORM, low, high))
        else:
            plan.append((_DRAW_CONSTANT, low, low))
    # Subscription bounds are immutable after construction, so the plan
    # can ride on the object across the many re-checks brokers perform.
    try:
        subscription._rspc_plan = plan
    except AttributeError:  # __slots__ without room for the cache
        pass
    return plan


def _sample_points(
    plan, rng: np.random.Generator, count: int
) -> np.ndarray:
    """Sample ``count`` uniform points following a precomputed plan.

    Equivalent to calling :meth:`Subscription.sample_point` ``count`` times
    but drawing whole columns at once, which keeps RSPC fast when the trial
    budget is large.  Accepts a :class:`Subscription` directly for
    convenience (the plan is then derived on the spot).
    """
    if isinstance(plan, Subscription):
        plan = _sampling_plan(plan)
    points = np.empty((count, len(plan)), dtype=float)
    for attribute, (kind, a, b) in enumerate(plan):
        if kind == _DRAW_INTEGERS:
            # assignment into the float column casts in place; the draw
            # itself is the same ``integers`` call either way
            points[:, attribute] = rng.integers(a, b, size=count)
        elif kind == _DRAW_UNIFORM:
            points[:, attribute] = rng.uniform(a, b, size=count)
        else:
            points[:, attribute] = a
    return points


def _guess_witness(
    subscription: Subscription,
    cand_lows: np.ndarray,
    cand_highs: np.ndarray,
    rng: np.random.Generator,
    allowed: int,
) -> tuple:
    """Vectorised Algorithm 1 loop: ``(witness_or_None, guesses_used)``."""
    plan = _sampling_plan(subscription)

    # "Is the point inside ANY candidate?" is order-independent, so the
    # candidates can be tested in blocks sorted by (heuristic) volume:
    # the widest candidates absorb most guesses in the first block or
    # two, and the remaining blocks only ever see the few points still
    # uncovered — an early exit that typically skips most of the O(k·m)
    # membership work without changing a single verdict or guess count.
    # A candidate set that fits in one block needs neither the volume
    # heuristic nor the ordering.
    if len(cand_lows) <= _CANDIDATE_BLOCK:
        blocks = [
            (cand_lows[np.newaxis, :, :], cand_highs[np.newaxis, :, :])
        ]
    else:
        with np.errstate(all="ignore"):
            volume = np.prod(cand_highs - cand_lows + 1.0, axis=1)
        order = np.argsort(-volume)
        blocks = [
            (
                cand_lows[order[start : start + _CANDIDATE_BLOCK]][np.newaxis, :, :],
                cand_highs[order[start : start + _CANDIDATE_BLOCK]][np.newaxis, :, :],
            )
            for start in range(0, len(order), _CANDIDATE_BLOCK)
        ]

    performed = 0
    single_block = len(blocks) == 1
    while performed < allowed:
        batch = min(_BATCH_SIZE, allowed - performed)
        points = _sample_points(plan, rng, batch)
        if single_block:
            block_lows, block_highs = blocks[0]
            subset = points[:, np.newaxis, :]
            covered = (
                ((subset >= block_lows) & (subset <= block_highs))
                .all(axis=2)
                .any(axis=1)
            )
        else:
            covered = np.zeros(batch, dtype=bool)
            remaining = np.arange(batch)
            for block_lows, block_highs in blocks:
                subset = points[remaining, np.newaxis, :]
                inside = (
                    ((subset >= block_lows) & (subset <= block_highs))
                    .all(axis=2)
                    .any(axis=1)
                )
                covered[remaining[inside]] = True
                remaining = remaining[~inside]
                if remaining.size == 0:
                    break
        if covered.all():
            performed += batch
            continue
        first = int(covered.argmin())
        return points[first], performed + first + 1
    return None, performed


def run_rspc(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    rho_w: float,
    delta: float = 1e-6,
    rng: RandomSource = None,
    max_iterations: Optional[int] = None,
    bounds: Optional[tuple] = None,
) -> RSPCResult:
    """Execute Algorithm 1 against ``candidates``.

    Parameters
    ----------
    subscription:
        The subscription ``s`` whose coverage is being tested.
    candidates:
        The candidate set ``S`` (typically already reduced by MCS).
    rho_w:
        Lower bound on the point-witness probability (from Algorithm 2);
        determines the number of trials for the requested ``delta``.
    delta:
        Acceptable probability of a false "covered" verdict (Eq. 1).
    rng:
        Seed or generator for the random guesses.
    max_iterations:
        Hard cap on the number of guesses.  The theoretical ``d`` can be
        astronomically large (the paper reports values up to ``10^60``);
        capping keeps the checker practical, at the cost of a weaker error
        bound which is reported through ``truncated``/``error_bound``.
    bounds:
        Optional pre-stacked ``(lows, highs)`` candidate bound matrices
        (e.g. conflict-table slices) — skips re-stacking the candidate
        objects.  Must describe exactly ``candidates``.

    Returns
    -------
    RSPCResult
        The verdict plus all accounting needed by the experiments.
    """
    generator = ensure_rng(rng)

    if not candidates:
        return RSPCResult(
            outcome=RSPCOutcome.NO_CANDIDATES,
            covered=False,
            iterations_performed=0,
            iterations_allowed=0,
            theoretical_iterations=0.0,
            witness_point=None,
            rho_w=1.0,
            error_bound=0.0,
            truncated=False,
        )

    theoretical = required_iterations(delta, rho_w)
    if max_iterations is None:
        allowed = int(theoretical) if math.isfinite(theoretical) else 2**31 - 1
    else:
        allowed = int(min(theoretical, float(max_iterations)))
    allowed = max(allowed, 1)
    truncated = allowed < theoretical

    if bounds is not None:
        cand_lows, cand_highs = bounds
    elif isinstance(candidates, CandidateSet):
        cand_lows, cand_highs = candidates.lows, candidates.highs
    else:
        cand_lows = np.array([candidate.lows for candidate in candidates])
        cand_highs = np.array([candidate.highs for candidate in candidates])

    witness, performed = _guess_witness(
        subscription, cand_lows, cand_highs, generator, allowed
    )

    if witness is not None:
        return RSPCResult(
            outcome=RSPCOutcome.WITNESS_FOUND,
            covered=False,
            iterations_performed=performed,
            iterations_allowed=allowed,
            theoretical_iterations=theoretical,
            witness_point=witness,
            rho_w=rho_w,
            error_bound=0.0,
            truncated=truncated,
        )

    return RSPCResult(
        outcome=RSPCOutcome.EXHAUSTED,
        covered=True,
        iterations_performed=performed,
        iterations_allowed=allowed,
        theoretical_iterations=theoretical,
        witness_point=None,
        rho_w=rho_w,
        error_bound=effective_error(rho_w, performed),
        truncated=truncated,
    )
