"""Random Simple Predicates Cover (Algorithm 1).

RSPC is the Monte Carlo core of the paper: it repeatedly guesses a uniform
random point inside the tested subscription ``s`` and checks whether the
point is a *point witness*, i.e. lies outside every subscription of the
candidate set ``S``.  Finding a witness proves non-coverage (a definite
NO); exhausting the ``d`` allowed guesses yields a probabilistic YES whose
error probability is bounded by ``(1 - rho_w)^d`` (Proposition 1 / Eq. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.core.error_model import effective_error, required_iterations
from repro.core.witness import point_is_witness
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["RSPCOutcome", "RSPCResult", "run_rspc"]


class RSPCOutcome(str, Enum):
    """Verdict of one RSPC execution."""

    #: a point witness was found — ``s`` is definitely not covered
    WITNESS_FOUND = "witness_found"
    #: all guesses failed — ``s`` is covered with probability ``>= 1 - error``
    EXHAUSTED = "exhausted"
    #: there was nothing to guess against (empty candidate set)
    NO_CANDIDATES = "no_candidates"


@dataclass
class RSPCResult:
    """Outcome and accounting of an RSPC execution.

    Attributes
    ----------
    outcome:
        Which of the three verdicts was reached.
    covered:
        Interpretation of the outcome as a cover answer.
    iterations_performed:
        Number of random guesses actually executed (``<= iterations_allowed``).
    iterations_allowed:
        The guess budget used for this execution (the capped ``d``).
    theoretical_iterations:
        The uncapped ``d`` implied by the error bound, possibly ``inf``.
    witness_point:
        The discovered point witness, when ``outcome`` is ``WITNESS_FOUND``.
    rho_w:
        The point-witness probability bound the budget was derived from.
    error_bound:
        Residual error probability of a YES verdict after the performed
        guesses, ``(1 - rho_w)^iterations_performed``.
    truncated:
        True when the budget was capped below the theoretical ``d`` so the
        achieved error bound is weaker than requested.
    """

    outcome: RSPCOutcome
    covered: bool
    iterations_performed: int
    iterations_allowed: int
    theoretical_iterations: float
    witness_point: Optional[np.ndarray]
    rho_w: float
    error_bound: float
    truncated: bool


#: how many random guesses are generated and tested per vectorised batch
_BATCH_SIZE = 256


def _sample_points(
    subscription: Subscription, rng: np.random.Generator, count: int
) -> np.ndarray:
    """Sample ``count`` uniform points inside ``subscription`` (vectorised).

    Equivalent to calling :meth:`Subscription.sample_point` ``count`` times
    but drawing whole columns at once, which keeps RSPC fast when the trial
    budget is large.
    """
    schema = subscription.schema
    points = np.empty((count, schema.m), dtype=float)
    for attribute in range(schema.m):
        low = float(subscription.lows[attribute])
        high = float(subscription.highs[attribute])
        if schema.domain(attribute).is_discrete:
            points[:, attribute] = rng.integers(
                int(low), int(high) + 1, size=count
            ).astype(float)
        elif high > low:
            points[:, attribute] = rng.uniform(low, high, size=count)
        else:
            points[:, attribute] = low
    return points


def _guess_witness(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    rng: np.random.Generator,
    allowed: int,
) -> tuple:
    """Vectorised Algorithm 1 loop: ``(witness_or_None, guesses_used)``."""
    cand_lows = np.vstack([candidate.lows for candidate in candidates])
    cand_highs = np.vstack([candidate.highs for candidate in candidates])
    performed = 0
    while performed < allowed:
        batch = min(_BATCH_SIZE, allowed - performed)
        points = _sample_points(subscription, rng, batch)
        inside = (points[:, np.newaxis, :] >= cand_lows[np.newaxis, :, :]) & (
            points[:, np.newaxis, :] <= cand_highs[np.newaxis, :, :]
        )
        covered = inside.all(axis=2).any(axis=1)
        misses = np.nonzero(~covered)[0]
        if misses.size:
            first = int(misses[0])
            return points[first], performed + first + 1
        performed += batch
    return None, performed


def run_rspc(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    rho_w: float,
    delta: float = 1e-6,
    rng: RandomSource = None,
    max_iterations: Optional[int] = None,
) -> RSPCResult:
    """Execute Algorithm 1 against ``candidates``.

    Parameters
    ----------
    subscription:
        The subscription ``s`` whose coverage is being tested.
    candidates:
        The candidate set ``S`` (typically already reduced by MCS).
    rho_w:
        Lower bound on the point-witness probability (from Algorithm 2);
        determines the number of trials for the requested ``delta``.
    delta:
        Acceptable probability of a false "covered" verdict (Eq. 1).
    rng:
        Seed or generator for the random guesses.
    max_iterations:
        Hard cap on the number of guesses.  The theoretical ``d`` can be
        astronomically large (the paper reports values up to ``10^60``);
        capping keeps the checker practical, at the cost of a weaker error
        bound which is reported through ``truncated``/``error_bound``.

    Returns
    -------
    RSPCResult
        The verdict plus all accounting needed by the experiments.
    """
    generator = ensure_rng(rng)

    if not candidates:
        return RSPCResult(
            outcome=RSPCOutcome.NO_CANDIDATES,
            covered=False,
            iterations_performed=0,
            iterations_allowed=0,
            theoretical_iterations=0.0,
            witness_point=None,
            rho_w=1.0,
            error_bound=0.0,
            truncated=False,
        )

    theoretical = required_iterations(delta, rho_w)
    if max_iterations is None:
        allowed = int(theoretical) if math.isfinite(theoretical) else 2**31 - 1
    else:
        allowed = int(min(theoretical, float(max_iterations)))
    allowed = max(allowed, 1)
    truncated = allowed < theoretical

    witness, performed = _guess_witness(subscription, candidates, generator, allowed)

    if witness is not None:
        return RSPCResult(
            outcome=RSPCOutcome.WITNESS_FOUND,
            covered=False,
            iterations_performed=performed,
            iterations_allowed=allowed,
            theoretical_iterations=theoretical,
            witness_point=witness,
            rho_w=rho_w,
            error_bound=0.0,
            truncated=truncated,
        )

    return RSPCResult(
        outcome=RSPCOutcome.EXHAUSTED,
        covered=True,
        iterations_performed=performed,
        iterations_allowed=allowed,
        theoretical_iterations=theoretical,
        witness_point=None,
        rho_w=rho_w,
        error_bound=effective_error(rho_w, performed),
        truncated=truncated,
    )
