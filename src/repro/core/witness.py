"""Witnesses to non-coverage.

Definitions 3 and 4 of the paper introduce two kinds of evidence that a
subscription ``s`` is *not* covered by the set ``S``:

* a **polyhedron witness** — a selection of one defined conflict-table
  entry per row whose conjunction with ``s`` is satisfiable; geometrically
  a box contained in ``s`` but disjoint from every ``s_i``;
* a **point witness** — any point inside such a box, i.e. a point of ``s``
  outside every ``s_i``.

This module provides

* :func:`find_point_witness` — the membership test used by RSPC,
* :func:`find_polyhedron_witness_greedy` — the greedy construction from the
  proof of Corollary 3,
* :func:`estimate_smallest_witness` / :func:`compute_point_witness_probability`
  — Algorithm 2, the ``I(sw)``/``rho_w`` estimator that feeds Eq. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.conflict_table import ConflictTable, EntryRef, EntrySide
from repro.model.intervals import Interval
from repro.model.subscriptions import Subscription

__all__ = [
    "WitnessEstimate",
    "find_point_witness",
    "point_is_witness",
    "find_polyhedron_witness_greedy",
    "witness_box_from_entries",
    "estimate_smallest_witness",
    "compute_point_witness_probability",
]


# ----------------------------------------------------------------------
# Point witnesses
# ----------------------------------------------------------------------
def point_is_witness(
    point: np.ndarray,
    candidates: Sequence[Subscription],
) -> bool:
    """Whether ``point`` lies outside every candidate subscription.

    The caller guarantees the point lies inside ``s``; the function only
    performs the ``O(m·k)`` membership scan of Algorithm 1, line 4.
    """
    for candidate in candidates:
        if candidate.contains_point(point):
            return False
    return True


def find_point_witness(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    rng: np.random.Generator,
    max_trials: int,
) -> Tuple[Optional[np.ndarray], int]:
    """Randomly guess points of ``s`` looking for a point witness.

    Returns ``(witness, trials_used)`` where ``witness`` is ``None`` when no
    witness was found within ``max_trials`` guesses.  This is the raw loop
    of Algorithm 1; the full RSPC wrapper in :mod:`repro.core.rspc` adds
    bookkeeping and the error model.
    """
    for trial in range(1, max_trials + 1):
        point = subscription.sample_point(rng)
        if point_is_witness(point, candidates):
            return point, trial
    return None, max_trials


# ----------------------------------------------------------------------
# Polyhedron witnesses
# ----------------------------------------------------------------------
def find_polyhedron_witness_greedy(
    table: ConflictTable,
) -> Optional[List[EntryRef]]:
    """Greedy construction of a polyhedron witness from the conflict table.

    Follows the proof of Corollary 3: repeatedly pick a defined entry from
    the row with the fewest remaining defined entries and discard, from
    every other row, the entries conflicting with the choice.  When every
    row can contribute an entry, the selected entries form a polyhedron
    witness; the construction is guaranteed to succeed when the sorted-row
    condition ``t_{i_j} >= j`` holds and may succeed opportunistically in
    other cases.  Returns ``None`` when some row runs out of entries (which
    does *not* prove coverage).
    """
    if table.k == 0:
        return []
    remaining: List[List[EntryRef]] = [
        table.defined_entries(row) for row in range(table.k)
    ]
    if any(not entries for entries in remaining):
        return None

    chosen: List[EntryRef] = []
    unresolved = set(range(table.k))
    while unresolved:
        # Pick the most constrained row first (fewest usable entries).
        row = min(unresolved, key=lambda r: len(remaining[r]))
        if not remaining[row]:
            return None
        entry = remaining[row][0]
        chosen.append(entry)
        unresolved.discard(row)
        for other in list(unresolved):
            remaining[other] = [
                candidate
                for candidate in remaining[other]
                if not table.entries_conflict(entry, candidate)
            ]
            if not remaining[other]:
                return None
    return chosen


def witness_box_from_entries(
    table: ConflictTable, entries: Sequence[EntryRef]
) -> Optional[Subscription]:
    """Materialise the witness box ``s ∧ entry_1 ∧ … ∧ entry_k``.

    Returns ``None`` when the conjunction is empty (the entries were not a
    valid witness).  The returned box is represented as a subscription so it
    can be measured and sampled like any other region.
    """
    subscription = table.subscription
    lows = subscription.lows.copy()
    highs = subscription.highs.copy()
    for entry in entries:
        region = table.entry_region(entry.row, entry.attribute, entry.side)
        if region.is_empty:
            return None
        current = Interval(lows[entry.attribute], highs[entry.attribute])
        clipped = current.intersection(region)
        if clipped.is_empty:
            return None
        lows[entry.attribute] = clipped.low
        highs[entry.attribute] = clipped.high
    return Subscription(
        subscription.schema,
        lows,
        highs,
        subscription_id=f"{subscription.id}#witness",
    )


# ----------------------------------------------------------------------
# Algorithm 2 — rho_w estimation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WitnessEstimate:
    """Output of the smallest-witness estimator (Algorithm 2).

    Attributes
    ----------
    subscription_size:
        ``I(s)`` — measure of the tested subscription.
    witness_size:
        ``I(sw)`` — estimated measure of the smallest polyhedron witness.
    rho_w:
        ``I(sw) / I(s)`` clamped to ``[0, 1]`` — the lower bound on the
        probability that a uniformly random point of ``s`` is a point
        witness when ``s`` is not covered.
    per_attribute_gaps:
        The per-attribute minimum uncovered slice measures whose product is
        ``witness_size``.
    """

    subscription_size: float
    witness_size: float
    rho_w: float
    per_attribute_gaps: Tuple[float, ...]


def estimate_smallest_witness(
    table: ConflictTable, rows: Optional[Sequence[int]] = None
) -> WitnessEstimate:
    """Estimate ``I(sw)`` and ``rho_w`` from a conflict table (Algorithm 2).

    The estimator multiplies, over all attributes, the smallest measure of
    the slice of ``s`` left uncovered by any single candidate on that
    attribute.  With no candidates the estimate degenerates to
    ``rho_w = 1`` (any point of ``s`` is a witness).
    """
    subscription_size = table.subscription.size()
    gaps = table.minimum_gap_measures(rows).tolist()
    witness_size = math.prod(gaps, start=1.0)
    if subscription_size <= 0:
        rho = 0.0
    else:
        rho = min(max(witness_size / subscription_size, 0.0), 1.0)
    return WitnessEstimate(
        subscription_size=float(subscription_size),
        witness_size=float(witness_size),
        rho_w=rho,
        per_attribute_gaps=tuple(gaps),
    )


def compute_point_witness_probability(
    subscription: Subscription,
    candidates: Sequence[Subscription],
) -> float:
    """Convenience wrapper returning only ``rho_w`` for ``s`` versus ``S``."""
    table = ConflictTable(subscription, candidates)
    return estimate_smallest_witness(table).rho_w
