"""The pluggable subscription-reduction strategy layer.

Every place the system decides "does this subscription still have to be
propagated, given what the receiver already knows?" — the
:class:`~repro.core.store.SubscriptionStore`, each broker's per-link
covering decision and the matching engine's covered-membership
bookkeeping — used to branch on the covering policy locally.  This module
lifts that decision behind one seam:

* :class:`ReductionDecision` — the *shape* of a reduction verdict:
  forwarded, suppressed-by (with the covering dependency set), or
  replaced-by-merged (with the merged bounding box, the advertisements it
  absorbs and the false volume it introduces), plus the RSPC-iteration and
  candidate accounting the experiments need;
* :class:`ReductionStrategy` — the protocol a policy implements:
  ``decide(subscription, candidates) -> ReductionDecision``;
* a registry (:func:`register_strategy`, :func:`make_strategy`,
  :data:`STRATEGY_NAMES`) so a new reduction policy is a one-file
  addition instead of an edit to store, broker and engine.

Five strategies ship with the repository:

``none``
    Subscription flooding — every subscription is forwarded.
``pairwise``
    The classical deterministic baseline: suppress only when a *single*
    candidate covers the newcomer.
``group``
    The paper's probabilistic union covering (RSPC + MCS).  The
    suppression dependency set is the MCS *minimized cover set*, not the
    whole candidate set, so an unrelated candidate's departure does not
    trigger a re-check storm.
``merging``
    The related-work alternative (Crespo et al., Li et al.): when no
    single candidate covers the newcomer, merge it with the cheapest
    candidate into their bounding box, provided the merge's relative
    false volume stays within ``merge_budget``.  Routing state shrinks,
    but the merged box accepts publications nobody asked for — the false
    positives the paper's covering approach avoids.
``hybrid``
    Cover-first, merge the residue: the group check runs first (lossy
    only within its ``delta`` bound, adds no state); only an uncovered
    newcomer is considered for merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.arena import as_candidate_set
from repro.core.merging import cheapest_merge
from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.core.subsumption import SubsumptionChecker
from repro.model.subscriptions import Subscription

__all__ = [
    "ReductionPolicyName",
    "ReductionDecision",
    "ReductionStrategy",
    "NoneStrategy",
    "PairwiseStrategy",
    "GroupStrategy",
    "MergingStrategy",
    "HybridStrategy",
    "DEFAULT_MERGE_BUDGET",
    "STRATEGY_NAMES",
    "register_strategy",
    "make_strategy",
    "policy_value",
    "resolve_policy",
    "strategy_names",
]

#: default cap on the relative false volume (``false_volume / merged
#: size``) a single merge step may introduce
DEFAULT_MERGE_BUDGET = 0.25


class ReductionPolicyName(str, Enum):
    """Subscription-reduction policy of a store/broker/engine."""

    NONE = "none"
    PAIRWISE = "pairwise"
    GROUP = "group"
    MERGING = "merging"
    HYBRID = "hybrid"


@dataclass
class ReductionDecision:
    """Verdict of one reduction decision for one subscription.

    Exactly one of three outcomes holds:

    * **forwarded** — ``forwarded`` is ``True``: the subscription must be
      propagated as-is;
    * **suppressed** — ``forwarded`` is ``False`` and ``merged`` is
      ``None``: the candidates named in ``covered_by`` already cover the
      subscription, nothing is propagated;
    * **replaced by a merge** — ``merged`` is set: the subscription and
      the candidates named in ``replaced`` are jointly represented by the
      ``merged`` bounding box, which is what gets propagated instead.

    Attributes
    ----------
    subscription:
        The subscription the decision is about.
    forwarded:
        Whether the subscription itself must be propagated.
    covered_by:
        Identifiers of the candidates the suppression depends on: the
        single coverer under ``pairwise``, the MCS minimized cover set
        under ``group``/``hybrid``, the merged box's identifier for a
        merge.  Empty when forwarded.
    merged:
        The bounding box to advertise instead (merging strategies only).
    replaced:
        Identifiers of the candidates the merged box absorbs (their
        advertisements become redundant).
    false_volume:
        Measure of the region the merge over-approximates (0 unless a
        merge was performed).
    candidates_considered:
        Size of the candidate set the decision was taken against.
    rspc_iterations:
        Random guesses spent by the probabilistic checker (0 for the
        deterministic strategies).
    result:
        The full group-subsumption result when the probabilistic checker
        ran.
    """

    subscription: Subscription
    forwarded: bool
    covered_by: Tuple[str, ...] = ()
    merged: Optional[Subscription] = None
    replaced: Tuple[str, ...] = ()
    false_volume: float = 0.0
    candidates_considered: int = 0
    rspc_iterations: int = 0
    result: Optional[SubsumptionResult] = None

    @property
    def suppressed(self) -> bool:
        """Whether the subscription was suppressed without a merge."""
        return not self.forwarded and self.merged is None

    @property
    def merge_performed(self) -> bool:
        """Whether the decision replaced advertisements with a merged box."""
        return self.merged is not None


def _empty_set_result() -> SubsumptionResult:
    """The checker's ``k == 0`` verdict, constructed without entering it.

    Field-for-field the object
    :meth:`~repro.core.subsumption.SubsumptionChecker.check` returns for
    an empty candidate set, so batch fast paths that skip the checker
    stay differentially identical to sequential ``decide`` calls.
    """
    return SubsumptionResult(
        answer=Answer.NOT_COVERED,
        method=DecisionMethod.EMPTY_CANDIDATE_SET,
        original_set_size=0,
        reduced_set_size=0,
    )


class ReductionStrategy:
    """Base class/protocol of a pluggable reduction strategy.

    Subclasses implement :meth:`decide` and set three class attributes:

    ``name``
        The :class:`ReductionPolicyName` the strategy implements.
    ``demotes_on_forward``
        Whether a forwarded newcomer demotes existing candidates it
        pair-wise covers (the covering strategies keep their candidate
        sets minimal this way; flooding and pure merging do not).
    ``merges``
        Whether the strategy may emit replaced-by-merged decisions (used
        by stores/brokers to decide whether merge bookkeeping — member
        tracking, false-positive accounting — is needed at all).
    """

    name: ReductionPolicyName
    demotes_on_forward: bool = False
    merges: bool = False

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        """Decide the fate of ``subscription`` against ``candidates``."""
        raise NotImplementedError

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        """Decide many subscriptions against one shared candidate set.

        The candidate bounds are snapshotted once (arena gather or a
        single stack) and shared by every decision; results are in input
        order and identical to sequential :meth:`decide` calls.  Only
        valid when the decisions do not feed back into the candidate set
        (callers that apply forwarded decisions must re-snapshot).
        """
        shared = as_candidate_set(candidates)
        return [self.decide(subscription, shared) for subscription in subscriptions]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class NoneStrategy(ReductionStrategy):
    """Subscription flooding: always forward."""

    name = ReductionPolicyName.NONE

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        return ReductionDecision(
            subscription,
            forwarded=True,
            candidates_considered=len(candidates),
        )

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        # Flooding never inspects the candidates: one length snapshot
        # serves the whole batch.
        considered = len(as_candidate_set(candidates))
        return [
            ReductionDecision(
                subscription,
                forwarded=True,
                candidates_considered=considered,
            )
            for subscription in subscriptions
        ]


class PairwiseStrategy(ReductionStrategy):
    """Classical single-subscription covering."""

    name = ReductionPolicyName.PAIRWISE
    demotes_on_forward = True

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        check = PairwiseCoverageChecker.check(subscription, candidates)
        if check.covered:
            return ReductionDecision(
                subscription,
                forwarded=False,
                covered_by=(check.covering.id,),
                candidates_considered=len(candidates),
            )
        return ReductionDecision(
            subscription,
            forwarded=True,
            candidates_considered=len(candidates),
        )

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        """One broadcast covering test for the whole batch.

        Every subscription of the batch is tested against every candidate
        in a single ``(B, k, m)`` comparison over the shared candidate
        snapshot's stacked bounds; the per-subscription verdict (including
        which candidate is reported as the coverer — the first, in
        candidate order) is identical to sequential :meth:`decide` calls.
        """
        shared = as_candidate_set(candidates)
        if len(shared) == 0:
            # Nothing can cover against an empty snapshot: forwarded
            # verdicts, no per-subscription checker calls.
            return [
                ReductionDecision(s, forwarded=True, candidates_considered=0)
                for s in subscriptions
            ]
        if len(subscriptions) < 2:
            return [self.decide(s, shared) for s in subscriptions]
        m = shared.lows.shape[1]
        if any(s.m != m for s in subscriptions):
            return [self.decide(s, shared) for s in subscriptions]
        sub_lows = np.array([s.lows for s in subscriptions])
        sub_highs = np.array([s.highs for s in subscriptions])
        covering = (
            (shared.lows[np.newaxis, :, :] <= sub_lows[:, np.newaxis, :])
            & (sub_highs[:, np.newaxis, :] <= shared.highs[np.newaxis, :, :])
        ).all(axis=2)
        covered = covering.any(axis=1)
        first = covering.argmax(axis=1)
        considered = len(shared)
        decisions: List[ReductionDecision] = []
        for position, subscription in enumerate(subscriptions):
            if covered[position]:
                decisions.append(
                    ReductionDecision(
                        subscription,
                        forwarded=False,
                        covered_by=(shared[int(first[position])].id,),
                        candidates_considered=considered,
                    )
                )
            else:
                decisions.append(
                    ReductionDecision(
                        subscription,
                        forwarded=True,
                        candidates_considered=considered,
                    )
                )
        return decisions


class GroupStrategy(ReductionStrategy):
    """The paper's probabilistic union covering (RSPC + MCS).

    The suppression dependency set is kept minimal: for a pair-wise fast
    decision it is the single coverer, and for a probabilistic group
    verdict it is the MCS minimized cover set — the candidates that are
    actually essential to the cover — rather than the whole candidate
    set, so the departure of an inessential candidate cannot trigger a
    re-check.
    """

    name = ReductionPolicyName.GROUP
    demotes_on_forward = True

    def __init__(self, checker: Optional[SubsumptionChecker] = None):
        self.checker = checker or SubsumptionChecker()

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        if not hasattr(candidates, "__len__"):
            candidates = list(candidates)  # tolerate iterator inputs
        result = self.checker.check(subscription, candidates)
        if not result.covered:
            return ReductionDecision(
                subscription,
                forwarded=True,
                candidates_considered=len(candidates),
                rspc_iterations=result.iterations_performed,
                result=result,
            )
        return ReductionDecision(
            subscription,
            forwarded=False,
            covered_by=cover_dependencies(result, candidates),
            candidates_considered=len(candidates),
            rspc_iterations=result.iterations_performed,
            result=result,
        )

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        """Batched probabilistic covering over one shared snapshot.

        The candidate set is snapshotted (and its bounds stacked) once;
        :meth:`~repro.core.subsumption.SubsumptionChecker.check_batch`
        answers every subscription against it in input order, so the
        checker's random stream is consumed exactly as sequential
        :meth:`decide` calls would consume it and every verdict (and its
        MCS dependency set) is identical.
        """
        shared = as_candidate_set(candidates)
        if len(shared) == 0:
            # The checker's k == 0 fast path never consumes randomness or
            # touches its cache, so constructing the verdicts here is
            # byte-identical — and skips the whole batch pipeline.
            return [
                ReductionDecision(
                    s,
                    forwarded=True,
                    candidates_considered=0,
                    result=_empty_set_result(),
                )
                for s in subscriptions
            ]
        results = self.checker.check_batch(subscriptions, shared)
        considered = len(shared)
        decisions: List[ReductionDecision] = []
        for subscription, result in zip(subscriptions, results):
            if not result.covered:
                decisions.append(
                    ReductionDecision(
                        subscription,
                        forwarded=True,
                        candidates_considered=considered,
                        rspc_iterations=result.iterations_performed,
                        result=result,
                    )
                )
            else:
                decisions.append(
                    ReductionDecision(
                        subscription,
                        forwarded=False,
                        covered_by=cover_dependencies(result, shared),
                        candidates_considered=considered,
                        rspc_iterations=result.iterations_performed,
                        result=result,
                    )
                )
        return decisions


def cover_dependencies(
    result: SubsumptionResult, candidates: Sequence[Subscription]
) -> Tuple[str, ...]:
    """The minimal dependency set justifying a covered verdict.

    Pair-wise fast decisions depend on the single covering candidate;
    probabilistic verdicts depend on the MCS minimized cover set the RSPC
    run was actually performed against.  Checkers configured without MCS
    fall back to the full candidate set.
    """
    if result.covering_row is not None:
        return (candidates[result.covering_row].id,)
    kept_rows = result.details.get("mcs_kept_rows")
    if kept_rows:
        return tuple(candidates[row].id for row in kept_rows)
    return tuple(candidate.id for candidate in candidates)


class MergingStrategy(ReductionStrategy):
    """Greedy bounding-box merging under a false-volume budget.

    A newcomer covered outright by a single candidate is suppressed (the
    zero-cost degenerate merge).  Otherwise the cheapest merge partner is
    sought: the candidate whose bounding box with the newcomer introduces
    the smallest relative false volume, ties broken toward the smaller
    merged box.  Within ``merge_budget`` the pair is *replaced* by the
    merged box; beyond it the newcomer is forwarded unmerged.
    """

    name = ReductionPolicyName.MERGING
    merges = True

    def __init__(self, merge_budget: float = DEFAULT_MERGE_BUDGET):
        if merge_budget < 0:
            raise ValueError("merge_budget must be non-negative")
        self.merge_budget = merge_budget

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        if not hasattr(candidates, "__len__"):
            candidates = list(candidates)  # tolerate iterator inputs
        check = PairwiseCoverageChecker.check(subscription, candidates)
        if check.covered:
            return ReductionDecision(
                subscription,
                forwarded=False,
                covered_by=(check.covering.id,),
                candidates_considered=len(candidates),
            )
        return self._merge_or_forward(subscription, candidates)

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        shared = as_candidate_set(candidates)
        if len(shared) == 0:
            # No candidate can cover or merge with the newcomers: the
            # sequential path would forward every one of them after a
            # futile pair-wise scan and merge search.
            return [
                ReductionDecision(s, forwarded=True, candidates_considered=0)
                for s in subscriptions
            ]
        return [self.decide(s, shared) for s in subscriptions]

    def _merge_or_forward(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        """Find the cheapest in-budget merge partner, else forward."""
        found = cheapest_merge(subscription, candidates, self.merge_budget)
        if found is None:
            return ReductionDecision(
                subscription,
                forwarded=True,
                candidates_considered=len(candidates),
            )
        partner_index, outcome = found
        partner = candidates[partner_index]
        return ReductionDecision(
            subscription,
            forwarded=False,
            covered_by=(outcome.merged.id,),
            merged=outcome.merged,
            replaced=(partner.id,),
            false_volume=outcome.false_volume,
            candidates_considered=len(candidates),
        )


class HybridStrategy(MergingStrategy):
    """Cover-first, merge the residue.

    The probabilistic group check runs first — it adds no state and loses
    at most a ``delta``-bounded fraction of notifications.  Only a
    subscription the group check could not cover is considered for a
    (state-shrinking but imprecision-adding) merge.
    """

    name = ReductionPolicyName.HYBRID
    demotes_on_forward = True
    merges = True

    def __init__(
        self,
        checker: Optional[SubsumptionChecker] = None,
        merge_budget: float = DEFAULT_MERGE_BUDGET,
    ):
        super().__init__(merge_budget=merge_budget)
        self.checker = checker or SubsumptionChecker()

    def decide(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> ReductionDecision:
        if not hasattr(candidates, "__len__"):
            candidates = list(candidates)  # tolerate iterator inputs
        result = self.checker.check(subscription, candidates)
        if result.covered:
            return ReductionDecision(
                subscription,
                forwarded=False,
                covered_by=cover_dependencies(result, candidates),
                candidates_considered=len(candidates),
                rspc_iterations=result.iterations_performed,
                result=result,
            )
        decision = self._merge_or_forward(subscription, candidates)
        decision.rspc_iterations = result.iterations_performed
        decision.result = result
        return decision

    def decide_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[ReductionDecision]:
        shared = as_candidate_set(candidates)
        if len(shared) == 0:
            # Same construction the sequential path would reach (group
            # check returns the empty-set verdict, merge search finds no
            # partner) without entering either.
            return [
                ReductionDecision(
                    s,
                    forwarded=True,
                    candidates_considered=0,
                    result=_empty_set_result(),
                )
                for s in subscriptions
            ]
        return [self.decide(s, shared) for s in subscriptions]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: name -> factory; factories accept the uniform keyword set
#: ``(checker, merge_budget)`` and ignore what they do not need
_STRATEGY_FACTORIES: Dict[str, Callable[..., ReductionStrategy]] = {}


def register_strategy(
    name: Union[str, ReductionPolicyName],
) -> Callable[[Callable[..., ReductionStrategy]], Callable[..., ReductionStrategy]]:
    """Register a strategy factory under ``name`` (decorator).

    The factory is called as ``factory(checker=..., merge_budget=...)``;
    it may ignore either keyword.  Registering an existing name replaces
    the factory, so tests/projects can override a built-in.
    """
    key = str(getattr(name, "value", name))

    def _decorate(
        factory: Callable[..., ReductionStrategy]
    ) -> Callable[..., ReductionStrategy]:
        _STRATEGY_FACTORIES[key] = factory
        return factory

    return _decorate


@register_strategy(ReductionPolicyName.NONE)
def _make_none(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
    return NoneStrategy()


@register_strategy(ReductionPolicyName.PAIRWISE)
def _make_pairwise(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
    return PairwiseStrategy()


@register_strategy(ReductionPolicyName.GROUP)
def _make_group(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
    return GroupStrategy(checker=checker)


@register_strategy(ReductionPolicyName.MERGING)
def _make_merging(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
    return MergingStrategy(merge_budget=merge_budget)


@register_strategy(ReductionPolicyName.HYBRID)
def _make_hybrid(checker=None, merge_budget=DEFAULT_MERGE_BUDGET):
    return HybridStrategy(checker=checker, merge_budget=merge_budget)


#: the built-in strategy names, in canonical (CLI) order
STRATEGY_NAMES = tuple(_STRATEGY_FACTORIES)


def strategy_names() -> Tuple[str, ...]:
    """Every registered strategy name (built-ins first, then additions)."""
    return tuple(_STRATEGY_FACTORIES)


def policy_value(policy: Union[str, ReductionPolicyName, ReductionStrategy]) -> str:
    """The plain string name of a policy reference."""
    if isinstance(policy, ReductionStrategy):
        policy = policy.name
    value = getattr(policy, "value", None)
    return str(policy) if value is None else str(value)


def resolve_policy(
    policy: Union[str, ReductionPolicyName, ReductionStrategy],
) -> Union[str, ReductionPolicyName]:
    """Validate a policy reference for storage on specs/networks.

    Built-in names come back as :class:`ReductionPolicyName` members
    (their historical representation, so equality against the enum keeps
    working); any other *registered* strategy name comes back as the
    plain string, which is what lets a strategy added through
    :func:`register_strategy` flow through broker networks, scenario
    specs and the CLI by name.  Unregistered names raise ``ValueError``.
    """
    key = policy_value(policy)
    if key not in _STRATEGY_FACTORIES:
        raise ValueError(
            f"unknown reduction strategy {key!r}; expected one of "
            f"{strategy_names()}"
        )
    try:
        return ReductionPolicyName(key)
    except ValueError:
        return key


def make_strategy(
    policy: Union[str, ReductionPolicyName, ReductionStrategy],
    checker: Optional[SubsumptionChecker] = None,
    merge_budget: float = DEFAULT_MERGE_BUDGET,
) -> ReductionStrategy:
    """Instantiate the reduction strategy for ``policy``.

    ``policy`` may be a registered name, a :class:`ReductionPolicyName`,
    or an already constructed :class:`ReductionStrategy` (returned as-is,
    so callers can inject custom instances).
    """
    if isinstance(policy, ReductionStrategy):
        return policy
    key = str(getattr(policy, "value", policy))
    factory = _STRATEGY_FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown reduction strategy {key!r}; expected one of "
            f"{strategy_names()}"
        )
    return factory(checker=checker, merge_budget=merge_budget)
