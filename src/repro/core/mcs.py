"""Minimized Cover Set (Algorithm 3).

MCS shrinks the candidate set ``S`` to a non-reducible subset ``S'`` that
is sufficient to answer the group-cover question for ``s``.  A candidate
``s_i`` is removed when (Proposition 4):

* its conflict-table row has at least one *conflict-free* entry
  (``fc_i >= 1``) — the candidate can never be essential to a cover because
  any witness avoiding the other candidates can be moved into the
  conflict-free slice; or
* its row has at least as many defined entries as there are remaining
  candidates (``t_i >= k``) — the candidate leaves so much of ``s``
  uncovered that a witness can always dodge it.

Removing candidates can create new conflict-free entries, so the two rules
are applied until a fixed point is reached.  The reduction preserves the
answer to the subsumption question and typically shrinks both ``k`` and the
required number of RSPC trials ``d`` dramatically (Figures 6–10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.conflict_table import ConflictTable
from repro.model.subscriptions import Subscription

__all__ = ["MCSResult", "minimized_cover_set"]


@dataclass
class MCSResult:
    """Outcome of the MCS reduction.

    Attributes
    ----------
    kept_rows:
        Indices (into the original candidate list) of the non-reducible set
        ``S'``, in their original order.
    removed_rows:
        Indices of the candidates eliminated by the reduction.
    iterations:
        Number of fixed-point passes executed.
    kept:
        The surviving subscriptions, in original order.
    """

    kept_rows: Tuple[int, ...]
    removed_rows: Tuple[int, ...]
    iterations: int
    kept: Tuple[Subscription, ...]

    @property
    def reduced_size(self) -> int:
        """Size of the non-reducible set ``S'``."""
        return len(self.kept_rows)

    @property
    def removed_count(self) -> int:
        """Number of candidates eliminated."""
        return len(self.removed_rows)

    def reduction_ratio(self, original_size: int) -> float:
        """Fraction of the original set removed by the reduction."""
        if original_size == 0:
            return 0.0
        return self.removed_count / original_size


def minimized_cover_set(table: ConflictTable) -> MCSResult:
    """Run Algorithm 3 on a pre-built conflict table.

    Returns the reduced candidate set together with the bookkeeping used by
    the evaluation (how many candidates were removed and in how many
    passes).  The input table is not modified.
    """
    active = np.arange(table.k, dtype=int)
    removed: List[int] = []
    passes = 0
    t_all = table.row_defined_counts

    while True:
        passes += 1
        if active.size == 0:
            break
        conflict_free = table.conflict_free_counts(active)
        drop = (conflict_free >= 1) | (t_all[active] >= active.size)
        if not drop.any():
            break
        removed.extend(active[drop].tolist())
        active = active[~drop]

    kept_rows = tuple(int(row) for row in active)
    return MCSResult(
        kept_rows=kept_rows,
        removed_rows=tuple(removed),
        iterations=passes,
        kept=tuple(table.candidates[row] for row in kept_rows),
    )
