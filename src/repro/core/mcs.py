"""Minimized Cover Set (Algorithm 3).

MCS shrinks the candidate set ``S`` to a non-reducible subset ``S'`` that
is sufficient to answer the group-cover question for ``s``.  A candidate
``s_i`` is removed when (Proposition 4):

* its conflict-table row has at least one *conflict-free* entry
  (``fc_i >= 1``) — the candidate can never be essential to a cover because
  any witness avoiding the other candidates can be moved into the
  conflict-free slice; or
* its row has at least as many defined entries as there are remaining
  candidates (``t_i >= k``) — the candidate leaves so much of ``s``
  uncovered that a witness can always dodge it.

Removing candidates can create new conflict-free entries, so the two rules
are applied until a fixed point is reached.  The reduction preserves the
answer to the subsumption question and typically shrinks both ``k`` and the
required number of RSPC trials ``d`` dramatically (Figures 6–10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.conflict_table import ConflictTable
from repro.model.subscriptions import Subscription

__all__ = ["MCSResult", "minimized_cover_set"]


@dataclass
class MCSResult:
    """Outcome of the MCS reduction.

    Attributes
    ----------
    kept_rows:
        Indices (into the original candidate list) of the non-reducible set
        ``S'``, in their original order.
    removed_rows:
        Indices of the candidates eliminated by the reduction.
    iterations:
        Number of fixed-point passes executed.
    kept:
        The surviving subscriptions, in original order.
    """

    kept_rows: Tuple[int, ...]
    removed_rows: Tuple[int, ...]
    iterations: int
    kept: Tuple[Subscription, ...]

    @property
    def reduced_size(self) -> int:
        """Size of the non-reducible set ``S'``."""
        return len(self.kept_rows)

    @property
    def removed_count(self) -> int:
        """Number of candidates eliminated."""
        return len(self.removed_rows)

    def reduction_ratio(self, original_size: int) -> float:
        """Fraction of the original set removed by the reduction."""
        if original_size == 0:
            return 0.0
        return self.removed_count / original_size


#: instances within these bounds run the fused scalar fixed point —
#: beneath them, NumPy per-call dispatch costs more than the arithmetic
#: itself (broker workloads sit around ``k`` of 10-40 with ``m`` of 8).
#: The row bound matters most: each pass walks the per-column sorted
#: orders over the active rows, which scales linearly in ``k`` with no
#: vectorisation to amortise it (k = 200 is ~40% slower scalar).
_SMALL_INSTANCE_ROWS = 64
_SMALL_INSTANCE_CELLS = 4096


def minimized_cover_set(table: ConflictTable) -> MCSResult:
    """Run Algorithm 3 on a pre-built conflict table.

    Returns the reduced candidate set together with the bookkeeping used by
    the evaluation (how many candidates were removed and in how many
    passes).  The input table is not modified.
    """
    if (
        0 < table.k <= _SMALL_INSTANCE_ROWS
        and table.k * table.m <= _SMALL_INSTANCE_CELLS
    ):
        removed, kept_rows, passes = _fixed_point_small(table)
    else:
        removed, kept_rows, passes = _fixed_point_vectorised(table)
    return MCSResult(
        kept_rows=kept_rows,
        removed_rows=tuple(removed),
        iterations=passes,
        kept=tuple(table.candidates[row] for row in kept_rows),
    )


def _fixed_point_vectorised(
    table: ConflictTable,
) -> Tuple[List[int], Tuple[int, ...], int]:
    """The matrix fixed point: one ``conflict_free_counts`` call per pass."""
    active = np.arange(table.k, dtype=int)
    removed: List[int] = []
    passes = 0
    t_all = table.row_defined_counts

    while True:
        passes += 1
        if active.size == 0:
            break
        conflict_free = table.conflict_free_counts(active)
        drop = (conflict_free >= 1) | (t_all[active] >= active.size)
        if not drop.any():
            break
        removed.extend(active[drop].tolist())
        active = active[~drop]

    return removed, tuple(int(row) for row in active), passes


def _fixed_point_small(
    table: ConflictTable,
) -> Tuple[List[int], Tuple[int, ...], int]:
    """Fused scalar fixed point for small tables.

    Replays :meth:`ConflictTable.conflict_free_counts` cell for cell —
    same masked bounds, same precomputed thresholds, same first-max tie
    handling — over plain Python lists, where a pass over a 20x8 table
    is a few hundred scalar steps instead of ~15 NumPy dispatches.  The
    drop rule short-circuits on the first conflict-free entry because
    only ``fc_i >= 1`` matters, never the exact count.  Kept/removed
    rows, pass counts and verdicts are bit-identical to the vectorised
    fixed point (enforced by the differential tests).
    """
    high_bounds, low_bounds, thr_low, thr_high = table._ensure_pass_cache()[:4]
    k = table.k
    m = table.m
    columns = range(m)
    neg_inf = float("-inf")
    pos_inf = float("inf")

    # Per column, rows ordered by masked bound: stable descending for
    # HIGH bounds and stable ascending for LOW bounds, so walking the
    # order over the surviving rows yields the extreme and the runner-up
    # with exactly ``argmax``/``argmin`` first-occurrence tie handling.
    hb = high_bounds.tolist()
    lb = low_bounds.tolist()
    high_order = np.argsort(-high_bounds, axis=0, kind="stable").T.tolist()
    low_order = np.argsort(low_bounds, axis=0, kind="stable").T.tolist()

    tl = thr_low.tolist()
    th = thr_high.tolist()
    d_low = table.defined_low.tolist()
    d_high = table.defined_high.tolist()
    t_all = table.row_defined_counts.tolist()

    is_active = [True] * k
    active = list(range(k))
    removed: List[int] = []
    passes = 0

    while True:
        passes += 1
        if not active:
            break
        size = len(active)

        max_high = [neg_inf] * m
        second_high = [neg_inf] * m
        arg_high = [-1] * m
        min_low = [pos_inf] * m
        second_low = [pos_inf] * m
        arg_low = [-1] * m
        for col in columns:
            found = False
            for row in high_order[col]:
                if is_active[row]:
                    if found:
                        second_high[col] = hb[row][col]
                        break
                    arg_high[col] = row
                    max_high[col] = hb[row][col]
                    found = True
            found = False
            for row in low_order[col]:
                if is_active[row]:
                    if found:
                        second_low[col] = lb[row][col]
                        break
                    arg_low[col] = row
                    min_low[col] = lb[row][col]
                    found = True

        # Drop decisions read the pass-start extremes; deactivation only
        # affects the next pass's walk, mirroring the matrix fixed point.
        keep: List[int] = []
        for row in active:
            if t_all[row] >= size:
                removed.append(row)
                is_active[row] = False
                continue
            row_d_low = d_low[row]
            row_d_high = d_high[row]
            row_tl = tl[row]
            row_th = th[row]
            conflict_free = False
            for col in columns:
                if row_d_low[col]:
                    other = (
                        second_high[col] if arg_high[col] == row else max_high[col]
                    )
                    if other <= row_tl[col]:
                        conflict_free = True
                        break
                if row_d_high[col]:
                    other = (
                        second_low[col] if arg_low[col] == row else min_low[col]
                    )
                    if other >= row_th[col]:
                        conflict_free = True
                        break
            if conflict_free:
                removed.append(row)
                is_active[row] = False
            else:
                keep.append(row)
        if len(keep) == size:
            break
        active = keep

    return removed, tuple(active), passes
