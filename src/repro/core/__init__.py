"""The paper's core algorithms.

* :class:`ConflictTable` — Definition 2, the ``k x 2m`` table relating a
  subscription ``s`` to the negated simple predicates of a subscription set.
* :mod:`repro.core.witness` — point/polyhedron witnesses, ``I(s)``,
  ``I(sw)`` and ``rho_w`` (Algorithm 2).
* :mod:`repro.core.error_model` — Eq. 1 (``delta = (1 - rho_w)^d``),
  the required number of RSPC trials ``d`` and Eq. 2 (delivery probability
  along a broker chain).
* :mod:`repro.core.rspc` — Algorithm 1, the Monte Carlo Random Simple
  Predicates Cover.
* :mod:`repro.core.mcs` — Algorithm 3, the Minimized Cover Set reduction.
* :mod:`repro.core.decisions` — Algorithm 4, fast deterministic decisions.
* :class:`PairwiseCoverageChecker` — the classical pair-wise baseline.
* :class:`SubsumptionChecker` — the full pipeline used by applications.
* :class:`SubscriptionStore` — maintains active/covered subscription sets
  under a configurable covering policy.
* :func:`exact_group_cover` — an exact (exponential-time) oracle used for
  ground truth in tests and false-negative accounting.
"""

from repro.core.arena import CandidateSet, SubscriptionArena, as_candidate_set
from repro.core.conflict_table import ConflictTable, EntryRef, EntrySide
from repro.core.decisions import (
    FastDecision,
    FastDecisionKind,
    detect_pairwise_cover,
    detect_polyhedron_witness,
    try_fast_decisions,
)
from repro.core.error_model import (
    chain_delivery_probability,
    error_probability,
    compute_required_iterations,
    required_iterations,
)
from repro.core.exact import exact_group_cover, uncovered_region
from repro.core.mcs import MCSResult, minimized_cover_set
from repro.core.merging import (
    GreedyMerger,
    MergeResult,
    merge_pair,
    perfect_merge_candidates,
)
from repro.core.pairwise import PairwiseCoverageChecker, PairwiseResult
from repro.core.policies import (
    DEFAULT_MERGE_BUDGET,
    ReductionDecision,
    ReductionPolicyName,
    ReductionStrategy,
    STRATEGY_NAMES,
    make_strategy,
    register_strategy,
    strategy_names,
)
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.core.rspc import RSPCOutcome, RSPCResult, run_rspc
from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.core.witness import (
    WitnessEstimate,
    compute_point_witness_probability,
    estimate_smallest_witness,
    find_point_witness,
    find_polyhedron_witness_greedy,
)

__all__ = [
    "Answer",
    "CandidateSet",
    "ConflictTable",
    "CoveringPolicyName",
    "DecisionMethod",
    "EntryRef",
    "EntrySide",
    "FastDecision",
    "FastDecisionKind",
    "GreedyMerger",
    "MCSResult",
    "MergeResult",
    "PairwiseCoverageChecker",
    "PairwiseResult",
    "RSPCOutcome",
    "RSPCResult",
    "DEFAULT_MERGE_BUDGET",
    "ReductionDecision",
    "ReductionPolicyName",
    "ReductionStrategy",
    "STRATEGY_NAMES",
    "make_strategy",
    "register_strategy",
    "strategy_names",
    "SubscriptionArena",
    "SubscriptionStore",
    "SubsumptionChecker",
    "as_candidate_set",
    "SubsumptionResult",
    "WitnessEstimate",
    "chain_delivery_probability",
    "compute_point_witness_probability",
    "compute_required_iterations",
    "detect_pairwise_cover",
    "detect_polyhedron_witness",
    "error_probability",
    "estimate_smallest_witness",
    "exact_group_cover",
    "find_point_witness",
    "find_polyhedron_witness_greedy",
    "merge_pair",
    "minimized_cover_set",
    "perfect_merge_candidates",
    "required_iterations",
    "run_rspc",
    "try_fast_decisions",
    "uncovered_region",
]
