"""Error model of the probabilistic checker.

Two analytical results from the paper are implemented here:

* **Equation 1** (Proposition 1): an erroneous "probably covered" verdict
  happens with probability at most ``delta = (1 - rho_w)^d``.  Inverting the
  bound gives the number of random guesses ``d`` required for a target
  error probability, computable *before* running RSPC.

* **Equation 2** (Proposition 5): when a subscription is erroneously
  withheld, the probability that a matching publication is still found
  somewhere along a chain of ``n`` brokers, each receiving the publication
  with probability ``rho``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.utils.validation import require_probability

__all__ = [
    "error_probability",
    "required_iterations",
    "compute_required_iterations",
    "effective_error",
    "chain_delivery_probability",
]


def error_probability(rho_w: float, iterations: float) -> float:
    """Upper bound ``(1 - rho_w)^d`` on the false-YES probability (Eq. 1).

    ``rho_w`` is the point-witness probability lower bound and
    ``iterations`` the number of independent random guesses.
    """
    require_probability(rho_w, "rho_w")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if rho_w >= 1.0:
        return 0.0 if iterations >= 1 else 1.0
    if rho_w <= 0.0:
        return 1.0
    return float((1.0 - rho_w) ** iterations)


def required_iterations(delta: float, rho_w: float) -> float:
    """Number of guesses ``d`` so that ``(1 - rho_w)^d <= delta`` (Eq. 1).

    Returns ``math.inf`` when ``rho_w`` is 0 (no witness can ever be
    guessed, so no finite number of trials reaches the bound) and ``1.0``
    when ``rho_w`` is 1 (the first guess already decides).  The value is
    returned as a float because the paper's evaluation plots ``log10(d)``
    values as large as ``10^60``, far beyond any practical iteration count.
    """
    require_probability(rho_w, "rho_w")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta!r}")
    if rho_w <= 0.0:
        return math.inf
    if rho_w >= 1.0:
        return 1.0
    # ``log1p`` keeps the computation stable for the astronomically small
    # rho_w values produced by high-dimensional instances (Figure 7 plots
    # log10(d) values beyond 50).
    denominator = math.log1p(-rho_w)
    if denominator == 0.0:
        return math.inf
    d = math.log(delta) / denominator
    return float(math.ceil(d))


def compute_required_iterations(
    delta: float, rho_w: float, max_iterations: Optional[int] = None
) -> int:
    """Practical integer version of :func:`required_iterations`.

    Caps the theoretical ``d`` at ``max_iterations`` when provided (or at
    ``2**31 - 1`` otherwise) so callers can size loops safely.
    """
    cap = float(max_iterations) if max_iterations is not None else float(2**31 - 1)
    d = required_iterations(delta, rho_w)
    return int(min(d, cap))


def effective_error(rho_w: float, iterations_performed: int) -> float:
    """Residual error bound after actually performing some iterations.

    Identical to :func:`error_probability` but tolerant of the degenerate
    ``rho_w = 0`` case, for reporting purposes.
    """
    if rho_w <= 0.0:
        return 1.0
    return error_probability(min(rho_w, 1.0), iterations_performed)


def chain_delivery_probability(
    rho: float,
    delta: float,
    brokers: int,
) -> float:
    """Probability of finding a matching publication along a broker chain.

    Implements Equation 2 of the paper: subscription ``s`` was erroneously
    declared covered at broker ``B_1`` and therefore not forwarded along the
    chain ``B_1 … B_n``.  Each broker independently receives a matching
    publication with probability ``rho``; at each broker the erroneous
    decision is repeated independently with probability ``delta`` (the Eq. 1
    bound, written ``(1 - rho_w)^d`` in the paper).  The sum

    ``sum_{i=1..n} rho * [(1 - rho) * (1 - delta_complement)]^(i-1)``

    where ``delta_complement = (1 - (1 - rho_w)^d)`` is the probability the
    error is *not* repeated, gives the lower bound on the probability that
    the publication is still matched somewhere along the chain.

    Parameters
    ----------
    rho:
        Probability a matching publication is issued at any given broker.
    delta:
        Error probability of a single subsumption decision
        (``(1 - rho_w)^d``).
    brokers:
        Chain length ``n``.
    """
    require_probability(rho, "rho")
    require_probability(delta, "delta")
    if brokers < 1:
        raise ValueError("brokers must be at least 1")
    detection = 1.0 - delta  # probability the erroneous decision is not repeated
    total = 0.0
    factor = (1.0 - rho) * detection
    term = 1.0
    for _ in range(brokers):
        total += rho * term
        term *= factor
    return float(min(total, 1.0))
