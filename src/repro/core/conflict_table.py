"""The conflict table (Definition 2).

Given a new subscription ``s`` and a set ``S = {s_1 … s_k}`` of existing
subscriptions, the conflict table ``T`` is a ``k x 2m`` table whose entry
``T_i^j`` holds the negated simple predicate ``¬s_i^j`` whenever
``s ∧ ¬s_i^j`` is satisfiable, and is *undefined* otherwise.  With the
range representation used throughout the paper there are exactly two simple
predicates per attribute (a lower and an upper bound), so every entry is
identified by ``(row, attribute, side)`` where ``side`` is ``LOW`` for the
negation ``x_j < low_i^j`` and ``HIGH`` for ``x_j > high_i^j``.

Building the table costs ``O(m · k)`` (Definition 2).  The table then
supports everything the rest of the pipeline needs:

* per-row counts ``t_i`` of defined entries (Corollaries 1–3),
* detection of *conflicting* pairs of entries and per-row conflict-free
  counts ``fc_i`` (Definition 5, Proposition 3) for the MCS reduction,
* per-attribute minimum uncovered gaps used by the ``rho_w`` estimator
  (Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.arena import CandidateSet
from repro.model.errors import ValidationError
from repro.model.intervals import Interval
from repro.model.subscriptions import Subscription

__all__ = ["EntrySide", "EntryRef", "ConflictTable"]


class EntrySide(IntEnum):
    """Which simple predicate of an attribute an entry negates."""

    #: the negation ``x_j < low_i^j`` (points of ``s`` below ``s_i``'s range)
    LOW = 0
    #: the negation ``x_j > high_i^j`` (points of ``s`` above ``s_i``'s range)
    HIGH = 1


@dataclass(frozen=True)
class EntryRef:
    """Reference to one defined entry ``T_i^j`` of the conflict table."""

    row: int
    attribute: int
    side: EntrySide

    def __str__(self) -> str:  # pragma: no cover - trivial
        tag = "<low" if self.side is EntrySide.LOW else ">high"
        return f"T[{self.row}][x{self.attribute + 1}{tag}]"


class ConflictTable:
    """The ``k x 2m`` conflict table relating ``s`` to a subscription set.

    Parameters
    ----------
    subscription:
        The new subscription ``s`` being tested for coverage.
    candidates:
        The existing subscriptions ``s_1 … s_k`` (the disjunction ``S``).

    Notes
    -----
    All candidates must share the subscription's schema.  The table is
    immutable once built; the MCS algorithm produces *restrictions* of the
    table to a subset of rows via :meth:`restrict`.
    """

    def __init__(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
        *,
        cand_lows: Optional[np.ndarray] = None,
        cand_highs: Optional[np.ndarray] = None,
    ):
        self.subscription = subscription
        schema = subscription.schema
        if isinstance(candidates, CandidateSet):
            # Arena-backed (or snapshotted) candidates: bounds are already
            # stacked contiguously and the schema was fixed at snapshot
            # time — one identity-first check replaces the per-candidate
            # validation loop.
            self.candidates = candidates.subscriptions
            if candidates.schema is not None and (
                candidates.schema is not schema and candidates.schema != schema
            ):
                raise ValidationError(
                    "conflict table requires all subscriptions to share a schema"
                )
            if cand_lows is None and len(self.candidates):
                cand_lows = candidates.lows
                cand_highs = candidates.highs
        else:
            self.candidates = tuple(candidates)
            for candidate in self.candidates:
                if candidate.schema is not schema and candidate.schema != schema:
                    raise ValidationError(
                        "conflict table requires all subscriptions to share a schema"
                    )
        self.schema = schema
        self.m = subscription.m
        self.k = len(self.candidates)

        s_lows = subscription.lows
        s_highs = subscription.highs
        if cand_lows is None:
            if self.k:
                cand_lows = np.array([c.lows for c in self.candidates])
                cand_highs = np.array([c.highs for c in self.candidates])
            else:
                cand_lows = np.empty((0, self.m), dtype=float)
                cand_highs = np.empty((0, self.m), dtype=float)

        #: per-candidate lower bounds, shape ``(k, m)``
        self.candidate_lows = cand_lows
        #: per-candidate upper bounds, shape ``(k, m)``
        self.candidate_highs = cand_highs

        # An entry is defined when ``s`` sticks out of ``s_i`` on that side:
        # the LOW entry T_i^{2j-1} is defined iff s has points with
        # ``x_j < low_i^j`` and the HIGH entry iff it has points with
        # ``x_j > high_i^j``.
        self.defined_low = cand_lows > s_lows[np.newaxis, :]
        self.defined_high = cand_highs < s_highs[np.newaxis, :]

        #: number of defined entries per row (the paper's ``t_i``)
        self.row_defined_counts = (
            self.defined_low.sum(axis=1) + self.defined_high.sum(axis=1)
        ).astype(int)

        self._vectors = getattr(schema, "vectors", None)
        if self._vectors is not None:
            self._discrete = self._vectors.discrete
        else:
            self._discrete = np.array(
                [domain.is_discrete for domain in self.schema.domains], dtype=bool
            )

        # Pass-invariant matrices for the MCS inner loop and the rho_w
        # estimator, built lazily on first use: tables resolved by the
        # fast deterministic decisions never pay for them.
        self._pass_cache: Optional[Tuple[np.ndarray, ...]] = None
        self._gap_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._col_index: Optional[np.ndarray] = None

    def _ensure_pass_cache(self) -> Tuple[np.ndarray, ...]:
        """Precompute everything of ``conflict_free_counts`` that does not
        depend on the active row subset.

        A LOW entry of row ``i`` (negation ``x < cl[i,j]``) conflicts with
        the largest *other-row* defined HIGH bound ``B`` iff:

        * discrete axis: ``floor(min(cl-1, s_high)) < ceil(max(B+1, s_low))``
          — with ``Hd = floor(min(cl-1, s_high))`` an integer-valued float,
          ``Hd < ceil(x)`` is equivalent to ``Hd < x``, so the condition is
          ``(B > Hd - 1) or (Hd < s_low)``;
        * continuous axis: ``not (min(cl, s_high) > max(B, s_low))`` —
          with ``Hc = min(cl, s_high)`` this is ``(B >= Hc) or (Hc <= s_low)``,
          and for floats ``B >= Hc`` is exactly ``B > nextafter(Hc, -inf)``.

        Folding the ``or`` term in as a ``-inf`` threshold makes the whole
        per-pass LOW test one comparison against a precomputed matrix (the
        ``-inf`` "no other row" sentinel fails every comparison on its
        own).  The HIGH side is symmetric against the smallest other-row
        LOW bound with a ``+inf`` fold.  Cell for cell these thresholds
        reproduce the original branchy expressions exactly.
        """
        cache = self._pass_cache
        if cache is not None:
            return cache
        cl = self.candidate_lows
        ch = self.candidate_highs
        s_low = self.subscription.lows
        s_high = self.subscription.highs
        discrete = self._discrete
        with np.errstate(invalid="ignore"):
            # masked bound matrices: ``±inf`` marks "entry undefined"
            high_bounds = np.where(self.defined_high, ch, -np.inf)
            low_bounds = np.where(self.defined_low, cl, np.inf)

            # Only the variant a schema actually needs is materialised —
            # the unused pair stays ``None`` and the gap cache's matching
            # branch guards keep it untouched.
            all_discrete = bool(discrete.all())
            all_continuous = not all_discrete and not discrete.any()
            hd = hc = ld = gc = None
            if not all_continuous:
                hd = np.floor(np.minimum(cl - 1.0, s_high))
                thr_low_d = np.where(hd < s_low, -np.inf, hd - 1.0)
                ld = np.ceil(np.maximum(ch + 1.0, s_low))
                thr_high_d = np.where(s_high < ld, np.inf, ld + 1.0)
            if not all_discrete:
                hc = np.minimum(cl, s_high)
                thr_low_c = np.where(hc <= s_low, -np.inf, np.nextafter(hc, -np.inf))
                gc = np.maximum(ch, s_low)
                thr_high_c = np.where(s_high <= gc, np.inf, np.nextafter(gc, np.inf))

            if all_discrete:
                thr_low, thr_high = thr_low_d, thr_high_d
            elif all_continuous:
                thr_low, thr_high = thr_low_c, thr_high_c
            else:
                thr_low = np.where(discrete, thr_low_d, thr_low_c)
                thr_high = np.where(discrete, thr_high_d, thr_high_c)
        cache = (high_bounds, low_bounds, thr_low, thr_high, hd, hc, ld, gc)
        self._pass_cache = cache
        return cache

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def is_defined(self, row: int, attribute: int, side: EntrySide) -> bool:
        """Whether entry ``T_row`` for ``attribute``/``side`` is defined."""
        if side is EntrySide.LOW:
            return bool(self.defined_low[row, attribute])
        return bool(self.defined_high[row, attribute])

    def t(self, row: int) -> int:
        """Number of defined entries in ``row`` (the paper's ``t_i``)."""
        return int(self.row_defined_counts[row])

    def entry_bound(self, row: int, attribute: int, side: EntrySide) -> float:
        """The numeric bound appearing in the negated predicate.

        ``LOW`` entries read ``x < bound`` and ``HIGH`` entries
        ``x > bound``.
        """
        if side is EntrySide.LOW:
            return float(self.candidate_lows[row, attribute])
        return float(self.candidate_highs[row, attribute])

    def entry_region(self, row: int, attribute: int, side: EntrySide) -> Interval:
        """Portion of ``s``'s range on ``attribute`` satisfying the entry.

        For a LOW entry this is the slice of ``s`` strictly below the
        candidate's lower bound; for a HIGH entry the slice strictly above
        the candidate's upper bound.  On discrete domains strictness removes
        one tick; on continuous domains the closed approximation is
        returned (the boundary has measure zero).
        """
        if not self.is_defined(row, attribute, side):
            return Interval.empty()
        s_interval = self.subscription.interval(attribute)
        bound = self.entry_bound(row, attribute, side)
        tick = 1.0 if self._discrete[attribute] else 0.0
        if side is EntrySide.LOW:
            return s_interval.intersection(Interval(-math.inf, bound - tick))
        return s_interval.intersection(Interval(bound + tick, math.inf))

    def defined_entries(self, row: int) -> List[EntryRef]:
        """All defined entries in ``row``."""
        entries: List[EntryRef] = []
        for attribute in range(self.m):
            if self.defined_low[row, attribute]:
                entries.append(EntryRef(row, attribute, EntrySide.LOW))
            if self.defined_high[row, attribute]:
                entries.append(EntryRef(row, attribute, EntrySide.HIGH))
        return entries

    def iter_defined_entries(self) -> Iterator[EntryRef]:
        """Iterate over every defined entry of the table."""
        for row in range(self.k):
            yield from self.defined_entries(row)

    # ------------------------------------------------------------------
    # Corollary 1 / Corollary 2 helpers
    # ------------------------------------------------------------------
    def row_all_undefined(self, row: int) -> bool:
        """Corollary 1 premise: every entry of the row is undefined.

        When true, ``s`` is covered by the row's candidate alone.
        """
        return self.t(row) == 0

    def row_all_defined(self, row: int) -> bool:
        """Corollary 2 premise: every entry of the row is defined.

        When true, ``s`` strictly covers the candidate on every attribute.
        """
        return self.t(row) == 2 * self.m

    def covering_rows(self) -> List[int]:
        """Rows whose candidate individually covers ``s`` (Corollary 1)."""
        return [row for row in range(self.k) if self.row_all_undefined(row)]

    def covered_candidate_rows(self) -> List[int]:
        """Rows whose candidate is strictly inside ``s`` (Corollary 2)."""
        return [row for row in range(self.k) if self.row_all_defined(row)]

    # ------------------------------------------------------------------
    # Conflicts (Definition 5)
    # ------------------------------------------------------------------
    def entries_conflict(self, first: EntryRef, second: EntryRef) -> bool:
        """Whether two *defined* entries of different rows conflict.

        Two entries conflict when ``s ∧ entry1 ∧ entry2`` is unsatisfiable.
        With range predicates this can only happen for a LOW and a HIGH
        entry on the same attribute whose slices of ``s`` do not meet.
        """
        if first.row == second.row:
            return False
        if first.attribute != second.attribute:
            return False
        if first.side == second.side:
            return False
        low_entry = first if first.side is EntrySide.LOW else second
        high_entry = second if first.side is EntrySide.LOW else first
        return self._low_high_conflict(
            first.attribute,
            self.entry_bound(low_entry.row, low_entry.attribute, EntrySide.LOW),
            self.entry_bound(high_entry.row, high_entry.attribute, EntrySide.HIGH),
        )

    def _low_high_conflict(
        self, attribute: int, low_bound: float, high_bound: float
    ) -> bool:
        """Unsatisfiability of ``s ∧ (x < low_bound) ∧ (x > high_bound)``."""
        s_low = float(self.subscription.lows[attribute])
        s_high = float(self.subscription.highs[attribute])
        if self._discrete[attribute]:
            lowest = max(high_bound + 1.0, s_low)
            highest = min(low_bound - 1.0, s_high)
            return math.floor(highest) < math.ceil(lowest)
        lowest = max(high_bound, s_low)
        highest = min(low_bound, s_high)
        return not highest > lowest

    def conflict_free_counts(self, rows: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-row count of conflict-free entries (the paper's ``fc_i``).

        A defined entry is *conflict free* when it conflicts with no defined
        entry of any other row (Proposition 3).  ``rows`` restricts the
        computation to a subset of rows (used by MCS after removals); the
        returned array is indexed positionally by that subset.

        A LOW entry (negation ``x < A``) conflicts with a HIGH entry
        (negation ``x > B``) of another row iff ``s`` has no point strictly
        between ``B`` and ``A``.  The condition is monotone in ``B`` (larger
        ``B`` => more likely conflict), so per attribute only the largest
        *other-row* ``B`` matters — and symmetrically only the smallest
        other-row ``A`` for HIGH entries.  With the conflict condition
        folded into the precomputed per-cell thresholds of
        :meth:`_ensure_pass_cache`, each call is a max/second-max
        reduction plus one comparison per side.
        """
        high_bounds, low_bounds, thr_low, thr_high = self._ensure_pass_cache()[:4]
        if rows is not None and len(rows) == self.k:
            rows = None  # the full set needs no gather
        if rows is None:
            n = self.k
            d_low = self.defined_low
            d_high = self.defined_high
            hb = high_bounds
            lb = low_bounds
        else:
            active = np.asarray(rows, dtype=int)
            n = len(active)
            d_low = self.defined_low[active]
            d_high = self.defined_high[active]
            hb = high_bounds[active]
            lb = low_bounds[active]
            thr_low = thr_low[active]
            thr_high = thr_high[active]
        if n == 0:
            return np.zeros(0, dtype=int)

        # Per attribute: the extreme defined HIGH bound (and the runner-
        # up, for excluding an entry's own row) — ``±inf`` marks "no
        # defined entry of that side on this attribute".
        high_arg = hb.argmax(axis=0)
        col_index = self._col_index
        if col_index is None or col_index.size != self.m:
            col_index = self._col_index = np.arange(self.m)
        high_max = hb[high_arg, col_index]
        hb = hb.copy()
        hb[high_arg, col_index] = -np.inf
        high_second = hb.max(axis=0)

        low_arg = lb.argmin(axis=0)
        low_min = lb[low_arg, col_index]
        lb = lb.copy()
        lb[low_arg, col_index] = np.inf
        low_second = lb.min(axis=0)

        rows_index = np.arange(n)[:, np.newaxis]
        other_b = np.where(rows_index == high_arg, high_second, high_max)
        other_a = np.where(rows_index == low_arg, low_second, low_min)

        # ``thr`` cells are NaN only where the matching ``defined`` flag
        # is False, so the mask absorbs the comparison's NaN outcome and
        # ``<=`` is exactly ``~(>)`` on every cell that matters.
        counts = (d_low & (other_b <= thr_low)).sum(axis=1) + (
            d_high & (other_a >= thr_high)
        ).sum(axis=1)
        return counts.astype(int, copy=False)

    def _conflict_free_counts_scalar(
        self, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-attribute reference implementation of ``fc_i`` (Definition 5).

        Kept as the differential oracle for the matrix implementation
        above; both must agree exactly on every instance.
        """
        active = (
            np.arange(self.k, dtype=int)
            if rows is None
            else np.asarray(rows, dtype=int)
        )
        n = len(active)
        counts = np.zeros(n, dtype=int)
        if n == 0:
            return counts

        s_lows = self.subscription.lows
        s_highs = self.subscription.highs

        for attribute in range(self.m):
            low_mask = self.defined_low[active, attribute]
            high_mask = self.defined_high[active, attribute]
            low_positions = np.nonzero(low_mask)[0]
            high_positions = np.nonzero(high_mask)[0]

            low_bounds = self.candidate_lows[active[low_positions], attribute]
            high_bounds = self.candidate_highs[active[high_positions], attribute]

            # A LOW entry (negation ``x < A``) conflicts with a HIGH entry
            # (negation ``x > B``) of another row iff ``s`` has no point
            # strictly between ``B`` and ``A``.  The condition is monotone in
            # ``B`` (larger ``B`` => more likely conflict) so only the largest
            # *other-row* ``B`` matters — and symmetrically only the smallest
            # other-row ``A`` matters for HIGH entries.
            discrete = bool(self._discrete[attribute])
            s_low = float(s_lows[attribute])
            s_high = float(s_highs[attribute])

            if low_positions.size:
                other_max_b = self._exclusive_extreme(
                    high_positions, high_bounds, low_positions, use_max=True
                )
                a = low_bounds
                has_other = np.isfinite(other_max_b)
                if discrete:
                    highest = np.floor(np.minimum(a - 1.0, s_high))
                    lowest = np.ceil(np.maximum(other_max_b + 1.0, s_low))
                    conflict = has_other & (highest < lowest)
                else:
                    highest = np.minimum(a, s_high)
                    lowest = np.maximum(other_max_b, s_low)
                    conflict = has_other & ~(highest > lowest)
                np.add.at(counts, low_positions, (~conflict).astype(int))

            if high_positions.size:
                other_min_a = self._exclusive_extreme(
                    low_positions, low_bounds, high_positions, use_max=False
                )
                b = high_bounds
                has_other = np.isfinite(other_min_a)
                if discrete:
                    highest = np.floor(np.minimum(other_min_a - 1.0, s_high))
                    lowest = np.ceil(np.maximum(b + 1.0, s_low))
                    conflict = has_other & (highest < lowest)
                else:
                    highest = np.minimum(other_min_a, s_high)
                    lowest = np.maximum(b, s_low)
                    conflict = has_other & ~(highest > lowest)
                np.add.at(counts, high_positions, (~conflict).astype(int))

        return counts

    @staticmethod
    def _exclusive_extreme(
        source_positions: np.ndarray,
        source_bounds: np.ndarray,
        target_positions: np.ndarray,
        use_max: bool,
    ) -> np.ndarray:
        """Per-target extreme of the source bounds excluding the same row.

        For each target position, return the max (or min) of the source
        bounds over source entries belonging to *other* rows; ``±inf``
        signals "no other-row source entry exists".
        """
        fill = -math.inf if use_max else math.inf
        result = np.full(len(target_positions), fill, dtype=float)
        if source_positions.size == 0:
            return result
        order = np.argsort(source_bounds)
        if use_max:
            best_pos = source_positions[order[-1]]
            best = source_bounds[order[-1]]
            second = source_bounds[order[-2]] if source_positions.size > 1 else fill
        else:
            best_pos = source_positions[order[0]]
            best = source_bounds[order[0]]
            second = source_bounds[order[1]] if source_positions.size > 1 else fill
        result[:] = best
        same = target_positions == best_pos
        result[same] = second
        return result

    # ------------------------------------------------------------------
    # rho_w support (Algorithm 2)
    # ------------------------------------------------------------------
    def minimum_gap_measures(
        self, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-attribute minimum uncovered slice measure (Algorithm 2).

        For each attribute the estimator considers, over every candidate
        row, the measure of the slice of ``s`` left uncovered below the
        candidate's lower bound and above its upper bound, taking the
        minimum together with the full extent of ``s`` on that attribute.
        The product over attributes approximates ``I(sw)``, the size of the
        smallest polyhedron witness.

        For schemas built from the four built-in domain types the whole
        computation is a handful of array expressions over the table's
        bound matrices (bit-identical to the per-entry domain calls);
        schemas with custom domains take the per-object fallback.
        """
        if self._vectors is not None and self._vectors.vectorisable:
            return self._minimum_gap_measures_vectorised(rows)
        return self._minimum_gap_measures_scalar(rows)

    def _minimum_gap_measures_vectorised(
        self, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Array implementation of Algorithm 2's per-attribute minima.

        Replicates, per cell, exactly what ``entry_region`` +
        ``domain.measure`` + ``domain.gap_measure(1e-12)`` compute for
        the built-in domains: on discrete axes the snapped point count
        ``floor(high) - ceil(low) + 1`` of the uncovered slice, on
        continuous axes its length floored by the domain resolution.
        """
        low_vals, high_vals, initial = self._ensure_gap_cache()
        if rows is not None:
            active = np.asarray(rows, dtype=int)
            low_vals = low_vals[active]
            high_vals = high_vals[active]
        gaps = np.minimum(
            initial,
            np.minimum(
                low_vals.min(axis=0, initial=np.inf),
                high_vals.min(axis=0, initial=np.inf),
            ),
        )
        return gaps

    def _ensure_gap_cache(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell uncovered-slice measures, shared across row subsets.

        The per-cell measures depend only on the table, so Algorithm 2
        restricted to any row subset is a slice + min-reduction over these
        matrices.  ``Hd``/``Hc``/``Ld``/``G`` come from
        :meth:`_ensure_pass_cache` — the same snapped extremes the MCS
        thresholds are derived from.
        """
        cache = self._gap_cache
        if cache is not None:
            return cache
        hd, hc, ld, gc = self._ensure_pass_cache()[4:]
        s_low = self.subscription.lows
        s_high = self.subscription.highs
        discrete = self._discrete
        resolution = self._vectors.resolution

        all_discrete = bool(discrete.all())
        all_continuous = not all_discrete and not discrete.any()

        with np.errstate(invalid="ignore"):
            lo_ceil = np.ceil(s_low)
            hi_floor = np.floor(s_high)

            # LOW entries: the slice of ``s`` strictly below the candidate's
            # lower bound (one tick removed on discrete axes).
            if not all_continuous:
                low_disc = np.maximum(
                    np.maximum(hd - lo_ceil + 1.0, 0.0), 1e-12
                )
            if not all_discrete:
                low_cont = np.maximum(hc - s_low, resolution)
            if all_discrete:
                low_vals = low_disc
            elif all_continuous:
                low_vals = low_cont
            else:
                low_vals = np.where(discrete, low_disc, low_cont)

            # HIGH entries: the slice strictly above the upper bound.
            if not all_continuous:
                high_disc = np.maximum(
                    np.maximum(hi_floor - ld + 1.0, 0.0), 1e-12
                )
            if not all_discrete:
                high_cont = np.maximum(s_high - gc, resolution)
            if all_discrete:
                high_vals = high_disc
            elif all_continuous:
                high_vals = high_cont
            else:
                high_vals = np.where(discrete, high_disc, high_cont)

            # Undefined entries contribute nothing to the minima.
            low_vals = np.where(self.defined_low, low_vals, np.inf)
            high_vals = np.where(self.defined_high, high_vals, np.inf)

            # Initial value: the full extent of ``s`` on each attribute.
            if all_discrete:
                initial = hi_floor - lo_ceil + 1.0
            elif all_continuous:
                initial = np.maximum(s_high - s_low, resolution)
            else:
                initial = np.where(
                    discrete,
                    hi_floor - lo_ceil + 1.0,
                    np.maximum(s_high - s_low, resolution),
                )
        cache = (low_vals, high_vals, initial)
        self._gap_cache = cache
        return cache

    def _minimum_gap_measures_scalar(
        self, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-object reference implementation (and custom-domain fallback)."""
        active = list(range(self.k)) if rows is None else list(rows)
        gaps = np.empty(self.m, dtype=float)
        for attribute in range(self.m):
            domain = self.schema.domain(attribute)
            s_interval = self.subscription.interval(attribute)
            minimum = domain.measure(s_interval)
            for row in active:
                if self.defined_low[row, attribute]:
                    slice_measure = domain.measure(
                        self.entry_region(row, attribute, EntrySide.LOW)
                    )
                    minimum = min(minimum, max(slice_measure, domain.gap_measure(1e-12)))
                if self.defined_high[row, attribute]:
                    slice_measure = domain.measure(
                        self.entry_region(row, attribute, EntrySide.HIGH)
                    )
                    minimum = min(minimum, max(slice_measure, domain.gap_measure(1e-12)))
            gaps[attribute] = minimum
        return gaps

    # ------------------------------------------------------------------
    # Restriction (used by MCS)
    # ------------------------------------------------------------------
    def restrict(self, rows: Sequence[int]) -> "ConflictTable":
        """Return a new conflict table containing only ``rows``.

        The restricted table slices this table's bound matrices instead
        of re-stacking the candidate objects.
        """
        index = np.asarray(rows, dtype=int)
        return ConflictTable(
            self.subscription,
            tuple(self.candidates[row] for row in rows),
            cand_lows=self.candidate_lows[index],
            cand_highs=self.candidate_highs[index],
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def render(self, max_rows: int = 20) -> str:
        """ASCII rendering of the table (mirrors Table 5 of the paper)."""
        names = self.schema.names
        header = ["s_i"]
        for name in names:
            header.append(f"{name}<low")
            header.append(f"{name}>high")
        lines = ["\t".join(header)]
        for row in range(min(self.k, max_rows)):
            cells = [self.candidates[row].id]
            for attribute in range(self.m):
                if self.defined_low[row, attribute]:
                    cells.append(
                        f"{names[attribute]}<{self.candidate_lows[row, attribute]:g}"
                    )
                else:
                    cells.append("undefined")
                if self.defined_high[row, attribute]:
                    cells.append(
                        f"{names[attribute]}>{self.candidate_highs[row, attribute]:g}"
                    )
                else:
                    cells.append("undefined")
            lines.append("\t".join(cells))
        if self.k > max_rows:
            lines.append(f"... ({self.k - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConflictTable(k={self.k}, m={self.m})"
