"""The conflict table (Definition 2).

Given a new subscription ``s`` and a set ``S = {s_1 … s_k}`` of existing
subscriptions, the conflict table ``T`` is a ``k x 2m`` table whose entry
``T_i^j`` holds the negated simple predicate ``¬s_i^j`` whenever
``s ∧ ¬s_i^j`` is satisfiable, and is *undefined* otherwise.  With the
range representation used throughout the paper there are exactly two simple
predicates per attribute (a lower and an upper bound), so every entry is
identified by ``(row, attribute, side)`` where ``side`` is ``LOW`` for the
negation ``x_j < low_i^j`` and ``HIGH`` for ``x_j > high_i^j``.

Building the table costs ``O(m · k)`` (Definition 2).  The table then
supports everything the rest of the pipeline needs:

* per-row counts ``t_i`` of defined entries (Corollaries 1–3),
* detection of *conflicting* pairs of entries and per-row conflict-free
  counts ``fc_i`` (Definition 5, Proposition 3) for the MCS reduction,
* per-attribute minimum uncovered gaps used by the ``rho_w`` estimator
  (Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.errors import ValidationError
from repro.model.intervals import Interval
from repro.model.subscriptions import Subscription

__all__ = ["EntrySide", "EntryRef", "ConflictTable"]


class EntrySide(IntEnum):
    """Which simple predicate of an attribute an entry negates."""

    #: the negation ``x_j < low_i^j`` (points of ``s`` below ``s_i``'s range)
    LOW = 0
    #: the negation ``x_j > high_i^j`` (points of ``s`` above ``s_i``'s range)
    HIGH = 1


@dataclass(frozen=True)
class EntryRef:
    """Reference to one defined entry ``T_i^j`` of the conflict table."""

    row: int
    attribute: int
    side: EntrySide

    def __str__(self) -> str:  # pragma: no cover - trivial
        tag = "<low" if self.side is EntrySide.LOW else ">high"
        return f"T[{self.row}][x{self.attribute + 1}{tag}]"


class ConflictTable:
    """The ``k x 2m`` conflict table relating ``s`` to a subscription set.

    Parameters
    ----------
    subscription:
        The new subscription ``s`` being tested for coverage.
    candidates:
        The existing subscriptions ``s_1 … s_k`` (the disjunction ``S``).

    Notes
    -----
    All candidates must share the subscription's schema.  The table is
    immutable once built; the MCS algorithm produces *restrictions* of the
    table to a subset of rows via :meth:`restrict`.
    """

    def __init__(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ):
        self.subscription = subscription
        self.candidates: Tuple[Subscription, ...] = tuple(candidates)
        for candidate in self.candidates:
            if candidate.schema != subscription.schema:
                raise ValidationError(
                    "conflict table requires all subscriptions to share a schema"
                )
        self.schema = subscription.schema
        self.m = subscription.m
        self.k = len(self.candidates)

        s_lows = subscription.lows
        s_highs = subscription.highs
        if self.k:
            cand_lows = np.vstack([c.lows for c in self.candidates])
            cand_highs = np.vstack([c.highs for c in self.candidates])
        else:
            cand_lows = np.empty((0, self.m), dtype=float)
            cand_highs = np.empty((0, self.m), dtype=float)

        #: per-candidate lower bounds, shape ``(k, m)``
        self.candidate_lows = cand_lows
        #: per-candidate upper bounds, shape ``(k, m)``
        self.candidate_highs = cand_highs

        # An entry is defined when ``s`` sticks out of ``s_i`` on that side:
        # the LOW entry T_i^{2j-1} is defined iff s has points with
        # ``x_j < low_i^j`` and the HIGH entry iff it has points with
        # ``x_j > high_i^j``.
        self.defined_low = cand_lows > s_lows[np.newaxis, :]
        self.defined_high = cand_highs < s_highs[np.newaxis, :]

        #: number of defined entries per row (the paper's ``t_i``)
        self.row_defined_counts = (
            self.defined_low.sum(axis=1) + self.defined_high.sum(axis=1)
        ).astype(int)

        self._discrete = np.array(
            [domain.is_discrete for domain in self.schema.domains], dtype=bool
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def is_defined(self, row: int, attribute: int, side: EntrySide) -> bool:
        """Whether entry ``T_row`` for ``attribute``/``side`` is defined."""
        if side is EntrySide.LOW:
            return bool(self.defined_low[row, attribute])
        return bool(self.defined_high[row, attribute])

    def t(self, row: int) -> int:
        """Number of defined entries in ``row`` (the paper's ``t_i``)."""
        return int(self.row_defined_counts[row])

    def entry_bound(self, row: int, attribute: int, side: EntrySide) -> float:
        """The numeric bound appearing in the negated predicate.

        ``LOW`` entries read ``x < bound`` and ``HIGH`` entries
        ``x > bound``.
        """
        if side is EntrySide.LOW:
            return float(self.candidate_lows[row, attribute])
        return float(self.candidate_highs[row, attribute])

    def entry_region(self, row: int, attribute: int, side: EntrySide) -> Interval:
        """Portion of ``s``'s range on ``attribute`` satisfying the entry.

        For a LOW entry this is the slice of ``s`` strictly below the
        candidate's lower bound; for a HIGH entry the slice strictly above
        the candidate's upper bound.  On discrete domains strictness removes
        one tick; on continuous domains the closed approximation is
        returned (the boundary has measure zero).
        """
        if not self.is_defined(row, attribute, side):
            return Interval.empty()
        s_interval = self.subscription.interval(attribute)
        bound = self.entry_bound(row, attribute, side)
        tick = 1.0 if self._discrete[attribute] else 0.0
        if side is EntrySide.LOW:
            return s_interval.intersection(Interval(-math.inf, bound - tick))
        return s_interval.intersection(Interval(bound + tick, math.inf))

    def defined_entries(self, row: int) -> List[EntryRef]:
        """All defined entries in ``row``."""
        entries: List[EntryRef] = []
        for attribute in range(self.m):
            if self.defined_low[row, attribute]:
                entries.append(EntryRef(row, attribute, EntrySide.LOW))
            if self.defined_high[row, attribute]:
                entries.append(EntryRef(row, attribute, EntrySide.HIGH))
        return entries

    def iter_defined_entries(self) -> Iterator[EntryRef]:
        """Iterate over every defined entry of the table."""
        for row in range(self.k):
            yield from self.defined_entries(row)

    # ------------------------------------------------------------------
    # Corollary 1 / Corollary 2 helpers
    # ------------------------------------------------------------------
    def row_all_undefined(self, row: int) -> bool:
        """Corollary 1 premise: every entry of the row is undefined.

        When true, ``s`` is covered by the row's candidate alone.
        """
        return self.t(row) == 0

    def row_all_defined(self, row: int) -> bool:
        """Corollary 2 premise: every entry of the row is defined.

        When true, ``s`` strictly covers the candidate on every attribute.
        """
        return self.t(row) == 2 * self.m

    def covering_rows(self) -> List[int]:
        """Rows whose candidate individually covers ``s`` (Corollary 1)."""
        return [row for row in range(self.k) if self.row_all_undefined(row)]

    def covered_candidate_rows(self) -> List[int]:
        """Rows whose candidate is strictly inside ``s`` (Corollary 2)."""
        return [row for row in range(self.k) if self.row_all_defined(row)]

    # ------------------------------------------------------------------
    # Conflicts (Definition 5)
    # ------------------------------------------------------------------
    def entries_conflict(self, first: EntryRef, second: EntryRef) -> bool:
        """Whether two *defined* entries of different rows conflict.

        Two entries conflict when ``s ∧ entry1 ∧ entry2`` is unsatisfiable.
        With range predicates this can only happen for a LOW and a HIGH
        entry on the same attribute whose slices of ``s`` do not meet.
        """
        if first.row == second.row:
            return False
        if first.attribute != second.attribute:
            return False
        if first.side == second.side:
            return False
        low_entry = first if first.side is EntrySide.LOW else second
        high_entry = second if first.side is EntrySide.LOW else first
        return self._low_high_conflict(
            first.attribute,
            self.entry_bound(low_entry.row, low_entry.attribute, EntrySide.LOW),
            self.entry_bound(high_entry.row, high_entry.attribute, EntrySide.HIGH),
        )

    def _low_high_conflict(
        self, attribute: int, low_bound: float, high_bound: float
    ) -> bool:
        """Unsatisfiability of ``s ∧ (x < low_bound) ∧ (x > high_bound)``."""
        s_low = float(self.subscription.lows[attribute])
        s_high = float(self.subscription.highs[attribute])
        if self._discrete[attribute]:
            lowest = max(high_bound + 1.0, s_low)
            highest = min(low_bound - 1.0, s_high)
            return math.floor(highest) < math.ceil(lowest)
        lowest = max(high_bound, s_low)
        highest = min(low_bound, s_high)
        return not highest > lowest

    def conflict_free_counts(self, rows: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-row count of conflict-free entries (the paper's ``fc_i``).

        A defined entry is *conflict free* when it conflicts with no defined
        entry of any other row (Proposition 3).  ``rows`` restricts the
        computation to a subset of rows (used by MCS after removals); the
        returned array is indexed positionally by that subset.
        """
        active = np.array(
            list(range(self.k)) if rows is None else list(rows), dtype=int
        )
        n = len(active)
        counts = np.zeros(n, dtype=int)
        if n == 0:
            return counts

        s_lows = self.subscription.lows
        s_highs = self.subscription.highs

        for attribute in range(self.m):
            low_mask = self.defined_low[active, attribute]
            high_mask = self.defined_high[active, attribute]
            low_positions = np.nonzero(low_mask)[0]
            high_positions = np.nonzero(high_mask)[0]

            low_bounds = self.candidate_lows[active[low_positions], attribute]
            high_bounds = self.candidate_highs[active[high_positions], attribute]

            # A LOW entry (negation ``x < A``) conflicts with a HIGH entry
            # (negation ``x > B``) of another row iff ``s`` has no point
            # strictly between ``B`` and ``A``.  The condition is monotone in
            # ``B`` (larger ``B`` => more likely conflict) so only the largest
            # *other-row* ``B`` matters — and symmetrically only the smallest
            # other-row ``A`` matters for HIGH entries.
            discrete = bool(self._discrete[attribute])
            s_low = float(s_lows[attribute])
            s_high = float(s_highs[attribute])

            if low_positions.size:
                other_max_b = self._exclusive_extreme(
                    high_positions, high_bounds, low_positions, use_max=True
                )
                a = low_bounds
                has_other = np.isfinite(other_max_b)
                if discrete:
                    highest = np.floor(np.minimum(a - 1.0, s_high))
                    lowest = np.ceil(np.maximum(other_max_b + 1.0, s_low))
                    conflict = has_other & (highest < lowest)
                else:
                    highest = np.minimum(a, s_high)
                    lowest = np.maximum(other_max_b, s_low)
                    conflict = has_other & ~(highest > lowest)
                np.add.at(counts, low_positions, (~conflict).astype(int))

            if high_positions.size:
                other_min_a = self._exclusive_extreme(
                    low_positions, low_bounds, high_positions, use_max=False
                )
                b = high_bounds
                has_other = np.isfinite(other_min_a)
                if discrete:
                    highest = np.floor(np.minimum(other_min_a - 1.0, s_high))
                    lowest = np.ceil(np.maximum(b + 1.0, s_low))
                    conflict = has_other & (highest < lowest)
                else:
                    highest = np.minimum(other_min_a, s_high)
                    lowest = np.maximum(b, s_low)
                    conflict = has_other & ~(highest > lowest)
                np.add.at(counts, high_positions, (~conflict).astype(int))

        return counts

    @staticmethod
    def _exclusive_extreme(
        source_positions: np.ndarray,
        source_bounds: np.ndarray,
        target_positions: np.ndarray,
        use_max: bool,
    ) -> np.ndarray:
        """Per-target extreme of the source bounds excluding the same row.

        For each target position, return the max (or min) of the source
        bounds over source entries belonging to *other* rows; ``±inf``
        signals "no other-row source entry exists".
        """
        fill = -math.inf if use_max else math.inf
        result = np.full(len(target_positions), fill, dtype=float)
        if source_positions.size == 0:
            return result
        order = np.argsort(source_bounds)
        if use_max:
            best_pos = source_positions[order[-1]]
            best = source_bounds[order[-1]]
            second = source_bounds[order[-2]] if source_positions.size > 1 else fill
        else:
            best_pos = source_positions[order[0]]
            best = source_bounds[order[0]]
            second = source_bounds[order[1]] if source_positions.size > 1 else fill
        result[:] = best
        same = target_positions == best_pos
        result[same] = second
        return result

    # ------------------------------------------------------------------
    # rho_w support (Algorithm 2)
    # ------------------------------------------------------------------
    def minimum_gap_measures(
        self, rows: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Per-attribute minimum uncovered slice measure (Algorithm 2).

        For each attribute the estimator considers, over every candidate
        row, the measure of the slice of ``s`` left uncovered below the
        candidate's lower bound and above its upper bound, taking the
        minimum together with the full extent of ``s`` on that attribute.
        The product over attributes approximates ``I(sw)``, the size of the
        smallest polyhedron witness.
        """
        active = list(range(self.k)) if rows is None else list(rows)
        gaps = np.empty(self.m, dtype=float)
        for attribute in range(self.m):
            domain = self.schema.domain(attribute)
            s_interval = self.subscription.interval(attribute)
            minimum = domain.measure(s_interval)
            for row in active:
                if self.defined_low[row, attribute]:
                    slice_measure = domain.measure(
                        self.entry_region(row, attribute, EntrySide.LOW)
                    )
                    minimum = min(minimum, max(slice_measure, domain.gap_measure(1e-12)))
                if self.defined_high[row, attribute]:
                    slice_measure = domain.measure(
                        self.entry_region(row, attribute, EntrySide.HIGH)
                    )
                    minimum = min(minimum, max(slice_measure, domain.gap_measure(1e-12)))
            gaps[attribute] = minimum
        return gaps

    # ------------------------------------------------------------------
    # Restriction (used by MCS)
    # ------------------------------------------------------------------
    def restrict(self, rows: Sequence[int]) -> "ConflictTable":
        """Return a new conflict table containing only ``rows``."""
        return ConflictTable(
            self.subscription, [self.candidates[row] for row in rows]
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def render(self, max_rows: int = 20) -> str:
        """ASCII rendering of the table (mirrors Table 5 of the paper)."""
        names = self.schema.names
        header = ["s_i"]
        for name in names:
            header.append(f"{name}<low")
            header.append(f"{name}>high")
        lines = ["\t".join(header)]
        for row in range(min(self.k, max_rows)):
            cells = [self.candidates[row].id]
            for attribute in range(self.m):
                if self.defined_low[row, attribute]:
                    cells.append(
                        f"{names[attribute]}<{self.candidate_lows[row, attribute]:g}"
                    )
                else:
                    cells.append("undefined")
                if self.defined_high[row, attribute]:
                    cells.append(
                        f"{names[attribute]}>{self.candidate_highs[row, attribute]:g}"
                    )
                else:
                    cells.append("undefined")
            lines.append("\t".join(cells))
        if self.k > max_rows:
            lines.append(f"... ({self.k - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConflictTable(k={self.k}, m={self.m})"
