"""Subscription merging — the complementary reduction technique.

Besides covering, the related work the paper positions itself against
(Crespo et al., Li et al.) reduces subscription sets by *merging* similar
subscriptions into a single, broader one.  Merging trades precision for
state: the merged subscription (the bounding box of its inputs) may accept
publications that none of the inputs accepts, producing *false positives*
(unrequested publications), whereas covering-based reduction — the paper's
approach — never does.

This module implements the classical greedy pair-merging strategy so the
trade-off can be quantified next to the probabilistic group-subsumption
approach:

* :func:`merge_pair` — bounding-box merge of two subscriptions with the
  exact measure of the over-approximated volume;
* :func:`perfect_merge_candidates` — pairs whose merge adds *no* false
  volume (adjacent boxes differing in one attribute);
* :class:`GreedyMerger` — maintains a subscription set under a configurable
  false-volume budget, merging the cheapest pairs first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exact import uncovered_region
from repro.model.subscriptions import Subscription

__all__ = [
    "MergeResult",
    "merge_pair",
    "cheapest_merge",
    "false_positive_volume",
    "perfect_merge_candidates",
    "GreedyMerger",
]


@dataclass(frozen=True)
class MergeResult:
    """Outcome of merging two subscriptions.

    Attributes
    ----------
    merged:
        The bounding box of the two inputs.
    false_volume:
        Measure of the region accepted by ``merged`` but by neither input
        (the source of false positives).
    relative_overhead:
        ``false_volume`` divided by the measure of the merged box (0 for a
        perfect merge, approaching 1 for a useless one).
    """

    merged: Subscription
    false_volume: float
    relative_overhead: float

    @property
    def is_perfect(self) -> bool:
        """Whether the merge introduces no false positives at all."""
        return self.false_volume == 0.0


def false_positive_volume(
    merged: Subscription, parts: Sequence[Subscription]
) -> float:
    """Measure of ``merged`` minus the union of ``parts`` (exact)."""
    return float(sum(piece.size() for piece in uncovered_region(merged, parts)))


def merge_pair(first: Subscription, second: Subscription) -> MergeResult:
    """Merge two subscriptions into their bounding box.

    The false volume is computed exactly by box subtraction, so the caller
    can decide whether the state saving is worth the imprecision.
    """
    merged = first.union_hull(second)
    false_volume = false_positive_volume(merged, [first, second])
    size = merged.size()
    overhead = false_volume / size if size > 0 else 0.0
    return MergeResult(
        merged=merged, false_volume=false_volume, relative_overhead=overhead
    )


def cheapest_merge(
    target: Subscription,
    candidates: Sequence[Subscription],
    max_relative_overhead: float,
) -> Optional[Tuple[int, MergeResult]]:
    """Cheapest in-budget bounding-box merge of ``target`` with one candidate.

    The single greedy rule every merging consumer shares: the candidate
    whose merge with ``target`` introduces the smallest relative false
    volume wins, ties broken toward the smaller merged box.  Returns the
    winning candidate's index and the merge outcome, or ``None`` when no
    candidate stays within ``max_relative_overhead``.
    """
    best: Optional[Tuple[Tuple[float, float], int, MergeResult]] = None
    for index, candidate in enumerate(candidates):
        outcome = merge_pair(candidate, target)
        if outcome.relative_overhead > max_relative_overhead:
            continue
        key = (outcome.relative_overhead, outcome.merged.size())
        if best is None or key < best[0]:
            best = (key, index, outcome)
    if best is None:
        return None
    return best[1], best[2]


def perfect_merge_candidates(
    subscriptions: Sequence[Subscription],
) -> List[Tuple[int, int]]:
    """Index pairs whose bounding-box merge adds no false volume.

    These are the "at most one mismatching predicate" merges of the modified
    BDD approach referenced in Section 7: boxes identical on all attributes
    except one, where their ranges touch or overlap.
    """
    pairs: List[Tuple[int, int]] = []
    for i, j in itertools.combinations(range(len(subscriptions)), 2):
        if merge_pair(subscriptions[i], subscriptions[j]).is_perfect:
            pairs.append((i, j))
    return pairs


class GreedyMerger:
    """Greedy pair merging under a false-volume budget.

    Parameters
    ----------
    max_relative_overhead:
        Maximum acceptable ``false_volume / merged_size`` for a single
        merge step (0 allows only perfect merges).
    target_size:
        Stop merging once the set is no larger than this (``None`` merges
        as long as acceptable pairs exist).
    """

    def __init__(
        self,
        max_relative_overhead: float = 0.0,
        target_size: Optional[int] = None,
    ):
        if max_relative_overhead < 0:
            raise ValueError("max_relative_overhead must be non-negative")
        self.max_relative_overhead = max_relative_overhead
        self.target_size = target_size
        #: total false volume introduced by the merges performed
        self.total_false_volume = 0.0
        #: number of merge steps performed
        self.merges_performed = 0

    def reduce(self, subscriptions: Iterable[Subscription]) -> List[Subscription]:
        """Merge the set greedily and return the reduced subscription list.

        At every step the pair with the smallest relative overhead is
        merged, provided it stays within the configured budget; ties are
        broken toward pairs producing the smallest merged box.
        """
        working: List[Subscription] = list(subscriptions)
        while len(working) > 1:
            if self.target_size is not None and len(working) <= self.target_size:
                break
            best: Optional[Tuple[float, float, int, int, MergeResult]] = None
            for i, j in itertools.combinations(range(len(working)), 2):
                outcome = merge_pair(working[i], working[j])
                if outcome.relative_overhead > self.max_relative_overhead:
                    continue
                key = (outcome.relative_overhead, outcome.merged.size())
                if best is None or key < (best[0], best[1]):
                    best = (key[0], key[1], i, j, outcome)
            if best is None:
                break
            _, _, i, j, outcome = best
            self.total_false_volume += outcome.false_volume
            self.merges_performed += 1
            # Replace the two inputs by their merge (order preserved).
            merged_list = [
                subscription
                for index, subscription in enumerate(working)
                if index not in (i, j)
            ]
            merged_list.append(outcome.merged)
            working = merged_list
        return working
