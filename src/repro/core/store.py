"""Subscription-set maintenance under a covering policy.

A broker (or a standalone matching server) keeps two subscription pools:

* the **active** set — subscriptions that are *not* covered by the rest and
  therefore must be forwarded to neighbours and matched first;
* the **covered** set — subscriptions declared redundant for forwarding but
  still needed locally for notification delivery (Algorithm 5 falls back to
  them only when an active subscription matched).

:class:`SubscriptionStore` maintains the two pools incrementally under one
of three policies:

``none``
    Every subscription stays active (subscription flooding).
``pairwise``
    The classical baseline — a subscription is demoted only when a single
    existing subscription covers it.
``group``
    The paper's contribution — a subscription is demoted when the
    probabilistic group-subsumption checker declares it covered by the
    *union* of the active set.

The store also records which subscription(s) covered each demoted entry,
which the matching engine's multi-level optimisation and the unsubscription
path (promote covered subscriptions when their coverer leaves) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pairwise import PairwiseCoverageChecker
from repro.core.results import SubsumptionResult
from repro.core.subsumption import SubsumptionChecker
from repro.model.subscriptions import Subscription

__all__ = [
    "CoveringPolicyName",
    "RemovalOutcome",
    "StoreDecision",
    "SubscriptionStore",
]


class CoveringPolicyName(str, Enum):
    """Subscription-reduction policy of a store/broker."""

    NONE = "none"
    PAIRWISE = "pairwise"
    GROUP = "group"


@dataclass
class StoreDecision:
    """What happened when a subscription was added to the store.

    Attributes
    ----------
    subscription:
        The subscription that was added.
    forwarded:
        Whether the subscription joined the active set (and should be
        propagated to neighbours).
    covered_by:
        Identifiers of the subscriptions that cover it (for pair-wise: the
        single coverer; for group: the active set snapshot that covered it).
    demoted:
        Active subscriptions demoted to covered because the newcomer covers
        them pair-wise.
    result:
        The full group-subsumption result when the group policy ran.
    """

    subscription: Subscription
    forwarded: bool
    covered_by: Tuple[str, ...] = ()
    demoted: Tuple[Subscription, ...] = ()
    result: Optional[SubsumptionResult] = None


@dataclass
class RemovalOutcome:
    """What happened when a subscription was removed from the store.

    Attributes
    ----------
    subscription:
        The removed subscription, or ``None`` when the identifier was
        unknown.
    was_active:
        Whether it was removed from the active set (``False``: it was a
        covered subscription, or unknown).
    reinsertions:
        When an active subscription leaves, the covered subscriptions that
        referenced it are re-run through :meth:`SubscriptionStore.add`;
        this records each re-insertion's :class:`StoreDecision` in order,
        which is what lets the matching engine update its cover forest and
        matcher indexes incrementally instead of rebuilding them.
    promoted:
        The re-inserted subscriptions that returned to the active set.
    """

    subscription: Optional[Subscription]
    was_active: bool = False
    reinsertions: Tuple[StoreDecision, ...] = ()
    promoted: Tuple[Subscription, ...] = ()


class SubscriptionStore:
    """Active/covered subscription pools under a covering policy."""

    def __init__(
        self,
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
    ):
        self.policy = CoveringPolicyName(policy)
        self.checker = checker or SubsumptionChecker()
        self._active: List[Subscription] = []
        self._covered: List[Subscription] = []
        #: covered-subscription id -> ids of the subscriptions covering it
        self.cover_links: Dict[str, Tuple[str, ...]] = {}
        #: cumulative statistics for the experiments
        self.stats: Dict[str, float] = {
            "added": 0,
            "forwarded": 0,
            "suppressed": 0,
            "demoted": 0,
            "rspc_iterations": 0,
            "removed": 0,
            "promoted": 0,
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active(self) -> Tuple[Subscription, ...]:
        """Subscriptions currently active (to be forwarded/matched first)."""
        return tuple(self._active)

    @property
    def covered(self) -> Tuple[Subscription, ...]:
        """Subscriptions declared redundant for forwarding."""
        return tuple(self._covered)

    @property
    def active_count(self) -> int:
        """Size of the active set."""
        return len(self._active)

    @property
    def total_count(self) -> int:
        """Total number of stored subscriptions."""
        return len(self._active) + len(self._covered)

    def find(self, subscription_id: str) -> Optional[Subscription]:
        """Look up a stored subscription by identifier."""
        for bucket in (self._active, self._covered):
            for subscription in bucket:
                if subscription.id == subscription_id:
                    return subscription
        return None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> StoreDecision:
        """Insert a subscription and decide whether it must be forwarded."""
        self.stats["added"] += 1

        if self.policy is CoveringPolicyName.NONE:
            self._active.append(subscription)
            self.stats["forwarded"] += 1
            return StoreDecision(subscription, forwarded=True)

        if self.policy is CoveringPolicyName.PAIRWISE:
            check = PairwiseCoverageChecker.check(subscription, self._active)
            if check.covered:
                self._covered.append(subscription)
                self.cover_links[subscription.id] = (check.covering.id,)
                self.stats["suppressed"] += 1
                return StoreDecision(
                    subscription,
                    forwarded=False,
                    covered_by=(check.covering.id,),
                )
            demoted = self._demote_covered_by(subscription)
            self._active.append(subscription)
            self.stats["forwarded"] += 1
            return StoreDecision(subscription, forwarded=True, demoted=demoted)

        # Group policy: probabilistic union coverage against the active set.
        result = self.checker.check(subscription, self._active)
        self.stats["rspc_iterations"] += result.iterations_performed
        if result.covered:
            self._covered.append(subscription)
            coverers = tuple(existing.id for existing in self._active)
            if result.covering_row is not None:
                coverers = (self._active[result.covering_row].id,)
            self.cover_links[subscription.id] = coverers
            self.stats["suppressed"] += 1
            return StoreDecision(
                subscription,
                forwarded=False,
                covered_by=coverers,
                result=result,
            )
        demoted = self._demote_covered_by(subscription)
        self._active.append(subscription)
        self.stats["forwarded"] += 1
        return StoreDecision(
            subscription, forwarded=True, demoted=demoted, result=result
        )

    def _demote_covered_by(
        self, newcomer: Subscription
    ) -> Tuple[Subscription, ...]:
        """Demote active subscriptions pair-wise covered by ``newcomer``."""
        demoted: List[Subscription] = []
        remaining: List[Subscription] = []
        for existing in self._active:
            if newcomer.covers(existing):
                demoted.append(existing)
                self._covered.append(existing)
                self.cover_links[existing.id] = (newcomer.id,)
            else:
                remaining.append(existing)
        self._active = remaining
        self.stats["demoted"] += len(demoted)
        return tuple(demoted)

    def remove(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove a subscription (unsubscription).

        When an *active* subscription leaves, covered subscriptions whose
        cover links referenced it are re-inserted through :meth:`add` so
        that those which are no longer covered get promoted (and would be
        forwarded by the owning broker) — the promotion mechanism described
        in Section 5.  Returns the promoted subscriptions.
        """
        return self.remove_detailed(subscription_id).promoted

    def remove_detailed(self, subscription_id: str) -> RemovalOutcome:
        """Like :meth:`remove`, but reporting the full :class:`RemovalOutcome`.

        The per-orphan re-insertion decisions let callers that mirror the
        store (the matching engine's cover forest and matcher backends)
        apply the removal incrementally instead of rebuilding from the
        pools.
        """
        removed: Optional[Subscription] = None
        for index, subscription in enumerate(self._active):
            if subscription.id == subscription_id:
                del self._active[index]
                removed = subscription
                break
        if removed is None:
            for index, subscription in enumerate(self._covered):
                if subscription.id == subscription_id:
                    del self._covered[index]
                    self.cover_links.pop(subscription_id, None)
                    self.stats["removed"] += 1
                    return RemovalOutcome(subscription, was_active=False)
            return RemovalOutcome(None)

        self.stats["removed"] += 1
        # Promote covered subscriptions that referenced the departed coverer.
        orphans = [
            subscription
            for subscription in self._covered
            if subscription_id in self.cover_links.get(subscription.id, ())
        ]
        reinsertions: List[StoreDecision] = []
        promoted: List[Subscription] = []
        for orphan in orphans:
            self._covered.remove(orphan)
            self.cover_links.pop(orphan.id, None)
            decision = self.add(orphan)
            self.stats["added"] -= 1  # re-insertion is not a new arrival
            reinsertions.append(decision)
            if decision.forwarded:
                promoted.append(orphan)
                self.stats["promoted"] += 1
        return RemovalOutcome(
            removed,
            was_active=True,
            reinsertions=tuple(reinsertions),
            promoted=tuple(promoted),
        )

    def __len__(self) -> int:
        return self.total_count

    def __contains__(self, subscription_id: object) -> bool:
        return isinstance(subscription_id, str) and self.find(subscription_id) is not None
