"""Subscription-set maintenance under a covering policy.

A broker (or a standalone matching server) keeps two subscription pools:

* the **active** set — subscriptions that are *not* covered by the rest and
  therefore must be forwarded to neighbours and matched first;
* the **covered** set — subscriptions declared redundant for forwarding but
  still needed locally for notification delivery (Algorithm 5 falls back to
  them only when an active subscription matched).

:class:`SubscriptionStore` maintains the two pools incrementally under a
pluggable :class:`~repro.core.policies.ReductionStrategy` (``none``,
``pairwise``, ``group``, ``merging``, ``hybrid``, or any strategy
registered with :func:`~repro.core.policies.register_strategy`).  All
policy branching lives in :mod:`repro.core.policies`; the store only
*applies* decisions: forwarded subscriptions join the active pool,
suppressed ones the covered pool, and replaced-by-merged decisions swap
the absorbed active subscriptions for the merged bounding box (the
absorbed originals stay in the covered pool so notification delivery
remains exact).

The store also records which subscription(s) covered each demoted entry,
which the matching engine's multi-level optimisation and the unsubscription
path (promote covered subscriptions when their coverer leaves) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.arena import CandidateSet, SubscriptionArena
from repro.core.policies import (
    DEFAULT_MERGE_BUDGET,
    ReductionDecision,
    ReductionPolicyName,
    ReductionStrategy,
    make_strategy,
)
from repro.core.results import SubsumptionResult
from repro.core.subsumption import SubsumptionChecker
from repro.model.errors import ValidationError
from repro.model.subscriptions import Subscription

__all__ = [
    "CoveringPolicyName",
    "RemovalOutcome",
    "StoreDecision",
    "SubscriptionStore",
]

#: historical name of the policy enum, kept as the public alias — the
#: reduction-strategy layer owns the definition now
CoveringPolicyName = ReductionPolicyName


@dataclass
class StoreDecision:
    """What happened when a subscription was added to the store.

    Attributes
    ----------
    subscription:
        The subscription that was added.
    forwarded:
        Whether the subscription joined the active set (and should be
        propagated to neighbours).
    covered_by:
        Identifiers of the subscriptions that cover it (for pair-wise: the
        single coverer; for group: the MCS minimized cover set; for a
        merge: the merged box's identifier).
    demoted:
        Active subscriptions demoted to covered because the newcomer covers
        them pair-wise.
    result:
        The full group-subsumption result when the probabilistic checker
        ran.
    merged:
        The synthetic bounding-box subscription that joined the active set
        in the newcomer's place (merging strategies only).
    replaced:
        Active subscriptions absorbed by the merge (they moved to the
        covered pool, covered by ``merged``).
    false_volume:
        Measure of the over-approximated region the merge introduced.
    """

    subscription: Subscription
    forwarded: bool
    covered_by: Tuple[str, ...] = ()
    demoted: Tuple[Subscription, ...] = ()
    result: Optional[SubsumptionResult] = None
    merged: Optional[Subscription] = None
    replaced: Tuple[Subscription, ...] = ()
    false_volume: float = 0.0


@dataclass
class RemovalOutcome:
    """What happened when a subscription was removed from the store.

    Attributes
    ----------
    subscription:
        The removed subscription, or ``None`` when the identifier was
        unknown.
    was_active:
        Whether it was removed from the active set (``False``: it was a
        covered subscription, or unknown).
    reinsertions:
        When an active subscription leaves, the covered subscriptions that
        referenced it are re-run through :meth:`SubscriptionStore.add`;
        this records each re-insertion's :class:`StoreDecision` in order,
        which is what lets the matching engine update its cover forest and
        matcher indexes incrementally instead of rebuilding them.
    promoted:
        The re-inserted subscriptions that returned to the active set.
    retracted:
        Synthetic merged bounding boxes dropped because the departing
        subscription was their last remaining member (merging strategies
        only) — mirrored out of the matcher indexes by the engine.
    """

    subscription: Optional[Subscription]
    was_active: bool = False
    reinsertions: Tuple[StoreDecision, ...] = ()
    promoted: Tuple[Subscription, ...] = ()
    retracted: Tuple[Subscription, ...] = ()


class SubscriptionStore:
    """Active/covered subscription pools under a reduction strategy.

    Parameters
    ----------
    policy:
        Reduction-strategy name (or an already constructed
        :class:`~repro.core.policies.ReductionStrategy` instance).
    checker:
        Group-subsumption checker used by the probabilistic strategies.
    merge_budget:
        False-volume budget of the merging strategies (ignored by the
        covering-only ones).
    """

    def __init__(
        self,
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
        merge_budget: float = DEFAULT_MERGE_BUDGET,
    ):
        self._checker = checker or SubsumptionChecker()
        self.strategy: ReductionStrategy = make_strategy(
            policy, checker=self._checker, merge_budget=merge_budget
        )
        self.policy = self.strategy.name
        self._active: List[Subscription] = []
        self._covered: List[Subscription] = []
        #: contiguous bounds of the *active* pool — the candidate set of
        #: every reduction decision — maintained incrementally
        self.arena = SubscriptionArena()
        #: whether the arena mirrors the active pool (it opts out when a
        #: store mixes attribute counts, which only flooding allows)
        self._arena_ok = True
        #: cached snapshot of the active candidate set (a plain tuple in
        #: the mixed-schema degraded mode); dropped on every active-pool
        #: mutation so checker verdict caches cannot go stale
        self._selection: Optional[Sequence[Subscription]] = None
        #: identifiers of the synthetic merged bounding boxes currently
        #: stored (merging strategies only) — retracted once orphaned
        self._merged_ids: set = set()
        #: covered-subscription id -> ids of the subscriptions covering it
        self.cover_links: Dict[str, Tuple[str, ...]] = {}
        #: cumulative statistics for the experiments
        self.stats: Dict[str, float] = {
            "added": 0,
            "forwarded": 0,
            "suppressed": 0,
            "demoted": 0,
            "rspc_iterations": 0,
            "removed": 0,
            "promoted": 0,
            "merges": 0,
            "false_volume": 0.0,
        }

    @property
    def checker(self) -> SubsumptionChecker:
        """The group-subsumption checker backing the reduction strategy."""
        return self._checker

    @checker.setter
    def checker(self, value: SubsumptionChecker) -> None:
        # Keep the strategy in sync, so swapping the store's checker swaps
        # the one actually consulted.
        self._checker = value
        if hasattr(self.strategy, "checker"):
            self.strategy.checker = value

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active(self) -> Tuple[Subscription, ...]:
        """Subscriptions currently active (to be forwarded/matched first)."""
        return tuple(self._active)

    @property
    def covered(self) -> Tuple[Subscription, ...]:
        """Subscriptions declared redundant for forwarding."""
        return tuple(self._covered)

    @property
    def active_count(self) -> int:
        """Size of the active set."""
        return len(self._active)

    @property
    def total_count(self) -> int:
        """Total number of stored subscriptions."""
        return len(self._active) + len(self._covered)

    @property
    def propagated_count(self) -> int:
        """Size of the subscription set a broker would propagate upstream.

        For the covering strategies this is the historical measure of the
        comparison experiment — the cumulative count of subscriptions not
        declared covered on arrival.  Merging strategies *shrink* their
        advertised set over time, so for them the current active-set size
        (the merged advertisements) is the honest state measure.
        """
        if self.strategy.merges:
            return self.active_count
        return int(self.stats["forwarded"])

    def active_candidates(self) -> Sequence[Subscription]:
        """Snapshot of the active pool as a contiguous candidate set.

        Rebuilt lazily after an active-pool mutation (a single vectorised
        arena row gather); between mutations every reduction decision —
        including the re-insertion storms of :meth:`remove_detailed` —
        shares the same snapshot, and with it the checker's cached
        deterministic verdicts.

        A store holding subscriptions that cannot share a snapshot
        (mixed schemas — possible only under flooding, which never
        inspects bounds) degrades to a plain tuple, exactly the shape
        the strategies historically received.
        """
        if self._selection is None:
            if self._arena_ok:
                try:
                    self._selection = self.arena.select(self._active)
                except ValidationError:
                    self._arena_ok = False
            if not self._arena_ok:
                self._selection = tuple(self._active)
        return self._selection

    # ------------------------------------------------------------------
    # Arena bookkeeping
    # ------------------------------------------------------------------
    def _activate(self, subscription: Subscription) -> None:
        """Record an active-pool insertion in the arena."""
        self._selection = None
        if not self._arena_ok:
            return
        try:
            self.arena.add(subscription)
        except ValidationError:
            # Mixed attribute counts (possible only under flooding, which
            # never inspects bounds) — fall back to plain snapshots.
            self._arena_ok = False

    def _deactivate(self, subscription_id: str) -> None:
        """Record an active-pool removal in the arena."""
        self._selection = None
        if self._arena_ok:
            self.arena.discard(subscription_id)

    def find(self, subscription_id: str) -> Optional[Subscription]:
        """Look up a stored subscription by identifier."""
        for bucket in (self._active, self._covered):
            for subscription in bucket:
                if subscription.id == subscription_id:
                    return subscription
        return None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> StoreDecision:
        """Insert a subscription and decide whether it must be forwarded.

        The verdict comes from the store's reduction strategy; this method
        only applies it to the pools and the cover links.
        """
        self.stats["added"] += 1
        decision = self.strategy.decide(subscription, self.active_candidates())
        self.stats["rspc_iterations"] += decision.rspc_iterations

        if decision.merged is not None:
            return self._apply_merge(decision)

        if decision.forwarded:
            demoted = (
                self._demote_covered_by(subscription)
                if self.strategy.demotes_on_forward
                else ()
            )
            self._active.append(subscription)
            self._activate(subscription)
            self.stats["forwarded"] += 1
            return StoreDecision(
                subscription,
                forwarded=True,
                demoted=demoted,
                result=decision.result,
            )

        self._covered.append(subscription)
        self.cover_links[subscription.id] = decision.covered_by
        self.stats["suppressed"] += 1
        return StoreDecision(
            subscription,
            forwarded=False,
            covered_by=decision.covered_by,
            result=decision.result,
        )

    def add_batch(
        self, subscriptions: Iterable[Subscription]
    ) -> List[StoreDecision]:
        """Insert many subscriptions in order, sharing candidate snapshots.

        Behaviourally identical to calling :meth:`add` in a loop: runs of
        suppressed insertions (which leave the active pool untouched)
        reuse one arena snapshot and the checker's cached deterministic
        verdicts; a forwarded/merged insertion re-snapshots.
        """
        return [self.add(subscription) for subscription in subscriptions]

    def _apply_merge(self, decision: ReductionDecision) -> StoreDecision:
        """Swap the absorbed active subscriptions for the merged box.

        The absorbed originals (and the newcomer) move to the covered pool
        — the merged box pair-wise covers each of them, so notification
        delivery stays exact — while only the merged bounding box remains
        active (and would be propagated by an owning broker).
        """
        subscription = decision.subscription
        merged = decision.merged
        replaced_ids = set(decision.replaced)
        replaced: List[Subscription] = []
        remaining: List[Subscription] = []
        for existing in self._active:
            if existing.id in replaced_ids:
                replaced.append(existing)
                self._covered.append(existing)
                self.cover_links[existing.id] = (merged.id,)
                self._deactivate(existing.id)
            else:
                remaining.append(existing)
        self._active = remaining
        self._covered.append(subscription)
        self.cover_links[subscription.id] = (merged.id,)
        self._active.append(merged)
        self._activate(merged)
        self._merged_ids.add(merged.id)
        self.stats["suppressed"] += 1
        self.stats["merges"] += 1
        self.stats["false_volume"] += decision.false_volume
        return StoreDecision(
            subscription,
            forwarded=False,
            covered_by=(merged.id,),
            result=decision.result,
            merged=merged,
            replaced=tuple(replaced),
            false_volume=decision.false_volume,
        )

    def _demote_covered_by(
        self, newcomer: Subscription
    ) -> Tuple[Subscription, ...]:
        """Demote active subscriptions pair-wise covered by ``newcomer``.

        One vectorised containment test over the active snapshot replaces
        the per-subscription ``covers`` scan.
        """
        selection = self.active_candidates()
        if not len(selection):
            return ()
        if isinstance(selection, CandidateSet):
            covered_mask = selection.covered_rows_mask(newcomer)
            if not covered_mask.any():
                return ()
        else:  # degraded (mixed-schema) mode: the historical scalar scan
            covered_mask = [newcomer.covers(existing) for existing in self._active]
            if not any(covered_mask):
                return ()
        demoted: List[Subscription] = []
        remaining: List[Subscription] = []
        for index, existing in enumerate(self._active):
            if covered_mask[index]:
                demoted.append(existing)
                self._covered.append(existing)
                self.cover_links[existing.id] = (newcomer.id,)
                self._deactivate(existing.id)
            else:
                remaining.append(existing)
        self._active = remaining
        self.stats["demoted"] += len(demoted)
        return tuple(demoted)

    def remove(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove a subscription (unsubscription).

        When an *active* subscription leaves, covered subscriptions whose
        cover links referenced it are re-inserted through :meth:`add` so
        that those which are no longer covered get promoted (and would be
        forwarded by the owning broker) — the promotion mechanism described
        in Section 5.  Returns the promoted subscriptions.
        """
        return self.remove_detailed(subscription_id).promoted

    def remove_detailed(self, subscription_id: str) -> RemovalOutcome:
        """Like :meth:`remove`, but reporting the full :class:`RemovalOutcome`.

        The per-orphan re-insertion decisions let callers that mirror the
        store (the matching engine's cover forest and matcher backends)
        apply the removal incrementally instead of rebuilding from the
        pools.
        """
        removed: Optional[Subscription] = None
        for index, subscription in enumerate(self._active):
            if subscription.id == subscription_id:
                del self._active[index]
                self._deactivate(subscription_id)
                removed = subscription
                break
        if removed is None:
            for index, subscription in enumerate(self._covered):
                if subscription.id == subscription_id:
                    del self._covered[index]
                    links = self.cover_links.pop(subscription_id, ())
                    if self.strategy.merges and links:
                        self._reroute_dangling_links(subscription_id, links)
                    self.stats["removed"] += 1
                    return RemovalOutcome(
                        subscription,
                        was_active=False,
                        retracted=self._retract_orphaned_merges(links),
                    )
            return RemovalOutcome(None)

        self.stats["removed"] += 1
        # Promote covered subscriptions that referenced the departed coverer.
        orphans = [
            subscription
            for subscription in self._covered
            if subscription_id in self.cover_links.get(subscription.id, ())
        ]
        reinsertions: List[StoreDecision] = []
        promoted: List[Subscription] = []
        for orphan in orphans:
            self._covered.remove(orphan)
            self.cover_links.pop(orphan.id, None)
            decision = self.add(orphan)
            self.stats["added"] -= 1  # re-insertion is not a new arrival
            reinsertions.append(decision)
            if decision.forwarded:
                promoted.append(orphan)
                self.stats["promoted"] += 1
        return RemovalOutcome(
            removed,
            was_active=True,
            reinsertions=tuple(reinsertions),
            promoted=tuple(promoted),
        )

    def _reroute_dangling_links(
        self, departed_id: str, replacements: Sequence[str]
    ) -> None:
        """Substitute a departed coverer with its own coverers.

        Under the merging strategies a covered subscription can cover
        others (it may have been an active coverer before being absorbed
        into a merged box).  When it unsubscribes, dependents that named
        it are re-pointed at *its* coverers — transitively sound, since
        each coverer contains the departed subscription — so the merged
        box cannot be retracted while it still represents them.
        """
        for sid, links in self.cover_links.items():
            if departed_id not in links:
                continue
            self.cover_links[sid] = tuple(
                dict.fromkeys(
                    replacement
                    for link in links
                    for replacement in (
                        replacements if link == departed_id else (link,)
                    )
                )
            )

    def _retract_orphaned_merges(
        self, coverer_ids: Sequence[str]
    ) -> Tuple[Subscription, ...]:
        """Drop synthetic merged boxes whose last member just departed.

        A merged bounding box only exists to represent its members; once
        no covered subscription links to it any more it is retracted (the
        broker layer does the same per link).  A retracted box that was
        itself absorbed into a bigger merge may orphan that one in turn,
        so the check cascades.
        """
        if not self._merged_ids:
            return ()
        retracted: List[Subscription] = []
        pending = [cid for cid in coverer_ids if cid in self._merged_ids]
        while pending:
            merged_id = pending.pop()
            if merged_id not in self._merged_ids:
                continue
            if any(
                merged_id in links for links in self.cover_links.values()
            ):
                continue  # still represents someone
            for pool in (self._active, self._covered):
                for index, subscription in enumerate(pool):
                    if subscription.id == merged_id:
                        del pool[index]
                        if pool is self._active:
                            self._deactivate(merged_id)
                        self._merged_ids.discard(merged_id)
                        retracted.append(subscription)
                        links = self.cover_links.pop(merged_id, ())
                        pending.extend(
                            cid for cid in links if cid in self._merged_ids
                        )
                        break
                else:
                    continue
                break
        return tuple(retracted)

    def __len__(self) -> int:
        return self.total_count

    def __contains__(self, subscription_id: object) -> bool:
        return isinstance(subscription_id, str) and self.find(subscription_id) is not None
