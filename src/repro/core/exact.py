"""Exact (deterministic) group-cover oracle.

The general subsumption problem is co-NP complete, but for the moderate
instance sizes used in tests and for ground-truth accounting of false
decisions (Figure 12) an exact answer is affordable.  The oracle subtracts
every candidate hyper-rectangle from ``s`` by box decomposition: the
region of ``s`` not covered by ``S`` is maintained as a list of disjoint
boxes; ``s`` is covered exactly when that list becomes empty.

The decomposition produces at most ``2m`` new boxes per subtraction, so the
worst case is exponential in ``k`` — this module is an *oracle for
validation*, not a competitor to RSPC (which is the whole point of the
paper).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.subscriptions import Subscription

__all__ = ["exact_group_cover", "uncovered_region", "exact_witness_point"]

_Box = Tuple[np.ndarray, np.ndarray]


def _tick(schema, attribute: int) -> float:
    """Discretisation step of an attribute (1 for discrete, 0 otherwise)."""
    return 1.0 if schema.domain(attribute).is_discrete else 0.0


def _box_is_empty(schema, lows: np.ndarray, highs: np.ndarray) -> bool:
    """Whether a candidate box contains no representable point."""
    for attribute in range(schema.m):
        low = lows[attribute]
        high = highs[attribute]
        if low > high:
            return True
        if schema.domain(attribute).is_discrete and math.floor(high) < math.ceil(low):
            return True
    return False


def _subtract(
    schema,
    box: _Box,
    cand_lows: np.ndarray,
    cand_highs: np.ndarray,
) -> List[_Box]:
    """Subtract a candidate box from ``box``, returning disjoint remainders."""
    lows, highs = box
    # Disjoint on some attribute -> nothing to subtract.
    if np.any(cand_lows > highs) or np.any(cand_highs < lows):
        return [box]

    remainders: List[_Box] = []
    current_lows = lows.copy()
    current_highs = highs.copy()
    for attribute in range(schema.m):
        tick = _tick(schema, attribute)
        # Part of the current box strictly below the candidate.
        if cand_lows[attribute] > current_lows[attribute]:
            below_lows = current_lows.copy()
            below_highs = current_highs.copy()
            below_highs[attribute] = cand_lows[attribute] - tick
            if tick == 0.0:
                below_highs[attribute] = math.nextafter(
                    cand_lows[attribute], -math.inf
                )
            if not _box_is_empty(schema, below_lows, below_highs):
                remainders.append((below_lows, below_highs))
        # Part of the current box strictly above the candidate.
        if cand_highs[attribute] < current_highs[attribute]:
            above_lows = current_lows.copy()
            above_highs = current_highs.copy()
            above_lows[attribute] = cand_highs[attribute] + tick
            if tick == 0.0:
                above_lows[attribute] = math.nextafter(
                    cand_highs[attribute], math.inf
                )
            if not _box_is_empty(schema, above_lows, above_highs):
                remainders.append((above_lows, above_highs))
        # Narrow the current box to the candidate's extent on this attribute
        # and continue carving the next attribute.
        current_lows[attribute] = max(current_lows[attribute], cand_lows[attribute])
        current_highs[attribute] = min(current_highs[attribute], cand_highs[attribute])
    return remainders


def uncovered_region(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    max_boxes: int = 200_000,
) -> List[Subscription]:
    """Return a disjoint box decomposition of ``s \\ (s_1 ∪ … ∪ s_k)``.

    Raises :class:`RuntimeError` when the decomposition exceeds
    ``max_boxes`` boxes (a safety valve for adversarial instances).
    """
    schema = subscription.schema
    boxes: List[_Box] = [(subscription.lows.copy(), subscription.highs.copy())]
    for candidate in candidates:
        if not boxes:
            break
        next_boxes: List[_Box] = []
        for box in boxes:
            next_boxes.extend(
                _subtract(schema, box, candidate.lows, candidate.highs)
            )
            if len(next_boxes) > max_boxes:
                raise RuntimeError(
                    "uncovered_region exceeded the box budget "
                    f"({max_boxes}); the instance is too large for the exact oracle"
                )
        boxes = next_boxes
    result = []
    for index, (lows, highs) in enumerate(boxes):
        snapped_lows = lows.copy()
        snapped_highs = highs.copy()
        for attribute in range(schema.m):
            domain = schema.domain(attribute)
            if domain.is_discrete:
                snapped_lows[attribute] = math.ceil(snapped_lows[attribute])
                snapped_highs[attribute] = math.floor(snapped_highs[attribute])
        result.append(
            Subscription(
                schema,
                snapped_lows,
                snapped_highs,
                subscription_id=f"{subscription.id}#uncovered{index}",
            )
        )
    return result


def exact_group_cover(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    max_boxes: int = 200_000,
) -> bool:
    """Exact answer to ``s ⊑ (s_1 ∨ … ∨ s_k)`` by box subtraction."""
    return not uncovered_region(subscription, candidates, max_boxes=max_boxes)


def exact_witness_point(
    subscription: Subscription,
    candidates: Sequence[Subscription],
    max_boxes: int = 200_000,
) -> Optional[np.ndarray]:
    """A concrete point witness, or ``None`` when ``s`` is covered."""
    remaining = uncovered_region(subscription, candidates, max_boxes=max_boxes)
    if not remaining:
        return None
    box = remaining[0]
    return box.lows.copy()
