"""The full probabilistic subsumption pipeline.

:class:`SubsumptionChecker` wires the paper's building blocks together in
the order of Algorithm 4:

1. build the conflict table (``O(m·k)``);
2. fast deterministic decisions — pair-wise cover (Corollary 1) and the
   sorted-row polyhedron-witness condition (Corollary 3);
3. the MCS reduction (Algorithm 3); an empty reduced set is a definite NO;
4. the ``rho_w`` estimate (Algorithm 2) and the trial budget ``d`` for the
   requested error probability ``delta`` (Eq. 1);
5. RSPC (Algorithm 1) on the reduced set — a definite NO when a point
   witness is found, otherwise a probabilistic YES.

Every stage can be toggled so the experiments can quantify its individual
contribution (the ±MCS curves of Figures 7 and 9, the fast-decision
ablation of the micro-benchmarks).

Candidates may be handed over as a plain sequence of subscriptions (the
historical object pipeline) or as a
:class:`~repro.core.arena.CandidateSet` snapshot, in which case the
conflict table is built zero-copy from the snapshot's contiguous bound
matrices and the verdict becomes cacheable: deterministic verdicts
(pair-wise cover, polyhedron witness, empty MCS — the stages that consume
no randomness) are memoised against the snapshot's fingerprint, so
re-deciding an identical instance (the unsubscription re-check storms of
the broker layer) costs a dictionary lookup.  Any add/remove produces a
new snapshot with a fresh fingerprint, which is what invalidates the
cache.  Probabilistic verdicts are only cached when
``cache_probabilistic`` is set, because serving them from cache skips
RSPC's random draws and therefore shifts the seeded guess stream of
later checks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.arena import CandidateSet, as_candidate_set
from repro.core.conflict_table import ConflictTable
from repro.core.decisions import (
    detect_pairwise_cover,
    detect_polyhedron_witness,
)
from repro.core.error_model import required_iterations
from repro.core.mcs import MCSResult, minimized_cover_set
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.core.rspc import RSPCOutcome, run_rspc
from repro.core.witness import estimate_smallest_witness
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_probability

__all__ = ["SubsumptionChecker", "is_deterministic_result"]

#: verdict methods produced without consuming the checker's random stream
#: — serving them from cache cannot perturb later seeded draws
_DETERMINISTIC_METHODS = frozenset(
    {
        DecisionMethod.EMPTY_CANDIDATE_SET,
        DecisionMethod.PAIRWISE_COVER,
        DecisionMethod.POLYHEDRON_WITNESS,
        DecisionMethod.EMPTY_MCS,
    }
)


def is_deterministic_result(result: Optional[SubsumptionResult]) -> bool:
    """True when ``result`` was produced without consuming random draws.

    Deterministic verdicts are the only ones safe to serve from a memo:
    replaying a probabilistic verdict would skip its RSPC run and shift
    every later seeded draw (and the iteration counters) off the
    sequential reference sequence.
    """
    return result is None or result.method in _DETERMINISTIC_METHODS


@dataclass
class _PreparedInstance:
    """Stages 1+3+4 of Algorithm 4 for one ``(s, S)`` instance.

    Shared between :meth:`SubsumptionChecker.check` (which follows up
    with RSPC) and :meth:`SubsumptionChecker.theoretical_d` (which only
    needs the trial budget), so the two cannot drift.
    """

    table: ConflictTable
    reduction: Optional[MCSResult]
    reduced_rows: Tuple[int, ...]
    estimate: Optional[object] = None
    rho_w: float = 0.0
    theoretical: float = float("inf")

    @property
    def mcs_empty(self) -> bool:
        """Whether the MCS reduction removed every candidate."""
        return self.reduction is not None and not self.reduced_rows


@dataclass
class SubsumptionChecker:
    """Configurable group-subsumption checker.

    Parameters
    ----------
    delta:
        Target probability of a false "covered" verdict (Eq. 1).  The
        paper's experiments use ``1e-3`` … ``1e-10``.
    max_iterations:
        Hard cap on RSPC guesses per check.  The theoretical ``d`` can be
        astronomically large for tiny ``delta``; the cap keeps the checker
        practical and is reported through ``SubsumptionResult.truncated``.
    use_mcs:
        Whether to run the Minimized Cover Set reduction (Algorithm 3).
    use_fast_decisions:
        Whether to apply the deterministic short-circuits of Algorithm 4.
    rng:
        Seed or generator for the random guesses; each :meth:`check` call
        draws from this stream, so a seeded checker is fully reproducible.
    cache_size:
        Capacity of the verdict cache (0 disables it).  Only checks
        against :class:`~repro.core.arena.CandidateSet` snapshots are
        cacheable; entries are keyed on the tested subscription's
        identity *and bounds* plus the snapshot fingerprint, so a stale
        verdict can never be served after an add/remove.
    cache_probabilistic:
        Also cache RSPC-backed verdicts.  Off by default: a hit skips
        the random draws the original check consumed, which changes the
        seeded guess stream of subsequent checks (and therefore the
        bit-exact reproducibility of recorded runs).
    """

    delta: float = 1e-6
    max_iterations: int = 10_000
    use_mcs: bool = True
    use_fast_decisions: bool = True
    rng: RandomSource = None
    cache_size: int = 256
    cache_probabilistic: bool = False

    def __post_init__(self) -> None:
        require_probability(self.delta, "delta")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be strictly between 0 and 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._rng = ensure_rng(self.rng)
        self._cache: "OrderedDict" = OrderedDict()
        #: cumulative cache accounting (reset with :meth:`clear_cache`)
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Verdict cache
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every cached verdict and reset the hit/miss counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _cache_key(
        self, subscription: Subscription, candidates: Sequence[Subscription]
    ) -> Optional[tuple]:
        if self.cache_size == 0 or not isinstance(candidates, CandidateSet):
            return None
        # The configuration fields participate in the key: the checker is a
        # mutable dataclass and the ablation experiments toggle stages on a
        # live instance — a verdict computed under one configuration must
        # never answer for another.
        return (
            subscription.id,
            subscription.lows.tobytes(),
            subscription.highs.tobytes(),
            candidates.fingerprint,
            self.delta,
            self.max_iterations,
            self.use_mcs,
            self.use_fast_decisions,
            self.cache_probabilistic,
        )

    def _cache_store(self, key: Optional[tuple], result: SubsumptionResult) -> None:
        if key is None:
            return
        if result.method not in _DETERMINISTIC_METHODS and not self.cache_probabilistic:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Shared stages 1 + 3 + 4
    # ------------------------------------------------------------------
    @staticmethod
    def _build_table(
        subscription: Subscription, candidates: Sequence[Subscription]
    ) -> ConflictTable:
        """Stage 1: the conflict table (zero-copy for candidate snapshots)."""
        return ConflictTable(subscription, candidates)

    def _prepare(self, table: ConflictTable, use_mcs: bool) -> _PreparedInstance:
        """Stages 3 and 4: MCS reduction plus the ``rho_w``/``d`` estimate."""
        if use_mcs:
            reduction = minimized_cover_set(table)
            reduced_rows = reduction.kept_rows
            if not reduced_rows:
                return _PreparedInstance(table, reduction, ())
            estimate_rows: Optional[Sequence[int]] = list(reduced_rows)
        else:
            reduction = None
            reduced_rows = tuple(range(table.k))
            estimate_rows = None
        estimate = estimate_smallest_witness(table, estimate_rows)
        rho_w = estimate.rho_w
        theoretical = (
            required_iterations(self.delta, rho_w) if rho_w > 0 else float("inf")
        )
        return _PreparedInstance(
            table, reduction, reduced_rows, estimate, rho_w, theoretical
        )

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def check(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> SubsumptionResult:
        """Decide whether ``subscription`` is covered by ``candidates``.

        Returns a :class:`SubsumptionResult` with the verdict, the stage
        that produced it and the cost accounting used by the experiments.
        """
        if not hasattr(candidates, "__len__"):
            candidates = tuple(candidates)  # tolerate iterator inputs
        k = len(candidates)
        if k == 0:
            return SubsumptionResult(
                answer=Answer.NOT_COVERED,
                method=DecisionMethod.EMPTY_CANDIDATE_SET,
                original_set_size=0,
                reduced_set_size=0,
            )

        key = self._cache_key(subscription, candidates)
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        table = self._build_table(subscription, candidates)

        # --- Stage 2: fast deterministic decisions -------------------
        if self.use_fast_decisions:
            pairwise = detect_pairwise_cover(table)
            if pairwise is not None:
                result = SubsumptionResult(
                    answer=Answer.COVERED,
                    method=DecisionMethod.PAIRWISE_COVER,
                    original_set_size=k,
                    reduced_set_size=k,
                    covering_row=pairwise.covering_row,
                )
                self._cache_store(key, result)
                return result
            witness = detect_polyhedron_witness(table)
            if witness is not None:
                result = SubsumptionResult(
                    answer=Answer.NOT_COVERED,
                    method=DecisionMethod.POLYHEDRON_WITNESS,
                    original_set_size=k,
                    reduced_set_size=k,
                )
                self._cache_store(key, result)
                return result

        # --- Stages 3 + 4: MCS reduction and error model --------------
        prepared = self._prepare(table, self.use_mcs)
        reduction = prepared.reduction
        if prepared.mcs_empty:
            result = SubsumptionResult(
                answer=Answer.NOT_COVERED,
                method=DecisionMethod.EMPTY_MCS,
                original_set_size=k,
                reduced_set_size=0,
                details={"mcs_passes": reduction.iterations},
            )
            self._cache_store(key, result)
            return result

        reduced_rows = prepared.reduced_rows
        reduced_candidates = (
            reduction.kept if reduction is not None else table.candidates
        )
        rho_w = prepared.rho_w
        theoretical = prepared.theoretical

        # --- Stage 5: RSPC ---------------------------------------------
        if reduction is not None:
            row_index = list(reduced_rows)
            reduced_bounds = (
                table.candidate_lows[row_index],
                table.candidate_highs[row_index],
            )
        else:
            reduced_bounds = (table.candidate_lows, table.candidate_highs)
        rspc = run_rspc(
            subscription,
            reduced_candidates,
            rho_w=rho_w,
            delta=self.delta,
            rng=self._rng,
            max_iterations=self.max_iterations,
            bounds=reduced_bounds,
        )

        details = {
            "witness_estimate": prepared.estimate,
            "rspc_outcome": rspc.outcome.value,
        }
        if reduction is not None:
            details["mcs_passes"] = reduction.iterations
            # The minimized cover set the verdict was actually computed
            # against — the minimal dependency set of a covered verdict
            # (consumed by the reduction-strategy layer).
            details["mcs_kept_rows"] = tuple(reduction.kept_rows)

        if rspc.outcome is RSPCOutcome.WITNESS_FOUND:
            result = SubsumptionResult(
                answer=Answer.NOT_COVERED,
                method=DecisionMethod.POINT_WITNESS,
                original_set_size=k,
                reduced_set_size=len(reduced_candidates),
                rho_w=rho_w,
                theoretical_iterations=theoretical,
                iterations_performed=rspc.iterations_performed,
                witness_point=rspc.witness_point,
                truncated=rspc.truncated,
                details=details,
            )
            self._cache_store(key, result)
            return result

        result = SubsumptionResult(
            answer=Answer.PROBABLY_COVERED,
            method=DecisionMethod.RSPC_EXHAUSTED,
            original_set_size=k,
            reduced_set_size=len(reduced_candidates),
            rho_w=rho_w,
            theoretical_iterations=theoretical,
            iterations_performed=rspc.iterations_performed,
            error_bound=rspc.error_bound,
            truncated=rspc.truncated,
            details=details,
        )
        self._cache_store(key, result)
        return result

    # ------------------------------------------------------------------
    # Batched entry point
    # ------------------------------------------------------------------
    def check_batch(
        self,
        subscriptions: Sequence[Subscription],
        candidates: Sequence[Subscription],
    ) -> List[SubsumptionResult]:
        """Check many subscriptions against one shared candidate set.

        The candidate bounds are stacked (or arena-gathered) once and
        shared by every check in the batch; results are returned in
        input order and are identical — draw for draw — to calling
        :meth:`check` sequentially against the same candidate set.
        """
        shared = as_candidate_set(candidates)
        return [self.check(subscription, shared) for subscription in subscriptions]

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def is_covered(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> bool:
        """Boolean verdict (treating "probably covered" as covered)."""
        return self.check(subscription, candidates).covered

    def theoretical_d(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
        apply_mcs: Optional[bool] = None,
    ) -> float:
        """The paper's ``d`` for this instance without running RSPC.

        Used by the Figure 7/9 experiments which plot the theoretical trial
        budget with and without the MCS reduction.  Shares stages 1/3/4
        with :meth:`check` through :meth:`_prepare`.
        """
        if not hasattr(candidates, "__len__"):
            candidates = tuple(candidates)  # tolerate iterator inputs
        if not len(candidates):
            return 0.0
        table = self._build_table(subscription, candidates)
        use_mcs = self.use_mcs if apply_mcs is None else apply_mcs
        prepared = self._prepare(table, use_mcs)
        if prepared.mcs_empty:
            return 0.0
        if prepared.rho_w <= 0:
            return float("inf")
        return prepared.theoretical
