"""The full probabilistic subsumption pipeline.

:class:`SubsumptionChecker` wires the paper's building blocks together in
the order of Algorithm 4:

1. build the conflict table (``O(m·k)``);
2. fast deterministic decisions — pair-wise cover (Corollary 1) and the
   sorted-row polyhedron-witness condition (Corollary 3);
3. the MCS reduction (Algorithm 3); an empty reduced set is a definite NO;
4. the ``rho_w`` estimate (Algorithm 2) and the trial budget ``d`` for the
   requested error probability ``delta`` (Eq. 1);
5. RSPC (Algorithm 1) on the reduced set — a definite NO when a point
   witness is found, otherwise a probabilistic YES.

Every stage can be toggled so the experiments can quantify its individual
contribution (the ±MCS curves of Figures 7 and 9, the fast-decision
ablation of the micro-benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.conflict_table import ConflictTable
from repro.core.decisions import (
    FastDecisionKind,
    detect_pairwise_cover,
    detect_polyhedron_witness,
)
from repro.core.error_model import required_iterations
from repro.core.mcs import MCSResult, minimized_cover_set
from repro.core.results import Answer, DecisionMethod, SubsumptionResult
from repro.core.rspc import RSPCOutcome, run_rspc
from repro.core.witness import estimate_smallest_witness
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_probability

__all__ = ["SubsumptionChecker"]


@dataclass
class SubsumptionChecker:
    """Configurable group-subsumption checker.

    Parameters
    ----------
    delta:
        Target probability of a false "covered" verdict (Eq. 1).  The
        paper's experiments use ``1e-3`` … ``1e-10``.
    max_iterations:
        Hard cap on RSPC guesses per check.  The theoretical ``d`` can be
        astronomically large for tiny ``delta``; the cap keeps the checker
        practical and is reported through ``SubsumptionResult.truncated``.
    use_mcs:
        Whether to run the Minimized Cover Set reduction (Algorithm 3).
    use_fast_decisions:
        Whether to apply the deterministic short-circuits of Algorithm 4.
    rng:
        Seed or generator for the random guesses; each :meth:`check` call
        draws from this stream, so a seeded checker is fully reproducible.
    """

    delta: float = 1e-6
    max_iterations: int = 10_000
    use_mcs: bool = True
    use_fast_decisions: bool = True
    rng: RandomSource = None

    def __post_init__(self) -> None:
        require_probability(self.delta, "delta")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be strictly between 0 and 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self._rng = ensure_rng(self.rng)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def check(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> SubsumptionResult:
        """Decide whether ``subscription`` is covered by ``candidates``.

        Returns a :class:`SubsumptionResult` with the verdict, the stage
        that produced it and the cost accounting used by the experiments.
        """
        candidates = list(candidates)
        k = len(candidates)

        if k == 0:
            return SubsumptionResult(
                answer=Answer.NOT_COVERED,
                method=DecisionMethod.EMPTY_CANDIDATE_SET,
                original_set_size=0,
                reduced_set_size=0,
            )

        table = ConflictTable(subscription, candidates)

        # --- Stage 2: fast deterministic decisions -------------------
        if self.use_fast_decisions:
            pairwise = detect_pairwise_cover(table)
            if pairwise is not None:
                return SubsumptionResult(
                    answer=Answer.COVERED,
                    method=DecisionMethod.PAIRWISE_COVER,
                    original_set_size=k,
                    reduced_set_size=k,
                    covering_row=pairwise.covering_row,
                )
            witness = detect_polyhedron_witness(table)
            if witness is not None:
                return SubsumptionResult(
                    answer=Answer.NOT_COVERED,
                    method=DecisionMethod.POLYHEDRON_WITNESS,
                    original_set_size=k,
                    reduced_set_size=k,
                )

        # --- Stage 3: MCS reduction -----------------------------------
        if self.use_mcs:
            reduction = minimized_cover_set(table)
            reduced_rows = list(reduction.kept_rows)
            reduced_candidates = list(reduction.kept)
            if not reduced_candidates:
                return SubsumptionResult(
                    answer=Answer.NOT_COVERED,
                    method=DecisionMethod.EMPTY_MCS,
                    original_set_size=k,
                    reduced_set_size=0,
                    details={"mcs_passes": reduction.iterations},
                )
        else:
            reduction = None
            reduced_rows = list(range(k))
            reduced_candidates = candidates

        # --- Stage 4: error model --------------------------------------
        estimate = estimate_smallest_witness(table, reduced_rows)
        rho_w = estimate.rho_w
        theoretical = (
            required_iterations(self.delta, rho_w) if rho_w > 0 else float("inf")
        )

        # --- Stage 5: RSPC ---------------------------------------------
        rspc = run_rspc(
            subscription,
            reduced_candidates,
            rho_w=rho_w,
            delta=self.delta,
            rng=self._rng,
            max_iterations=self.max_iterations,
        )

        details = {
            "witness_estimate": estimate,
            "rspc_outcome": rspc.outcome.value,
        }
        if reduction is not None:
            details["mcs_passes"] = reduction.iterations
            # The minimized cover set the verdict was actually computed
            # against — the minimal dependency set of a covered verdict
            # (consumed by the reduction-strategy layer).
            details["mcs_kept_rows"] = tuple(reduction.kept_rows)

        if rspc.outcome is RSPCOutcome.WITNESS_FOUND:
            return SubsumptionResult(
                answer=Answer.NOT_COVERED,
                method=DecisionMethod.POINT_WITNESS,
                original_set_size=k,
                reduced_set_size=len(reduced_candidates),
                rho_w=rho_w,
                theoretical_iterations=theoretical,
                iterations_performed=rspc.iterations_performed,
                witness_point=rspc.witness_point,
                truncated=rspc.truncated,
                details=details,
            )

        return SubsumptionResult(
            answer=Answer.PROBABLY_COVERED,
            method=DecisionMethod.RSPC_EXHAUSTED,
            original_set_size=k,
            reduced_set_size=len(reduced_candidates),
            rho_w=rho_w,
            theoretical_iterations=theoretical,
            iterations_performed=rspc.iterations_performed,
            error_bound=rspc.error_bound,
            truncated=rspc.truncated,
            details=details,
        )

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def is_covered(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
    ) -> bool:
        """Boolean verdict (treating "probably covered" as covered)."""
        return self.check(subscription, candidates).covered

    def theoretical_d(
        self,
        subscription: Subscription,
        candidates: Sequence[Subscription],
        apply_mcs: Optional[bool] = None,
    ) -> float:
        """The paper's ``d`` for this instance without running RSPC.

        Used by the Figure 7/9 experiments which plot the theoretical trial
        budget with and without the MCS reduction.
        """
        candidates = list(candidates)
        if not candidates:
            return 0.0
        table = ConflictTable(subscription, candidates)
        use_mcs = self.use_mcs if apply_mcs is None else apply_mcs
        rows: Optional[Sequence[int]] = None
        if use_mcs:
            reduction = minimized_cover_set(table)
            rows = list(reduction.kept_rows)
            if not rows:
                return 0.0
        estimate = estimate_smallest_witness(table, rows)
        if estimate.rho_w <= 0:
            return float("inf")
        return required_iterations(self.delta, estimate.rho_w)
