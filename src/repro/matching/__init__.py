"""Publication-to-subscription matching.

The centrepiece is :class:`MatchingEngine`, which implements Algorithm 5 of
the paper: publications are matched against the *active* (uncovered)
subscriptions first and the covered subscriptions are consulted only when
an active subscription matched.  The optional multi-level cover index
(:class:`CoverForest`) implements the optimisation sketched at the end of
Section 4.4.

Membership tests are delegated to pluggable matcher backends
(:mod:`repro.matching.backends`): ``linear`` (the seed scan, kept as
oracle), ``counting`` (Yan & Garcia-Molina counting algorithm) and
``selectivity`` (Carzaniga & Wolf selectivity-ordered elimination), the
latter two backed by incrementally maintained vectorised NumPy indexes
(:class:`CountingIndex`, :class:`SelectivityIndex`).
"""

from repro.matching.backends import (
    BACKEND_NAMES,
    CountingBackend,
    LinearBackend,
    MatcherBackend,
    SelectivityBackend,
    make_backend,
)
from repro.matching.cover_index import CoverForest
from repro.matching.counting_index import CountingIndex
from repro.matching.engine import MatchingEngine, MatchResult
from repro.matching.selectivity_index import SelectivityIndex

__all__ = [
    "BACKEND_NAMES",
    "CountingBackend",
    "CoverForest",
    "CountingIndex",
    "LinearBackend",
    "MatcherBackend",
    "MatchingEngine",
    "MatchResult",
    "SelectivityBackend",
    "SelectivityIndex",
    "make_backend",
]
