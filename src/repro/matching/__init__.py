"""Publication-to-subscription matching.

The centrepiece is :class:`MatchingEngine`, which implements Algorithm 5 of
the paper: publications are matched against the *active* (uncovered)
subscriptions first and the covered subscriptions are consulted only when
an active subscription matched.  The optional multi-level cover index
(:class:`CoverForest`) implements the optimisation sketched at the end of
Section 4.4, and two classical matching indexes (counting and selectivity)
are provided as baselines for the micro-benchmarks.
"""

from repro.matching.cover_index import CoverForest
from repro.matching.counting_index import CountingIndex
from repro.matching.engine import MatchingEngine, MatchResult
from repro.matching.selectivity_index import SelectivityIndex

__all__ = [
    "CoverForest",
    "CountingIndex",
    "MatchingEngine",
    "MatchResult",
    "SelectivityIndex",
]
