"""Selectivity-ordered matching index.

Carzaniga & Wolf's forwarding tables (referenced in Section 7) organise
constraints per attribute and evaluate the most *selective* attributes
first so that the candidate set shrinks as quickly as possible.  This
index captures that idea: attributes are ordered by their estimated
selectivity (average fraction of the attribute's domain that indexed
subscriptions accept) and candidate subscriptions are eliminated attribute
by attribute, short-circuiting as soon as the candidate set becomes empty.

The result is always identical to the counting index; the difference is
the amount of per-publication work, which the micro-benchmarks compare.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.errors import ValidationError
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["SelectivityIndex"]


class SelectivityIndex:
    """Attribute-ordered elimination index."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._subscriptions: List[Subscription] = []
        self._lows: Optional[np.ndarray] = None
        self._highs: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        self._dirty = False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> None:
        """Index a subscription."""
        if subscription.schema != self.schema:
            raise ValidationError("subscription schema does not match the index")
        self._subscriptions.append(subscription)
        self._dirty = True

    def add_all(self, subscriptions: Sequence[Subscription]) -> None:
        """Index many subscriptions at once."""
        for subscription in subscriptions:
            self.add(subscription)

    def remove(self, subscription_id: str) -> bool:
        """Remove a subscription by identifier."""
        for index, subscription in enumerate(self._subscriptions):
            if subscription.id == subscription_id:
                del self._subscriptions[index]
                self._dirty = True
                return True
        return False

    def _rebuild(self) -> None:
        if self._subscriptions:
            self._lows = np.vstack([s.lows for s in self._subscriptions])
            self._highs = np.vstack([s.highs for s in self._subscriptions])
            domain_lows, domain_highs = self.schema.full_bounds()
            extents = np.maximum(domain_highs - domain_lows, 1e-12)
            widths = (self._highs - self._lows) / extents[np.newaxis, :]
            # Most selective attribute = smallest average accepted fraction.
            self._order = np.argsort(widths.mean(axis=0))
        else:
            self._lows = np.empty((0, self.schema.m), dtype=float)
            self._highs = np.empty((0, self.schema.m), dtype=float)
            self._order = np.arange(self.schema.m)
        self._dirty = False

    @property
    def attribute_order(self) -> List[str]:
        """Evaluation order chosen by the selectivity heuristic."""
        if self._dirty or self._order is None:
            self._rebuild()
        return [self.schema.names[j] for j in self._order]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> List[Subscription]:
        """Return every indexed subscription matching ``publication``."""
        if publication.schema != self.schema:
            raise ValidationError("publication schema does not match the index")
        if self._dirty or self._lows is None:
            self._rebuild()
        if not self._subscriptions:
            return []
        candidates = np.arange(len(self._subscriptions))
        for attribute in self._order:
            value = publication.values[attribute]
            keep = (self._lows[candidates, attribute] <= value) & (
                value <= self._highs[candidates, attribute]
            )
            candidates = candidates[keep]
            if candidates.size == 0:
                return []
        return [self._subscriptions[i] for i in candidates]

    def __len__(self) -> int:
        return len(self._subscriptions)
