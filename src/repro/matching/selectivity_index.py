"""Selectivity-ordered matching index.

Carzaniga & Wolf's forwarding tables (referenced in Section 7) organise
constraints per attribute and evaluate the most *selective* attributes
first so that the candidate set shrinks as quickly as possible.  This
index captures that idea: attributes are ordered by their estimated
selectivity (average fraction of the attribute's domain that indexed
subscriptions accept) and candidate subscriptions are eliminated attribute
by attribute, short-circuiting as soon as the candidate set becomes empty.

Storage and maintenance are shared with :class:`CountingIndex` (appends
plus tombstones, no rebuilds); the selectivity statistics are kept
incrementally as per-attribute accepted-width sums, so the evaluation
order is an ``argsort`` away at any moment instead of a full re-scan.

The result is always identical to the counting index; the difference is
the amount of per-publication work, which the micro-benchmarks compare.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.matching.counting_index import CountingIndex
from repro.model.errors import ValidationError
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["SelectivityIndex"]


class SelectivityIndex(CountingIndex):
    """Attribute-ordered elimination index."""

    def __init__(self, schema: Schema):
        domain_lows, domain_highs = schema.full_bounds()
        self._extents = np.maximum(domain_highs - domain_lows, 1e-12)
        #: per-attribute sum of normalised accepted widths over live rows
        self._width_sums = np.zeros(schema.m, dtype=float)
        self._order: Optional[np.ndarray] = None
        super().__init__(schema)

    # ------------------------------------------------------------------
    # Incremental selectivity statistics
    # ------------------------------------------------------------------
    def _row_widths(self, row: int) -> np.ndarray:
        return (self._highs[row] - self._lows[row]) / self._extents

    def _on_add(self, row: int) -> None:
        self._width_sums += self._row_widths(row)
        self._order = None

    def _on_remove(self, row: int) -> None:
        self._width_sums -= self._row_widths(row)
        self._order = None

    def _on_compact(self) -> None:
        # Recompute exactly, shedding any floating-point drift accumulated
        # by the incremental +=/-= updates.
        if self._size:
            widths = (
                self._highs[: self._size] - self._lows[: self._size]
            ) / self._extents
            self._width_sums = widths.sum(axis=0)
        else:
            self._width_sums = np.zeros(self.schema.m, dtype=float)
        self._order = None

    def _attribute_indices(self) -> np.ndarray:
        if self._order is None:
            # Most selective attribute = smallest average accepted fraction;
            # the live count divides every sum equally, so sorting the sums
            # sorts the means.
            self._order = np.argsort(self._width_sums, kind="stable")
        return self._order

    @property
    def attribute_order(self) -> List[str]:
        """Evaluation order chosen by the selectivity heuristic."""
        return [self.schema.names[int(j)] for j in self._attribute_indices()]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> List[Subscription]:
        """Return every indexed subscription matching ``publication``."""
        if publication.schema != self.schema:
            raise ValidationError("publication schema does not match the index")
        if not self._rows:
            return []
        candidates = np.nonzero(self._alive[: self._size])[0]
        values = publication.values
        for attribute in self._attribute_indices():
            value = values[attribute]
            keep = (self._lows[candidates, attribute] <= value) & (
                value <= self._highs[candidates, attribute]
            )
            candidates = candidates[keep]
            if candidates.size == 0:
                return []
        return [self._subscriptions[int(i)] for i in candidates]
