"""Matching engine (Algorithm 5).

The engine answers "which subscriptions does publication ``p`` match, and
which subscribers must be notified?".  Following Algorithm 5, the active
(uncovered) subscriptions are checked first; only when at least one of them
matches does the engine look at the covered subscriptions — either with a
flat scan (the paper's base algorithm) or through the multi-level
:class:`~repro.matching.cover_index.CoverForest` (the paper's
optimisation).

Membership tests are not performed by the engine itself: they are
delegated to a pluggable :class:`~repro.matching.backends.MatcherBackend`
(one instance for the active set, one for the covered set), selected by
name:

``linear``
    The seed behaviour, kept as the oracle — a flat active scan plus
    (with ``use_cover_forest``) the multi-level covered walk.
``counting`` / ``selectivity``
    Vectorised NumPy indexes; the covered set is tested with one flat
    vectorised pass, gated — exactly as Algorithm 5 requires — on at
    least one active subscription matching.

Soundness of the multi-level structure: a covered subscription is attached
below another subscription only when that parent *pair-wise covers* it, so
pruning a non-matching subtree can never lose a notification.  Subscriptions
covered only by a *union* of subscriptions (the group policy's new case)
are kept in a flat bucket that is scanned whenever any active subscription
matched — exactly the fallback behaviour of Algorithm 5 — because no single
parent is guaranteed to dominate them.  The same gating argument makes the
vectorised covered pass equivalent: a covered subscription can only match
when its (transitive) coverers match, so every backend reports the same
matched set.

Unsubscription is incremental: the store reports what it did
(:class:`~repro.core.store.RemovalOutcome`) and the engine splices the
cover forest around the departed subscription — children move to their
grandparent or are re-rooted — instead of rebuilding the forest from the
pools.

The engine owns a :class:`~repro.core.store.SubscriptionStore`, so it also
exposes the subscribe/unsubscribe workflow used by the examples and by the
broker simulator's local-client handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.policies import DEFAULT_MERGE_BUDGET
from repro.core.store import (
    CoveringPolicyName,
    RemovalOutcome,
    StoreDecision,
    SubscriptionStore,
)
from repro.core.subsumption import SubsumptionChecker
from repro.matching.backends import make_backend
from repro.matching.cover_index import CoverForest
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription
from repro.obs import probes as obs_probes

__all__ = ["MatchResult", "MatchingEngine"]


@dataclass
class MatchResult:
    """Outcome of matching one publication.

    Attributes
    ----------
    publication:
        The matched publication.
    matched:
        Every subscription (active or covered) that matches it.
    subscribers:
        De-duplicated subscriber identifiers to notify.
    active_tests:
        Membership tests performed against the active set.
    covered_tests:
        Membership tests performed against covered subscriptions (0 when no
        active subscription matched, by Algorithm 5).  Vectorised backends
        charge one test per candidate row consulted.
    """

    publication: Publication
    matched: Tuple[Subscription, ...]
    subscribers: Tuple[str, ...]
    active_tests: int
    covered_tests: int

    @property
    def matched_ids(self) -> Tuple[str, ...]:
        """Identifiers of the matched subscriptions."""
        return tuple(subscription.id for subscription in self.matched)

    @property
    def total_tests(self) -> int:
        """Total membership tests performed."""
        return self.active_tests + self.covered_tests

    def __bool__(self) -> bool:
        return bool(self.matched)


class MatchingEngine:
    """Subscription registry + Algorithm 5 matcher.

    Parameters
    ----------
    policy:
        Reduction strategy of the underlying store (``none`` /
        ``pairwise`` / ``group`` / ``merging`` / ``hybrid``).
    checker:
        Group-subsumption checker used by the ``group`` policy.
    use_cover_forest:
        Whether pair-wise-covered subscriptions are organised in the
        multi-level structure (Section 4.4 optimisation) instead of a flat
        list.  Only meaningful for the ``linear`` backend; the vectorised
        backends always test the covered set with one flat vectorised
        pass.
    backend:
        Matcher backend the membership tests are delegated to (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`).
    merge_budget:
        False-volume budget of the merging strategies (ignored by the
        covering-only ones).
    """

    def __init__(
        self,
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
        use_cover_forest: bool = True,
        backend: str = "linear",
        merge_budget: float = DEFAULT_MERGE_BUDGET,
    ):
        self.store = SubscriptionStore(
            policy=policy, checker=checker, merge_budget=merge_budget
        )
        self.backend = backend
        self.use_cover_forest = use_cover_forest
        #: the forest is worth maintaining only for the linear backend —
        #: the vectorised covered pass replaces the multi-level walk.
        #: Merging strategies swap active-set members around on insertion,
        #: which the flat covered pass absorbs trivially; the forest adds
        #: nothing there, so they always run flat.
        self._use_forest = (
            use_cover_forest
            and backend == "linear"
            and not self.store.strategy.merges
        )
        self._active_index = make_backend(backend)
        #: only consulted (and therefore only maintained) when the covered
        #: set is tested flat; the forest replaces it for linear+forest
        self._covered_index = make_backend(backend)
        #: identifiers of every stored subscription (O(1) duplicate guard)
        self._ids: set = set()
        self._forest = CoverForest()
        self._group_covered: List[Subscription] = []
        #: cumulative counters for the micro-benchmarks
        self.stats: Dict[str, int] = {
            "publications": 0,
            "notifications": 0,
            "active_tests": 0,
            "covered_tests": 0,
        }

    @property
    def arena(self):
        """The store's subscription arena (contiguous active-set bounds)."""
        return self.store.arena

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscription: Subscription) -> StoreDecision:
        """Register a subscription, returning the store's decision.

        Raises :class:`ValueError` for an identifier the engine already
        holds — *before* any state is touched, so the store and the
        matcher indexes can never diverge.
        """
        # The engine is used standalone (no owning network to hand it a
        # probe), so it looks the module-level probe up per call; with no
        # probe installed this is a single attribute read plus an
        # ``is None`` test on top of the original code path.
        obs = obs_probes.ACTIVE
        if obs is None:
            return self._subscribe_impl(subscription)
        obs.stage_push("engine.subscribe")
        try:
            return self._subscribe_impl(subscription)
        finally:
            obs.stage_pop()

    def _subscribe_impl(self, subscription: Subscription) -> StoreDecision:
        if subscription.id in self._ids:
            raise ValueError(
                f"subscription {subscription.id!r} is already registered"
            )
        decision = self.store.add(subscription)
        self._ids.add(subscription.id)
        self._apply_decision(decision)
        if self._use_forest:
            self._sync_forest(decision)
        return decision

    def _apply_decision(self, decision: StoreDecision, rejoining: bool = False) -> None:
        """Mirror one store decision into the matcher indexes.

        ``rejoining`` marks an unsubscription re-insertion: the
        subscription currently sits in the covered index and must leave it
        first (re-appending a re-covered one mirrors the store's ordering).
        """
        subscription = decision.subscription
        if rejoining and not self._use_forest:
            self._covered_index.remove(subscription.id)
        if decision.merged is not None:
            # The merged bounding box replaces the absorbed actives; the
            # newcomer and the absorbed originals all become covered (the
            # merged box pair-wise covers each of them, so the Algorithm 5
            # gate stays sound).
            self._active_index.add(decision.merged)
            for replaced in decision.replaced:
                self._active_index.remove(replaced.id)
                self._covered_index.add(replaced)
            self._covered_index.add(subscription)
        elif decision.forwarded:
            self._active_index.add(subscription)
            for demoted in decision.demoted:
                self._active_index.remove(demoted.id)
                if not self._use_forest:
                    self._covered_index.add(demoted)
        elif not self._use_forest:
            self._covered_index.add(subscription)

    def subscribe_all(
        self, subscriptions: Iterable[Subscription]
    ) -> List[StoreDecision]:
        """Register many subscriptions in order."""
        return [self.subscribe(subscription) for subscription in subscriptions]

    def unsubscribe(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove a subscription; returns promoted covered subscriptions.

        The removal is incremental end to end: the matcher indexes drop or
        move only the affected subscriptions, and the cover forest is
        spliced around the departed node instead of being rebuilt.
        """
        obs = obs_probes.ACTIVE
        if obs is None:
            return self._unsubscribe_impl(subscription_id)
        obs.stage_push("engine.unsubscribe")
        try:
            return self._unsubscribe_impl(subscription_id)
        finally:
            obs.stage_pop()

    def _unsubscribe_impl(self, subscription_id: str) -> Tuple[Subscription, ...]:
        outcome = self.store.remove_detailed(subscription_id)
        if outcome.subscription is None:
            return ()
        self._ids.discard(subscription_id)
        if outcome.was_active:
            self._active_index.remove(subscription_id)
        elif not self._use_forest:
            self._covered_index.remove(subscription_id)
        for retracted in outcome.retracted:
            # An orphaned merged box left the store; it may sit in either
            # index depending on whether it was itself absorbed.
            self._active_index.remove(retracted.id)
            if not self._use_forest:
                self._covered_index.remove(retracted.id)
        for decision in outcome.reinsertions:
            self._apply_decision(decision, rejoining=True)
        if self._use_forest:
            self._forest_remove(outcome)
        return outcome.promoted

    def _sync_forest(self, decision: StoreDecision) -> None:
        subscription = decision.subscription
        if decision.forwarded:
            self._forest.add_root(subscription)
            for demoted in decision.demoted:
                # The newcomer pair-wise covers the demoted subscription, so
                # re-rooting it (with its whole subtree) under the newcomer
                # keeps the forest's covering invariant.
                self._forest.reparent(demoted.id, subscription.id)
            return
        coverer_id = self._single_coverer(decision)
        if coverer_id is not None and coverer_id in self._forest:
            self._forest.add_covered(subscription, coverer_id)
        else:
            self._group_covered.append(subscription)

    def _single_coverer(self, decision: StoreDecision) -> Optional[str]:
        """Identifier of a subscription that pair-wise covers the newcomer."""
        subscription = decision.subscription
        for candidate_id in decision.covered_by:
            candidate = self.store.find(candidate_id)
            if candidate is not None and candidate.covers(subscription):
                return candidate_id
        return None

    # ------------------------------------------------------------------
    # Incremental forest maintenance on unsubscription
    # ------------------------------------------------------------------
    def _forest_remove(self, outcome: RemovalOutcome) -> None:
        removed_id = outcome.subscription.id
        if not outcome.was_active:
            # A covered subscription left: splice its children onto its
            # parent (covering is transitive) or drop it from the group
            # bucket.  Covered nodes always have a parent, so nothing is
            # ever promoted to root here.
            if removed_id in self._forest:
                self._forest.remove_splice(removed_id)
            else:
                self._drop_group(removed_id)
            return
        # An active root left.  Every forest child of a node carries its
        # parent in its cover links, so each child of the departed root is
        # one of the store's re-inserted orphans and is resettled below.
        for decision in outcome.reinsertions:
            self._resettle(decision)
        # Defensive: if any child survived the resettling pass it must not
        # masquerade as an active root — demote it (with its subtree) to
        # the group bucket, which is always sound to scan.
        for stray in self._forest.remove_splice(removed_id):
            if stray.id in self._forest:
                self._group_covered.extend(
                    self._forest.extract_subtree(stray.id)
                )

    def _resettle(self, decision: StoreDecision) -> None:
        """Re-home one orphan after its coverer left, mirroring the store.

        The orphan may sit in the forest (with a whole subtree of its own)
        or in the flat group bucket; the store's re-insertion decision says
        where it belongs now.
        """
        subscription = decision.subscription
        subscription_id = subscription.id
        in_forest = subscription_id in self._forest
        if decision.forwarded:
            # Promoted to active: becomes a root, keeping its subtree.
            if in_forest:
                self._forest.reparent(subscription_id, None)
            else:
                self._drop_group(subscription_id)
                self._forest.add_root(subscription)
            for demoted in decision.demoted:
                if demoted.id in self._forest:
                    self._forest.reparent(demoted.id, subscription_id)
            return
        coverer_id = self._single_coverer(decision)
        if coverer_id is not None and coverer_id in self._forest:
            # Re-covered pair-wise: hang it (and its subtree) below the new
            # coverer.  The coverer is an active root, never part of the
            # orphan's own subtree, so no cycle can form.
            if in_forest:
                self._forest.reparent(subscription_id, coverer_id)
            else:
                self._drop_group(subscription_id)
                self._forest.add_covered(subscription, coverer_id)
            return
        # Covered only by the union of the active set: the whole subtree
        # loses its single-coverer chain and moves to the group bucket.
        if in_forest:
            self._group_covered.extend(
                self._forest.extract_subtree(subscription_id)
            )
        elif all(s.id != subscription_id for s in self._group_covered):
            self._group_covered.append(subscription)

    def _drop_group(self, subscription_id: str) -> None:
        self._group_covered = [
            subscription
            for subscription in self._group_covered
            if subscription.id != subscription_id
        ]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active_subscriptions(self) -> Tuple[Subscription, ...]:
        """Active (uncovered) subscriptions."""
        return self.store.active

    @property
    def covered_subscriptions(self) -> Tuple[Subscription, ...]:
        """Covered (suppressed) subscriptions."""
        return self.store.covered

    def __len__(self) -> int:
        return self.store.total_count

    # ------------------------------------------------------------------
    # Matching (Algorithm 5)
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> MatchResult:
        """Match a publication following Algorithm 5."""
        obs = obs_probes.ACTIVE
        if obs is None:
            return self._match_impl(publication)
        obs.stage_push("engine.match")
        try:
            return self._match_impl(publication)
        finally:
            obs.stage_pop()

    def _match_impl(self, publication: Publication) -> MatchResult:
        self.stats["publications"] += 1
        active_matched, active_tests = self._active_index.match_candidates(
            publication
        )
        matched, covered_tests = self._match_covered(publication, active_matched)
        return self._build_result(publication, matched, active_tests, covered_tests)

    def _match_covered(
        self, publication: Publication, active_matched: List[Subscription]
    ) -> Tuple[List[Subscription], int]:
        """Extend the active matches with covered ones, per Algorithm 5.

        The covered set is consulted only when an active subscription
        matched — through the forest walk for the linear backend, or with
        one flat (vectorised) pass otherwise.
        """
        matched = list(active_matched)
        if not matched:
            return matched, 0
        if self._use_forest:
            covered_tests = 0
            below, tests = self._forest.match_below(
                publication, [s.id for s in active_matched]
            )
            covered_tests += tests
            matched.extend(below)
            values = publication.values_list
            for subscription in self._group_covered:
                covered_tests += 1
                if subscription.contains_values(values):
                    matched.append(subscription)
            return matched, covered_tests
        covered_matched, covered_tests = self._covered_index.match_candidates(
            publication
        )
        matched.extend(covered_matched)
        return matched, covered_tests

    def _build_result(
        self,
        publication: Publication,
        matched: List[Subscription],
        active_tests: int,
        covered_tests: int,
    ) -> MatchResult:
        subscribers = tuple(
            dict.fromkeys(
                subscription.subscriber
                for subscription in matched
                if subscription.subscriber is not None
            )
        )
        self.stats["notifications"] += len(subscribers)
        self.stats["active_tests"] += active_tests
        self.stats["covered_tests"] += covered_tests
        return MatchResult(
            publication=publication,
            matched=tuple(matched),
            subscribers=subscribers,
            active_tests=active_tests,
            covered_tests=covered_tests,
        )

    def match_all(self, publications: Iterable[Publication]) -> List[MatchResult]:
        """Match a stream of publications."""
        return [self.match(publication) for publication in publications]

    def match_batch(
        self, publications: Sequence[Publication]
    ) -> List[MatchResult]:
        """Match a publication burst, amortising per-call matcher setup.

        Produces exactly the results (and statistics) of matching the
        publications one by one, but vectorised backends evaluate the
        whole burst against the active set in one pass, and the covered
        set in one pass over the publications that had an active hit.
        """
        obs = obs_probes.ACTIVE
        if obs is None:
            return self._match_batch_impl(publications)
        obs.stage_push("engine.match_batch")
        try:
            return self._match_batch_impl(publications)
        finally:
            obs.stage_pop()

    def _match_batch_impl(
        self, publications: Sequence[Publication]
    ) -> List[MatchResult]:
        publications = list(publications)
        active_results = self._active_index.match_batch(publications)
        covered_results: Dict[int, Tuple[List[Subscription], int]] = {}
        if not self._use_forest:
            need = [
                position
                for position, (active_matched, _tests) in enumerate(active_results)
                if active_matched
            ]
            if need:
                batch = self._covered_index.match_batch(
                    [publications[position] for position in need]
                )
                covered_results = dict(zip(need, batch))
        results: List[MatchResult] = []
        for position, publication in enumerate(publications):
            self.stats["publications"] += 1
            active_matched, active_tests = active_results[position]
            if self._use_forest or not active_matched:
                matched, covered_tests = self._match_covered(
                    publication, active_matched
                )
            else:
                matched = list(active_matched)
                covered_matched, covered_tests = covered_results[position]
                matched.extend(covered_matched)
            results.append(
                self._build_result(
                    publication, matched, active_tests, covered_tests
                )
            )
        return results
