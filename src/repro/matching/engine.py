"""Matching engine (Algorithm 5).

The engine answers "which subscriptions does publication ``p`` match, and
which subscribers must be notified?".  Following Algorithm 5, the active
(uncovered) subscriptions are checked first; only when at least one of them
matches does the engine look at the covered subscriptions — either with a
flat scan (the paper's base algorithm) or through the multi-level
:class:`~repro.matching.cover_index.CoverForest` (the paper's
optimisation).

Soundness of the multi-level structure: a covered subscription is attached
below another subscription only when that parent *pair-wise covers* it, so
pruning a non-matching subtree can never lose a notification.  Subscriptions
covered only by a *union* of subscriptions (the group policy's new case)
are kept in a flat bucket that is scanned whenever any active subscription
matched — exactly the fallback behaviour of Algorithm 5 — because no single
parent is guaranteed to dominate them.

The engine owns a :class:`~repro.core.store.SubscriptionStore`, so it also
exposes the subscribe/unsubscribe workflow used by the examples and by the
broker simulator's local-client handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.store import CoveringPolicyName, StoreDecision, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.matching.cover_index import CoverForest
from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = ["MatchResult", "MatchingEngine"]


@dataclass
class MatchResult:
    """Outcome of matching one publication.

    Attributes
    ----------
    publication:
        The matched publication.
    matched:
        Every subscription (active or covered) that matches it.
    subscribers:
        De-duplicated subscriber identifiers to notify.
    active_tests:
        Membership tests performed against the active set.
    covered_tests:
        Membership tests performed against covered subscriptions (0 when no
        active subscription matched, by Algorithm 5).
    """

    publication: Publication
    matched: Tuple[Subscription, ...]
    subscribers: Tuple[str, ...]
    active_tests: int
    covered_tests: int

    @property
    def matched_ids(self) -> Tuple[str, ...]:
        """Identifiers of the matched subscriptions."""
        return tuple(subscription.id for subscription in self.matched)

    @property
    def total_tests(self) -> int:
        """Total membership tests performed."""
        return self.active_tests + self.covered_tests

    def __bool__(self) -> bool:
        return bool(self.matched)


class MatchingEngine:
    """Subscription registry + Algorithm 5 matcher.

    Parameters
    ----------
    policy:
        Covering policy of the underlying store (``none`` / ``pairwise`` /
        ``group``).
    checker:
        Group-subsumption checker used by the ``group`` policy.
    use_cover_forest:
        Whether pair-wise-covered subscriptions are organised in the
        multi-level structure (Section 4.4 optimisation) instead of a flat
        list.
    """

    def __init__(
        self,
        policy: CoveringPolicyName = CoveringPolicyName.GROUP,
        checker: Optional[SubsumptionChecker] = None,
        use_cover_forest: bool = True,
    ):
        self.store = SubscriptionStore(policy=policy, checker=checker)
        self.use_cover_forest = use_cover_forest
        self._forest = CoverForest()
        self._group_covered: List[Subscription] = []
        #: cumulative counters for the micro-benchmarks
        self.stats: Dict[str, int] = {
            "publications": 0,
            "notifications": 0,
            "active_tests": 0,
            "covered_tests": 0,
        }

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(self, subscription: Subscription) -> StoreDecision:
        """Register a subscription, returning the store's decision."""
        decision = self.store.add(subscription)
        if self.use_cover_forest:
            self._sync_forest(decision)
        return decision

    def subscribe_all(
        self, subscriptions: Iterable[Subscription]
    ) -> List[StoreDecision]:
        """Register many subscriptions in order."""
        return [self.subscribe(subscription) for subscription in subscriptions]

    def unsubscribe(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove a subscription; returns promoted covered subscriptions."""
        promoted = self.store.remove(subscription_id)
        if self.use_cover_forest:
            self._rebuild_forest()
        return promoted

    def _sync_forest(self, decision: StoreDecision) -> None:
        subscription = decision.subscription
        if decision.forwarded:
            self._forest.add_root(subscription)
            for demoted in decision.demoted:
                # The newcomer pair-wise covers the demoted subscription, so
                # re-rooting it (with its whole subtree) under the newcomer
                # keeps the forest's covering invariant.
                self._forest.reparent(demoted.id, subscription.id)
            return
        coverer_id = self._single_coverer(decision)
        if coverer_id is not None and coverer_id in self._forest:
            self._forest.add_covered(subscription, coverer_id)
        else:
            self._group_covered.append(subscription)

    def _single_coverer(self, decision: StoreDecision) -> Optional[str]:
        """Identifier of a subscription that pair-wise covers the newcomer."""
        subscription = decision.subscription
        for candidate_id in decision.covered_by:
            candidate = self.store.find(candidate_id)
            if candidate is not None and candidate.covers(subscription):
                return candidate_id
        return None

    def _rebuild_forest(self) -> None:
        self._forest = CoverForest()
        self._group_covered = []
        for active in self.store.active:
            self._forest.add_root(active)
        for covered in self.store.covered:
            parent_id = None
            for candidate_id in self.store.cover_links.get(covered.id, ()):
                candidate = self.store.find(candidate_id)
                if (
                    candidate is not None
                    and candidate_id in self._forest
                    and candidate.covers(covered)
                ):
                    parent_id = candidate_id
                    break
            if parent_id is not None:
                self._forest.add_covered(covered, parent_id)
            else:
                self._group_covered.append(covered)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active_subscriptions(self) -> Tuple[Subscription, ...]:
        """Active (uncovered) subscriptions."""
        return self.store.active

    @property
    def covered_subscriptions(self) -> Tuple[Subscription, ...]:
        """Covered (suppressed) subscriptions."""
        return self.store.covered

    def __len__(self) -> int:
        return self.store.total_count

    # ------------------------------------------------------------------
    # Matching (Algorithm 5)
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> MatchResult:
        """Match a publication following Algorithm 5."""
        self.stats["publications"] += 1
        matched: List[Subscription] = []
        active_tests = 0
        matched_active_ids: List[str] = []
        for subscription in self.store.active:
            active_tests += 1
            if subscription.contains_point(publication.values):
                matched.append(subscription)
                matched_active_ids.append(subscription.id)

        covered_tests = 0
        if matched:
            if self.use_cover_forest:
                below, tests = self._forest.match_below(
                    publication, matched_active_ids
                )
                covered_tests += tests
                matched.extend(below)
                for subscription in self._group_covered:
                    covered_tests += 1
                    if subscription.contains_point(publication.values):
                        matched.append(subscription)
            else:
                for subscription in self.store.covered:
                    covered_tests += 1
                    if subscription.contains_point(publication.values):
                        matched.append(subscription)

        subscribers = tuple(
            dict.fromkeys(
                subscription.subscriber
                for subscription in matched
                if subscription.subscriber is not None
            )
        )
        self.stats["notifications"] += len(subscribers)
        self.stats["active_tests"] += active_tests
        self.stats["covered_tests"] += covered_tests
        return MatchResult(
            publication=publication,
            matched=tuple(matched),
            subscribers=subscribers,
            active_tests=active_tests,
            covered_tests=covered_tests,
        )

    def match_all(self, publications: Iterable[Publication]) -> List[MatchResult]:
        """Match a stream of publications."""
        return [self.match(publication) for publication in publications]
