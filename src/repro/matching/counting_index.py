"""Counting-algorithm matching index.

The counting algorithm (Yan & Garcia-Molina, referenced as the ancestor of
most deterministic matchers in Section 7) evaluates every attribute
independently: for each attribute it determines which subscriptions'
constraints are satisfied by the publication's value and increments a
per-subscription counter; a subscription matches when its counter reaches
the number of attributes.

This implementation keeps per-attribute bound arrays and evaluates each
attribute with vectorised comparisons, which is the natural NumPy
realisation of the counting strategy.  Maintenance is *incremental*:
``add`` appends a row into a geometrically grown bound matrix and
``remove`` tombstones the row in an alive mask; tombstones are compacted
away (preserving insertion order) once they rival the live rows, so
neither operation ever rebuilds the index and a match is a single
vectorised pass over at most ``2 × live`` rows.  ``match_batch`` stacks a
burst of publications into one comparison, amortising the per-call array
setup.

The index serves as a deterministic baseline for the matching
micro-benchmarks, as an independent test oracle for the matching engine,
and as the storage behind the engine's ``counting`` matcher backend
(:mod:`repro.matching.backends`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.model.errors import ValidationError
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["CountingIndex"]

#: smallest array capacity allocated (and smallest tombstone debt compacted)
_MIN_CAPACITY = 8
#: bound on the boolean workspace of one batched match, in array cells
_BATCH_CELL_BUDGET = 4_000_000


class CountingIndex:
    """Vectorised counting-algorithm index over a fixed schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._lows = np.empty((0, schema.m), dtype=float)
        self._highs = np.empty((0, schema.m), dtype=float)
        self._alive = np.empty(0, dtype=bool)
        #: rows in use, tombstones included
        self._size = 0
        self._dead = 0
        self._subscriptions: List[Optional[Subscription]] = []
        self._rows: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> None:
        """Index a subscription (appends one row; never rebuilds)."""
        if subscription.schema != self.schema:
            raise ValidationError("subscription schema does not match the index")
        if subscription.id in self._rows:
            raise ValidationError(
                f"subscription {subscription.id!r} is already indexed"
            )
        row = self._size
        if row == len(self._alive):
            self._grow()
        self._lows[row] = subscription.lows
        self._highs[row] = subscription.highs
        self._alive[row] = True
        self._subscriptions.append(subscription)
        self._rows[subscription.id] = row
        self._size += 1
        self._on_add(row)

    def add_all(self, subscriptions: Sequence[Subscription]) -> None:
        """Index many subscriptions at once."""
        for subscription in subscriptions:
            self.add(subscription)

    def remove(self, subscription_id: str) -> bool:
        """Remove a subscription by identifier (tombstones its row)."""
        row = self._rows.pop(subscription_id, None)
        if row is None:
            return False
        self._on_remove(row)
        self._alive[row] = False
        self._subscriptions[row] = None
        self._dead += 1
        if self._dead >= _MIN_CAPACITY and 2 * self._dead >= self._size:
            self._compact()
        return True

    def _grow(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * len(self._alive))
        lows = np.empty((capacity, self.schema.m), dtype=float)
        highs = np.empty((capacity, self.schema.m), dtype=float)
        alive = np.zeros(capacity, dtype=bool)
        lows[: self._size] = self._lows[: self._size]
        highs[: self._size] = self._highs[: self._size]
        alive[: self._size] = self._alive[: self._size]
        self._lows, self._highs, self._alive = lows, highs, alive

    def _compact(self) -> None:
        """Drop tombstoned rows, preserving the insertion order of the rest."""
        keep = np.nonzero(self._alive[: self._size])[0]
        live = int(keep.size)
        capacity = max(_MIN_CAPACITY, live)
        lows = np.empty((capacity, self.schema.m), dtype=float)
        highs = np.empty((capacity, self.schema.m), dtype=float)
        alive = np.zeros(capacity, dtype=bool)
        lows[:live] = self._lows[keep]
        highs[:live] = self._highs[keep]
        alive[:live] = True
        subscriptions = [self._subscriptions[int(i)] for i in keep]
        self._lows, self._highs, self._alive = lows, highs, alive
        self._subscriptions = subscriptions
        self._rows = {s.id: i for i, s in enumerate(subscriptions)}
        self._size = live
        self._dead = 0
        self._on_compact()

    # Hooks for subclasses that keep per-attribute statistics.
    def _on_add(self, row: int) -> None:
        pass

    def _on_remove(self, row: int) -> None:
        pass

    def _on_compact(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> List[Subscription]:
        """Return every indexed subscription matching ``publication``."""
        if publication.schema != self.schema:
            raise ValidationError("publication schema does not match the index")
        if not self._rows:
            return []
        values = publication.values
        lows = self._lows[: self._size]
        highs = self._highs[: self._size]
        satisfied = (lows <= values) & (values <= highs)
        hits = np.nonzero(satisfied.all(axis=1) & self._alive[: self._size])[0]
        return [self._subscriptions[int(i)] for i in hits]

    def match_batch(
        self, publications: Sequence[Publication]
    ) -> List[List[Subscription]]:
        """Match a burst of publications in one (chunked) vectorised pass.

        Equivalent to ``[self.match(p) for p in publications]`` but the
        bound arrays are set up once and compared against the whole burst,
        chunked so the boolean workspace stays within a fixed budget.
        """
        publications = list(publications)
        for publication in publications:
            if publication.schema != self.schema:
                raise ValidationError(
                    "publication schema does not match the index"
                )
        if not self._rows:
            return [[] for _ in publications]
        rows = self._size
        lows = self._lows[:rows][np.newaxis, :, :]
        highs = self._highs[:rows][np.newaxis, :, :]
        alive = self._alive[:rows]
        chunk = max(1, _BATCH_CELL_BUDGET // max(1, rows * self.schema.m))
        results: List[List[Subscription]] = []
        for start in range(0, len(publications), chunk):
            batch = publications[start : start + chunk]
            values = np.stack([p.values for p in batch])[:, np.newaxis, :]
            satisfied = (lows <= values) & (values <= highs)
            ok = satisfied.all(axis=2) & alive
            for i in range(len(batch)):
                hits = np.nonzero(ok[i])[0]
                results.append([self._subscriptions[int(j)] for j in hits])
        return results

    def match_count(self, publication: Publication) -> int:
        """Number of matching subscriptions (cheaper than materialising)."""
        return len(self.match(publication))

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._rows
