"""Counting-algorithm matching index.

The counting algorithm (Yan & Garcia-Molina, referenced as the ancestor of
most deterministic matchers in Section 7) evaluates every attribute
independently: for each attribute it determines which subscriptions'
constraints are satisfied by the publication's value and increments a
per-subscription counter; a subscription matches when its counter reaches
the number of attributes.

This implementation keeps per-attribute bound arrays and evaluates each
attribute with vectorised comparisons, which is the natural NumPy
realisation of the counting strategy.  It serves as a deterministic
baseline for the matching micro-benchmarks and as an independent test
oracle for the matching engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.errors import ValidationError
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["CountingIndex"]


class CountingIndex:
    """Vectorised counting-algorithm index over a fixed schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._subscriptions: List[Subscription] = []
        self._lows: Optional[np.ndarray] = None
        self._highs: Optional[np.ndarray] = None
        self._dirty = False

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> None:
        """Index a subscription."""
        if subscription.schema != self.schema:
            raise ValidationError("subscription schema does not match the index")
        self._subscriptions.append(subscription)
        self._dirty = True

    def add_all(self, subscriptions: Sequence[Subscription]) -> None:
        """Index many subscriptions at once."""
        for subscription in subscriptions:
            self.add(subscription)

    def remove(self, subscription_id: str) -> bool:
        """Remove a subscription by identifier."""
        for index, subscription in enumerate(self._subscriptions):
            if subscription.id == subscription_id:
                del self._subscriptions[index]
                self._dirty = True
                return True
        return False

    def _rebuild(self) -> None:
        if self._subscriptions:
            self._lows = np.vstack([s.lows for s in self._subscriptions])
            self._highs = np.vstack([s.highs for s in self._subscriptions])
        else:
            self._lows = np.empty((0, self.schema.m), dtype=float)
            self._highs = np.empty((0, self.schema.m), dtype=float)
        self._dirty = False

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> List[Subscription]:
        """Return every indexed subscription matching ``publication``."""
        if publication.schema != self.schema:
            raise ValidationError("publication schema does not match the index")
        if self._dirty or self._lows is None:
            self._rebuild()
        if not self._subscriptions:
            return []
        values = publication.values[np.newaxis, :]
        satisfied = (self._lows <= values) & (values <= self._highs)
        counts = satisfied.sum(axis=1)
        hits = np.nonzero(counts == self.schema.m)[0]
        return [self._subscriptions[i] for i in hits]

    def match_count(self, publication: Publication) -> int:
        """Number of matching subscriptions (cheaper than materialising)."""
        return len(self.match(publication))

    def __len__(self) -> int:
        return len(self._subscriptions)
