"""Pluggable matcher backends — the engine's vectorisation seam.

:class:`~repro.matching.engine.MatchingEngine` (and the broker layer's
:class:`~repro.broker.routing.RoutingTable`) do not scan subscription
lists themselves; they delegate every membership test to a
:class:`MatcherBackend`.  A backend owns one *set* of subscriptions — the
engine keeps two instances, one for the active set and one for the
covered set — and answers ``match_candidates``: which stored
subscriptions match a publication, and how many membership tests were
charged for the answer.

Three backends are provided, each descending from a family of matchers
the paper surveys in Section 7 (related work):

``linear``
    Algorithm 5's own mechanism: a straight Python scan that charges one
    test per stored subscription.  It is the seed engine's behaviour,
    kept bit-for-bit as the oracle the vectorised backends are
    differentially tested against.
``counting``
    The counting algorithm of Yan & Garcia-Molina — the ancestor of the
    "deterministic matcher" family in Section 7 — realised as one
    vectorised NumPy pass over per-attribute bound arrays
    (:class:`~repro.matching.counting_index.CountingIndex`).
``selectivity``
    Carzaniga & Wolf's selectivity-ordered forwarding tables (also
    Section 7): attributes are evaluated most-selective-first so the
    candidate set collapses early
    (:class:`~repro.matching.selectivity_index.SelectivityIndex`).

All backends return candidates in insertion order, so every consumer
observes the same candidate stream whichever backend is plugged in; only
the amount of per-publication work differs.  The vectorised backends
charge ``tests = len(backend)`` (one logical test per candidate row
consulted), which equals the linear backend's count for a flat scan.

Backends are deliberately schema-agnostic: vectorised storage is
partitioned per schema on first sight of a subscription, so a backend can
index a routing table that (in principle) carries mixed-schema traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.matching.counting_index import CountingIndex
from repro.matching.selectivity_index import SelectivityIndex
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = [
    "BACKEND_NAMES",
    "CountingBackend",
    "LinearBackend",
    "MatcherBackend",
    "SelectivityBackend",
    "make_backend",
]

#: names accepted by :func:`make_backend` (and everything layered above it:
#: ``MatchingEngine(backend=…)``, ``RoutingTable(matcher_backend=…)``,
#: ``ScenarioSpec.engine_backend``, ``repro-scenarios run --engine-backend``)
BACKEND_NAMES = ("linear", "counting", "selectivity")

#: candidate subscriptions plus the membership tests charged for them
MatchCandidates = Tuple[List[Subscription], int]


class MatcherBackend(ABC):
    """Incremental membership index over one set of subscriptions."""

    name: str = "?"

    @abstractmethod
    def add(self, subscription: Subscription) -> None:
        """Index a subscription; raises if its identifier is already held."""

    @abstractmethod
    def remove(self, subscription_id: str) -> bool:
        """Drop a subscription; returns ``False`` when it was unknown."""

    @abstractmethod
    def match_candidates(self, publication: Publication) -> MatchCandidates:
        """``(matching subscriptions in insertion order, tests charged)``."""

    def match_batch(
        self,
        publications: Sequence[Publication],
        values: Optional[np.ndarray] = None,
    ) -> List[MatchCandidates]:
        """Match a burst of publications; equals mapping ``match_candidates``.

        Vectorised backends override this to amortise array setup across
        the burst.  ``values`` optionally carries the publications' points
        pre-stacked as a ``(len(publications), m)`` array (e.g. a
        :class:`~repro.broker.messages.PublicationBatchMessage`'s
        structure-of-arrays view) so a backend that consumes the stacked
        form does not restack it.
        """
        return [self.match_candidates(p) for p in publications]

    def add_all(self, subscriptions: Iterable[Subscription]) -> None:
        """Index many subscriptions in order."""
        for subscription in subscriptions:
            self.add(subscription)

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __contains__(self, subscription_id: object) -> bool: ...


class LinearBackend(MatcherBackend):
    """Algorithm 5's flat scan — the seed engine's behaviour, kept as oracle."""

    name = "linear"

    def __init__(self) -> None:
        self._subscriptions: Dict[str, Subscription] = {}
        #: cached ``(subscriptions, lows, highs)`` bounds stack for the
        #: batched path; dropped on any add/remove (and left ``None`` for
        #: mixed-arity subscription sets, which fall back to the scan)
        self._stacked: Optional[Tuple[Tuple[Subscription, ...], np.ndarray, np.ndarray]] = None
        self._stacked_valid = False

    def add(self, subscription: Subscription) -> None:
        if subscription.id in self._subscriptions:
            raise ValueError(
                f"subscription {subscription.id!r} is already indexed"
            )
        self._subscriptions[subscription.id] = subscription
        self._stacked_valid = False

    def remove(self, subscription_id: str) -> bool:
        removed = self._subscriptions.pop(subscription_id, None) is not None
        if removed:
            self._stacked_valid = False
        return removed

    def match_candidates(self, publication: Publication) -> MatchCandidates:
        values = publication.values_list
        matched = [
            subscription
            for subscription in self._subscriptions.values()
            if subscription.contains_values(values)
        ]
        return matched, len(self._subscriptions)

    def _bounds_stack(
        self,
    ) -> Optional[Tuple[Tuple[Subscription, ...], np.ndarray, np.ndarray]]:
        """Stored subscriptions with their bounds stacked ``(k, m)``.

        ``None`` when the stored subscriptions do not share one attribute
        count (the flat scan handles mixed sets; the matrix cannot).
        """
        if not self._stacked_valid:
            subscriptions = tuple(self._subscriptions.values())
            arity = {subscription.m for subscription in subscriptions}
            if len(arity) == 1:
                self._stacked = (
                    subscriptions,
                    np.array([s.lows for s in subscriptions]),
                    np.array([s.highs for s in subscriptions]),
                )
            else:
                self._stacked = None
            self._stacked_valid = True
        return self._stacked

    def match_batch(
        self,
        publications: Sequence[Publication],
        values: Optional[np.ndarray] = None,
    ) -> List[MatchCandidates]:
        """One broadcast containment test for the whole burst.

        The stored bounds are stacked once (cached across bursts until the
        stored set mutates) and every publication of the burst is tested
        against every subscription in a single ``(B, k, m)`` comparison.
        Results — candidate order (insertion order) and the per-publication
        test charge — are identical to mapping :meth:`match_candidates`.
        """
        publications = list(publications)
        if len(publications) < 2 or not self._subscriptions:
            return [self.match_candidates(p) for p in publications]
        stacked = self._bounds_stack()
        if stacked is None:
            return [self.match_candidates(p) for p in publications]
        subscriptions, lows, highs = stacked
        m = lows.shape[1]
        if values is None:
            if any(p.values.shape != (m,) for p in publications):
                return [self.match_candidates(p) for p in publications]
            values = np.array([p.values for p in publications])
        points = values[:, np.newaxis, :]
        hit_matrix = (
            ((lows <= points) & (points <= highs)).all(axis=2)
        )
        tests = len(subscriptions)
        results: List[MatchCandidates] = []
        for row in hit_matrix:
            hits = np.nonzero(row)[0]
            results.append(([subscriptions[i] for i in hits], tests))
        return results

    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._subscriptions


class _VectorisedBackend(MatcherBackend):
    """Shared plumbing of the NumPy-index-backed backends.

    Keeps one dense index per schema (created on first sight) plus an
    id→schema map, so mixed-schema subscription sets degrade gracefully
    instead of erroring.
    """

    _index_class: Type[CountingIndex]

    def __init__(self) -> None:
        self._indexes: Dict[Schema, CountingIndex] = {}
        self._schema_of: Dict[str, Schema] = {}

    def add(self, subscription: Subscription) -> None:
        if subscription.id in self._schema_of:
            raise ValueError(
                f"subscription {subscription.id!r} is already indexed"
            )
        index = self._indexes.get(subscription.schema)
        if index is None:
            index = self._index_class(subscription.schema)
            self._indexes[subscription.schema] = index
        index.add(subscription)
        self._schema_of[subscription.id] = subscription.schema

    def remove(self, subscription_id: str) -> bool:
        schema = self._schema_of.pop(subscription_id, None)
        if schema is None:
            return False
        return self._indexes[schema].remove(subscription_id)

    def match_candidates(self, publication: Publication) -> MatchCandidates:
        index = self._indexes.get(publication.schema)
        if index is None:
            return [], 0
        return index.match(publication), len(index)

    def match_batch(
        self,
        publications: Sequence[Publication],
        values: Optional[np.ndarray] = None,
    ) -> List[MatchCandidates]:
        publications = list(publications)
        results: List[MatchCandidates] = [([], 0) for _ in publications]
        by_schema: Dict[Schema, List[int]] = {}
        for position, publication in enumerate(publications):
            by_schema.setdefault(publication.schema, []).append(position)
        for schema, positions in by_schema.items():
            index = self._indexes.get(schema)
            if index is None:
                continue
            tests = len(index)
            batch = index.match_batch([publications[i] for i in positions])
            for position, matched in zip(positions, batch):
                results[position] = (matched, tests)
        return results

    def __len__(self) -> int:
        return len(self._schema_of)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._schema_of


class CountingBackend(_VectorisedBackend):
    """Vectorised counting-algorithm backend (Yan & Garcia-Molina)."""

    name = "counting"
    _index_class = CountingIndex


class SelectivityBackend(_VectorisedBackend):
    """Selectivity-ordered elimination backend (Carzaniga & Wolf)."""

    name = "selectivity"
    _index_class = SelectivityIndex


def make_backend(name: str) -> MatcherBackend:
    """Instantiate a matcher backend by registry name."""
    if name == "linear":
        return LinearBackend()
    if name == "counting":
        return CountingBackend()
    if name == "selectivity":
        return SelectivityBackend()
    raise ValueError(
        f"unknown matcher backend {name!r}; expected one of {BACKEND_NAMES}"
    )
