"""Multi-level cover index (Section 4.4, optimisation).

The paper suggests organising the covered subscriptions "by remembering for
each element the subscription(s) that cover it", producing a multi-level
structure in which a publication is checked against a covered subscription
only when one of its coverers matched.

:class:`CoverForest` implements that structure as a forest: active
subscriptions are roots, and every covered subscription is attached as a
child of one subscription that covers it (its *primary coverer*).  Matching
walks the forest top-down and prunes entire subtrees whose root does not
match — sound because a publication matching a covered subscription
necessarily matches every subscription that covers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.publications import Publication
from repro.model.subscriptions import Subscription

__all__ = ["CoverForest"]


@dataclass
class _Node:
    """One subscription and the covered subscriptions attached below it."""

    subscription: Subscription
    children: List["_Node"] = field(default_factory=list)


class CoverForest:
    """Forest of subscriptions ordered by the covering relation."""

    def __init__(self) -> None:
        self._roots: Dict[str, _Node] = {}
        self._nodes: Dict[str, _Node] = {}
        self._parent: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_root(self, subscription: Subscription) -> None:
        """Insert an active (uncovered) subscription as a root."""
        if subscription.id in self._nodes:
            raise ValueError(f"subscription {subscription.id!r} already indexed")
        node = _Node(subscription)
        self._roots[subscription.id] = node
        self._nodes[subscription.id] = node
        self._parent[subscription.id] = None

    def add_covered(
        self, subscription: Subscription, coverer_id: str
    ) -> None:
        """Attach a covered subscription below its primary coverer.

        The coverer must already be indexed (as a root or as another covered
        subscription — the structure may be arbitrarily deep).
        """
        if subscription.id in self._nodes:
            raise ValueError(f"subscription {subscription.id!r} already indexed")
        parent = self._nodes.get(coverer_id)
        if parent is None:
            raise KeyError(f"unknown coverer {coverer_id!r}")
        node = _Node(subscription)
        parent.children.append(node)
        self._nodes[subscription.id] = node
        self._parent[subscription.id] = coverer_id

    def reparent(self, subscription_id: str, new_parent_id: Optional[str]) -> None:
        """Move a subscription (with its whole subtree) under a new parent.

        ``new_parent_id=None`` turns the subscription into a root.  Used by
        the matching engine when an active subscription is demoted below a
        newly arrived subscription that covers it.
        """
        node = self._nodes.get(subscription_id)
        if node is None:
            raise KeyError(f"unknown subscription {subscription_id!r}")
        if new_parent_id is not None and new_parent_id not in self._nodes:
            raise KeyError(f"unknown parent {new_parent_id!r}")
        old_parent_id = self._parent.get(subscription_id)
        if old_parent_id is None:
            self._roots.pop(subscription_id, None)
        else:
            old_parent = self._nodes[old_parent_id]
            old_parent.children = [
                child for child in old_parent.children
                if child.subscription.id != subscription_id
            ]
        if new_parent_id is None:
            self._roots[subscription_id] = node
            self._parent[subscription_id] = None
        else:
            self._nodes[new_parent_id].children.append(node)
            self._parent[subscription_id] = new_parent_id

    def remove_splice(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove one node, splicing its children onto its parent.

        Covering is transitive, so re-attaching the children (with their
        whole subtrees) below the removed node's parent preserves the
        forest invariant without touching any other node — this is the
        O(children) alternative to rebuilding the forest on removal.

        When the removed node was a *root*, the children have no
        grandparent to splice onto and become roots themselves; those
        subscriptions are returned so the caller can decide whether root
        status (i.e. active status) is semantically right for them.
        """
        node = self._nodes.pop(subscription_id, None)
        if node is None:
            return ()
        parent_id = self._parent.pop(subscription_id, None)
        if parent_id is None:
            self._roots.pop(subscription_id, None)
            for child in node.children:
                self._roots[child.subscription.id] = child
                self._parent[child.subscription.id] = None
            return tuple(child.subscription for child in node.children)
        parent = self._nodes[parent_id]
        parent.children = [
            child for child in parent.children
            if child.subscription.id != subscription_id
        ]
        for child in node.children:
            parent.children.append(child)
            self._parent[child.subscription.id] = parent_id
        return ()

    def extract_subtree(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Detach a node and its whole subtree from the forest.

        Returns every removed subscription (the node first, then its
        descendants in walk order).  Used when a subscription stops having
        a single coverer in the forest: the subtree members stay covered
        by the active *union* and move to the engine's flat group bucket.
        """
        node = self._nodes.get(subscription_id)
        if node is None:
            raise KeyError(f"unknown subscription {subscription_id!r}")
        parent_id = self._parent.get(subscription_id)
        if parent_id is None:
            self._roots.pop(subscription_id, None)
        else:
            parent = self._nodes[parent_id]
            parent.children = [
                child for child in parent.children
                if child.subscription.id != subscription_id
            ]
        members: List[Subscription] = []
        stack = [node]
        while stack:
            current = stack.pop()
            members.append(current.subscription)
            self._nodes.pop(current.subscription.id, None)
            self._parent.pop(current.subscription.id, None)
            stack.extend(current.children)
        return tuple(members)

    def remove(self, subscription_id: str) -> Tuple[Subscription, ...]:
        """Remove a subscription; its children are re-rooted and returned.

        The caller (typically :class:`~repro.core.store.SubscriptionStore`)
        decides whether the orphaned children become active or get
        re-attached elsewhere.
        """
        node = self._nodes.pop(subscription_id, None)
        if node is None:
            return ()
        parent_id = self._parent.pop(subscription_id, None)
        if parent_id is None:
            self._roots.pop(subscription_id, None)
        else:
            parent = self._nodes.get(parent_id)
            if parent is not None:
                parent.children = [
                    child for child in parent.children
                    if child.subscription.id != subscription_id
                ]
        orphans = tuple(child.subscription for child in node.children)
        for child in node.children:
            self._nodes.pop(child.subscription.id, None)
            self._parent.pop(child.subscription.id, None)
            self._forget_subtree(child)
        return orphans

    def _forget_subtree(self, node: _Node) -> None:
        for child in node.children:
            self._nodes.pop(child.subscription.id, None)
            self._parent.pop(child.subscription.id, None)
            self._forget_subtree(child)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def roots(self) -> Tuple[Subscription, ...]:
        """The active subscriptions at the top of the forest."""
        return tuple(node.subscription for node in self._roots.values())

    def depth(self, subscription_id: str) -> int:
        """Depth of a subscription in the forest (roots have depth 0)."""
        depth = 0
        current = self._parent.get(subscription_id)
        if subscription_id not in self._nodes:
            raise KeyError(f"unknown subscription {subscription_id!r}")
        while current is not None:
            depth += 1
            current = self._parent.get(current)
        return depth

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._nodes

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, publication: Publication) -> Tuple[List[Subscription], int]:
        """Return the matching subscriptions and the number of tests done.

        The walk only descends into children whose parent matched, which is
        where the saving over a flat scan of the covered set comes from.
        """
        matched: List[Subscription] = []
        tests = 0
        values = publication.values_list
        stack: List[_Node] = list(self._roots.values())
        while stack:
            node = stack.pop()
            tests += 1
            if node.subscription.contains_values(values):
                matched.append(node.subscription)
                stack.extend(node.children)
        return matched, tests

    def match_below(
        self, publication: Publication, root_ids: Iterable[str]
    ) -> Tuple[List[Subscription], int]:
        """Match only the subscriptions strictly below the given roots.

        Used by the matching engine after it has already tested the active
        set: the walk starts at the children of the roots known to match and
        descends only through matching nodes, so every covered subscription
        is tested at most once and only when one of its (transitive)
        coverers matched.
        """
        matched: List[Subscription] = []
        tests = 0
        values = publication.values_list
        stack: List[_Node] = []
        for root_id in root_ids:
            node = self._roots.get(root_id)
            if node is not None:
                stack.extend(node.children)
        while stack:
            node = stack.pop()
            tests += 1
            if node.subscription.contains_values(values):
                matched.append(node.subscription)
                stack.extend(node.children)
        return matched, tests
