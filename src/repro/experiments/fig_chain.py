"""Equation 2 / Proposition 5 — delivery probability along a broker chain.

The paper analyses (without plotting) the probability that a matching
publication is still found when a subscription was erroneously withheld at
the head of a chain of brokers.  This experiment sweeps the chain length
and the per-broker publication probability ``rho``, reporting both the
closed form of Eq. 2 and a Monte Carlo simulation of the same process, so
the closed form can be validated and the sensitivity to ``rho`` and the
decision error inspected.
"""

from __future__ import annotations

from typing import Dict

from repro.broker.chain import ChainModel
from repro.experiments.config import ChainConfig
from repro.experiments.series import ResultTable
from repro.utils.rng import ensure_rng

__all__ = ["run_chain_delivery"]


def run_chain_delivery(config: ChainConfig = ChainConfig()) -> Dict[str, ResultTable]:
    """Run the Eq. 2 sweep.

    Returns ``{"eq2": …}`` with, for every ``rho``, an analytic and a
    simulated series over the chain length.
    """
    rng = ensure_rng(config.seed)
    table = ResultTable(
        title="Eq. 2 — probability of finding the matching publication",
        x_label="brokers",
        notes=(
            f"rho_w={config.rho_w:g}, d={config.d:g}, "
            f"simulation runs={config.simulation_runs}"
        ),
    )
    for length in config.chain_lengths:
        row: Dict[str, float] = {}
        for rho in config.rho_values:
            model = ChainModel(
                rho=rho, rho_w=config.rho_w, d=config.d, brokers=length
            )
            row[f"rho={rho:g} (analytic)"] = model.delivery_probability()
            row[f"rho={rho:g} (simulated)"] = model.simulate(
                runs=config.simulation_runs, rng=rng
            )
        table.add_row(length, row)
    return {"eq2": table}
