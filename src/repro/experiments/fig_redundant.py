"""Figures 6 and 7 — the redundant covering scenario (Section 6.1).

The tested subscription ``s`` is jointly covered by the first ~20 % of the
generated set while the remaining ~80 % only partly cover it and are
therefore redundant.  The experiment measures

* **Figure 6** — the fraction of redundant subscriptions that the MCS
  reduction removes, and
* **Figure 7** — the theoretical number of RSPC trials ``d`` (plotted as
  ``log10``) with and without the MCS reduction,

for ``k`` from 10 to 310 and ``m`` ∈ {10, 15, 20} at δ = 10⁻¹⁰.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.conflict_table import ConflictTable
from repro.core.error_model import required_iterations
from repro.core.mcs import minimized_cover_set
from repro.core.witness import estimate_smallest_witness
from repro.experiments.config import RedundantCoveringConfig
from repro.experiments.series import ResultTable
from repro.model.schema import Schema
from repro.utils.rng import ensure_rng
from repro.workloads.scenarios import redundant_covering_scenario

__all__ = ["run_redundant_covering"]


def _log10_clamped(value: float) -> float:
    """``log10`` with ``d <= 1`` mapped to 0 and ``inf`` kept as ``inf``."""
    if math.isinf(value):
        return math.inf
    return math.log10(max(value, 1.0))


def run_redundant_covering(
    config: RedundantCoveringConfig = RedundantCoveringConfig(),
) -> Dict[str, ResultTable]:
    """Run the redundant covering sweep.

    Returns ``{"fig6": …, "fig7": …}`` where fig6 holds the redundant-set
    reduction ratio per ``m`` and fig7 the mean ``log10(d)`` per ``m`` with
    and without MCS.
    """
    rng = ensure_rng(config.seed)
    fig6 = ResultTable(
        title="Figure 6 — redundant-subscription reduction (redundant covering)",
        x_label="k",
        notes=f"delta={config.delta:g}, runs/point={config.runs_per_point}",
    )
    fig7 = ResultTable(
        title="Figure 7 — log10(theoretical d), redundant covering",
        x_label="k",
        notes=f"delta={config.delta:g}, runs/point={config.runs_per_point}",
    )

    for k in config.k_values:
        fig6_row: Dict[str, float] = {}
        fig7_row: Dict[str, float] = {}
        for m in config.m_values:
            schema = Schema.uniform_integer(m, 0, config.domain_size)
            reductions = []
            log_d_plain = []
            log_d_mcs = []
            for _ in range(config.runs_per_point):
                instance = redundant_covering_scenario(
                    schema,
                    k,
                    rng,
                    covering_fraction=config.covering_fraction,
                )
                table = ConflictTable(instance.subscription, instance.candidates)
                reduction = minimized_cover_set(table)

                redundant = set(instance.redundant_ids)
                removed = {
                    instance.candidates[row].id for row in reduction.removed_rows
                }
                if redundant:
                    reductions.append(len(removed & redundant) / len(redundant))

                plain = estimate_smallest_witness(table)
                log_d_plain.append(
                    _log10_clamped(required_iterations(config.delta, plain.rho_w))
                    if plain.rho_w > 0
                    else math.inf
                )
                if reduction.kept_rows:
                    kept = estimate_smallest_witness(table, list(reduction.kept_rows))
                    log_d_mcs.append(
                        _log10_clamped(required_iterations(config.delta, kept.rho_w))
                        if kept.rho_w > 0
                        else math.inf
                    )
                else:
                    log_d_mcs.append(0.0)
            fig6_row[f"m={m}"] = _mean(reductions)
            fig7_row[f"m={m}"] = _mean(log_d_plain)
            fig7_row[f"m={m};MCS"] = _mean(log_d_mcs)
        fig6.add_row(k, fig6_row)
        fig7.add_row(k, fig7_row)
    return {"fig6": fig6, "fig7": fig7}


def _mean(values) -> float:
    finite = [value for value in values if not math.isinf(value)]
    if not values:
        return float("nan")
    if not finite:
        return math.inf
    return sum(finite) / len(finite)
