"""Experiment harness regenerating the paper's evaluation (Section 6).

Each ``fig_*`` module defines the workload, the sweep and the measurement
of one or more figures, returning :class:`~repro.experiments.series.ResultTable`
objects that print the same rows/series the paper reports.  The
``benchmarks/`` directory wraps these runners in pytest-benchmark targets;
the ``paper_config()`` presets use the paper's full parameters while the
default configs are sized for quick laptop runs.
"""

from repro.experiments.config import (
    ChainConfig,
    ComparisonConfig,
    ExtremeNonCoverConfig,
    NonCoverConfig,
    RedundantCoveringConfig,
)
from repro.experiments.fig_chain import run_chain_delivery
from repro.experiments.fig_comparison import run_comparison
from repro.experiments.fig_extreme import run_extreme_non_cover
from repro.experiments.fig_noncover import run_non_cover
from repro.experiments.fig_redundant import run_redundant_covering
from repro.experiments.series import ResultTable, Series

__all__ = [
    "ChainConfig",
    "ComparisonConfig",
    "ExtremeNonCoverConfig",
    "NonCoverConfig",
    "RedundantCoveringConfig",
    "ResultTable",
    "Series",
    "run_chain_delivery",
    "run_comparison",
    "run_extreme_non_cover",
    "run_non_cover",
    "run_redundant_covering",
]
