"""Figures 11 and 12 — the extreme non-cover scenario (Section 6.3).

The subscription set covers ``s`` entirely except for a narrow slice over
one attribute whose relative width (the *gap size*) is swept from 0.5 % to
4.5 %.  For error probabilities δ ∈ {10⁻³, 10⁻⁶, 10⁻¹⁰} the experiment
measures

* **Figure 11** — the average number of RSPC guesses actually performed
  before answering, and
* **Figure 12** — the number of false decisions (a non-covered subscription
  declared covered, i.e. wrongly withheld) over the configured number of
  runs.
"""

from __future__ import annotations

from typing import Dict

from repro.core.subsumption import SubsumptionChecker
from repro.experiments.config import ExtremeNonCoverConfig
from repro.experiments.series import ResultTable
from repro.model.schema import Schema
from repro.utils.rng import ensure_rng
from repro.workloads.scenarios import extreme_non_cover_scenario

__all__ = ["run_extreme_non_cover"]


def run_extreme_non_cover(
    config: ExtremeNonCoverConfig = ExtremeNonCoverConfig(),
) -> Dict[str, ResultTable]:
    """Run the extreme non-cover sweep.

    Returns ``{"fig11": …, "fig12": …}`` with one series per error
    probability; Figure 12 additionally reports the false-decision counts
    normalised to the paper's 3000 runs for easier comparison.
    """
    rng = ensure_rng(config.seed)
    schema = Schema.uniform_integer(config.m, 0, config.domain_size)

    fig11 = ResultTable(
        title="Figure 11 — actual RSPC iterations vs gap size (extreme non cover)",
        x_label="gap_%",
        notes=f"k={config.k}, m={config.m}, runs/point={config.runs_per_point}",
    )
    fig12 = ResultTable(
        title="Figure 12 — false decisions vs gap size (extreme non cover)",
        x_label="gap_%",
        notes=(
            f"k={config.k}, m={config.m}, runs/point={config.runs_per_point} "
            "(…/3000 columns are scaled to the paper's 3000 runs)"
        ),
    )

    for gap_fraction in config.gap_fractions:
        fig11_row: Dict[str, float] = {}
        fig12_row: Dict[str, float] = {}
        for delta in config.deltas:
            checker = SubsumptionChecker(
                delta=delta,
                max_iterations=config.max_iterations,
                rng=rng,
            )
            iterations = []
            false_decisions = 0
            for _ in range(config.runs_per_point):
                instance = extreme_non_cover_scenario(
                    schema, config.k, gap_fraction, rng
                )
                result = checker.check(instance.subscription, instance.candidates)
                iterations.append(result.iterations_performed)
                if result.covered:
                    false_decisions += 1
            label = f"error={delta:g}"
            fig11_row[label] = sum(iterations) / max(len(iterations), 1)
            fig12_row[label] = false_decisions
            fig12_row[f"{label}/3000"] = (
                false_decisions * 3000.0 / config.runs_per_point
            )
        fig11.add_row(gap_fraction * 100.0, fig11_row)
        fig12.add_row(gap_fraction * 100.0, fig12_row)
    return {"fig11": fig11, "fig12": fig12}
