"""Figures 13 and 14 — pair-wise vs group coverage (Section 6.4).

A stream of subscriptions with power-law popularity (Zipf attribute
selection, Pareto range centres, normal range widths) is fed into two
subscription stores: one applying the classical pair-wise covering, one
applying the paper's probabilistic group covering.  The experiment records
the growth of the *propagated* subscription set — the subscriptions that
were not declared covered on arrival and would therefore be forwarded and
stored by brokers — at regular checkpoints:

* **Figure 13** — subscription-set size versus the number of received
  subscriptions for both policies and every ``m``;
* **Figure 14** — the ratio of the group-covered set size to the pair-wise
  set size (the paper's "size ratio").
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.store import CoveringPolicyName, SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.experiments.config import ComparisonConfig
from repro.experiments.series import ResultTable
from repro.model.schema import Schema
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.workloads.comparison import ComparisonWorkload

__all__ = ["run_comparison"]


def run_comparison(config: ComparisonConfig = ComparisonConfig()) -> Dict[str, ResultTable]:
    """Run the comparison experiment.

    Returns ``{"fig13": …, "fig14": …}``; Figure 13 contains one pair-wise
    and one group series per ``m``, Figure 14 one ratio series per ``m``.
    """
    rng = ensure_rng(config.seed)
    checkpoints = list(
        range(
            config.checkpoint_every,
            config.total_subscriptions + 1,
            config.checkpoint_every,
        )
    )
    fig13 = ResultTable(
        title="Figure 13 — active subscription set size, pair-wise vs group",
        x_label="subscriptions",
        notes=f"delta={config.delta:g}",
    )
    fig14 = ResultTable(
        title="Figure 14 — group/pair-wise set size ratio",
        x_label="subscriptions",
        notes=f"delta={config.delta:g}",
    )

    per_m_results: Dict[int, Dict[str, List[float]]] = {}
    for m in config.m_values:
        workload_rng, checker_rng = spawn_rngs(rng, 2)
        schema = Schema.uniform_integer(m, 0, config.domain_size)
        workload = ComparisonWorkload(
            schema,
            attribute_skew=config.attribute_skew,
            center_skew=config.center_skew,
            width_mean_fraction=config.width_mean_fraction,
            width_std_fraction=config.width_std_fraction,
            broad_interest_probability=config.broad_interest_probability,
            constrained_fraction=config.constrained_fraction,
            rng=workload_rng,
        )
        pairwise_store = SubscriptionStore(policy=CoveringPolicyName.PAIRWISE)
        group_store = SubscriptionStore(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(
                delta=config.delta,
                max_iterations=config.max_iterations,
                rng=checker_rng,
            ),
        )
        pairwise_sizes: List[float] = []
        group_sizes: List[float] = []
        count = 0
        next_checkpoint = 0
        for subscription in workload.stream(config.total_subscriptions):
            pairwise_store.add(subscription)
            group_store.add(
                subscription.replace(subscription_id=f"{subscription.id}-g")
            )
            count += 1
            if next_checkpoint < len(checkpoints) and count == checkpoints[next_checkpoint]:
                # "Subscription set size" = subscriptions not declared
                # covered on arrival, i.e. those a broker would propagate
                # and store (the store's cumulative "forwarded" counter).
                pairwise_sizes.append(float(pairwise_store.stats["forwarded"]))
                group_sizes.append(float(group_store.stats["forwarded"]))
                next_checkpoint += 1
        per_m_results[m] = {"pairwise": pairwise_sizes, "group": group_sizes}

    for index, checkpoint in enumerate(checkpoints):
        fig13_row: Dict[str, float] = {}
        fig14_row: Dict[str, float] = {}
        for m in config.m_values:
            pairwise_sizes = per_m_results[m]["pairwise"]
            group_sizes = per_m_results[m]["group"]
            if index >= len(pairwise_sizes):
                continue
            fig13_row[f"m={m}, pair-wise"] = pairwise_sizes[index]
            fig13_row[f"m={m}, group"] = group_sizes[index]
            ratio = (
                group_sizes[index] / pairwise_sizes[index]
                if pairwise_sizes[index] > 0
                else 1.0
            )
            fig14_row[f"m={m}"] = ratio
        fig13.add_row(checkpoint, fig13_row)
        fig14.add_row(checkpoint, fig14_row)
    return {"fig13": fig13, "fig14": fig14}
