"""Figures 13 and 14 — reduction strategies side by side (Section 6.4).

A stream of subscriptions with power-law popularity (Zipf attribute
selection, Pareto range centres, normal range widths) is fed into one
subscription store per configured reduction strategy — the same registry
(:mod:`repro.core.policies`) the broker network routes with, so the
figures and the distributed system can never drift apart on policy
semantics.  The experiment records the growth of the *propagated*
subscription set — what a broker would forward and store upstream — at
regular checkpoints:

* **Figure 13** — subscription-set size versus the number of received
  subscriptions for every strategy and every ``m``;
* **Figure 14** — the ratio of each strategy's set size to the first
  (baseline) strategy's (the paper's "size ratio").

With the default configuration (``pairwise`` baseline vs ``group``) this
reproduces the paper's Figures 13/14 exactly; adding ``merging`` or
``hybrid`` to ``ComparisonConfig.strategies`` extends the comparison to
the related-work merging trade-off.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policies import ReductionPolicyName
from repro.core.store import SubscriptionStore
from repro.core.subsumption import SubsumptionChecker
from repro.experiments.config import ComparisonConfig
from repro.experiments.series import ResultTable
from repro.model.schema import Schema
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.workloads.comparison import ComparisonWorkload

__all__ = ["run_comparison"]

#: strategies that consume a seeded RSPC random stream
_RSPC_STRATEGIES = (
    ReductionPolicyName.GROUP.value,
    ReductionPolicyName.HYBRID.value,
)

#: registry name -> historical series label (the paper spells it with a
#: hyphen); unlisted strategies use their registry name verbatim
_SERIES_LABELS = {"pairwise": "pair-wise"}

#: registry name -> id suffix of the per-store subscription copies (the
#: baseline store receives the raw stream; ``-g`` is the historical
#: group-store suffix)
_ID_SUFFIXES = {
    "group": "g",
    "merging": "mg",
    "hybrid": "hy",
    "none": "no",
    "pairwise": "pw",
}


def _series_label(name: str) -> str:
    return _SERIES_LABELS.get(name, name)


def run_comparison(config: ComparisonConfig = ComparisonConfig()) -> Dict[str, ResultTable]:
    """Run the comparison experiment.

    Returns ``{"fig13": …, "fig14": …}``; Figure 13 contains one series
    per strategy and ``m``, Figure 14 one ratio series (vs the first,
    baseline strategy) per non-baseline strategy and ``m``.
    """
    strategies = [str(name) for name in config.strategies]
    if len(strategies) < 2:
        raise ValueError("the comparison needs at least two strategies")
    baseline = strategies[0]
    rng = ensure_rng(config.seed)
    checkpoints = list(
        range(
            config.checkpoint_every,
            config.total_subscriptions + 1,
            config.checkpoint_every,
        )
    )
    fig13 = ResultTable(
        title=(
            "Figure 13 — active subscription set size, "
            + " vs ".join(_series_label(name) for name in strategies)
        ),
        x_label="subscriptions",
        notes=f"delta={config.delta:g}",
    )
    fig14 = ResultTable(
        title=(
            f"Figure 14 — set size ratio vs {_series_label(baseline)}"
            if len(strategies) > 2
            else f"Figure 14 — {_series_label(strategies[1])}/"
            f"{_series_label(baseline)} set size ratio"
        ),
        x_label="subscriptions",
        notes=f"delta={config.delta:g}",
    )

    per_m_results: Dict[int, Dict[str, List[float]]] = {}
    for m in config.m_values:
        checker_count = sum(
            1 for name in strategies if name in _RSPC_STRATEGIES
        )
        streams = spawn_rngs(rng, 1 + checker_count)
        workload_rng, checker_rngs = streams[0], list(streams[1:])
        schema = Schema.uniform_integer(m, 0, config.domain_size)
        workload = ComparisonWorkload(
            schema,
            attribute_skew=config.attribute_skew,
            center_skew=config.center_skew,
            width_mean_fraction=config.width_mean_fraction,
            width_std_fraction=config.width_std_fraction,
            broad_interest_probability=config.broad_interest_probability,
            constrained_fraction=config.constrained_fraction,
            rng=workload_rng,
        )
        stores: Dict[str, SubscriptionStore] = {}
        for name in strategies:
            checker = None
            if name in _RSPC_STRATEGIES:
                checker = SubsumptionChecker(
                    delta=config.delta,
                    max_iterations=config.max_iterations,
                    rng=checker_rngs.pop(0),
                )
            stores[name] = SubscriptionStore(
                policy=name, checker=checker, merge_budget=config.merge_budget
            )
        sizes: Dict[str, List[float]] = {name: [] for name in strategies}
        count = 0
        next_checkpoint = 0
        for subscription in workload.stream(config.total_subscriptions):
            for index, name in enumerate(strategies):
                copy = (
                    subscription
                    if index == 0
                    else subscription.replace(
                        subscription_id=(
                            f"{subscription.id}-{_ID_SUFFIXES.get(name, name)}"
                        )
                    )
                )
                stores[name].add(copy)
            count += 1
            if next_checkpoint < len(checkpoints) and count == checkpoints[next_checkpoint]:
                # "Subscription set size" = what a broker would propagate
                # and store upstream: the cumulative forwarded count for
                # the covering strategies (as in the paper), the current
                # merged advertisement count for the merging ones.
                for name in strategies:
                    sizes[name].append(float(stores[name].propagated_count))
                next_checkpoint += 1
        per_m_results[m] = sizes

    for index, checkpoint in enumerate(checkpoints):
        fig13_row: Dict[str, float] = {}
        fig14_row: Dict[str, float] = {}
        for m in config.m_values:
            sizes = per_m_results[m]
            if index >= len(sizes[baseline]):
                continue
            baseline_size = sizes[baseline][index]
            for name in strategies:
                fig13_row[f"m={m}, {_series_label(name)}"] = sizes[name][index]
            for name in strategies[1:]:
                ratio = (
                    sizes[name][index] / baseline_size
                    if baseline_size > 0
                    else 1.0
                )
                key = (
                    f"m={m}"
                    if len(strategies) == 2
                    else f"m={m}, {_series_label(name)}"
                )
                fig14_row[key] = ratio
        fig13.add_row(checkpoint, fig13_row)
        fig14.add_row(checkpoint, fig14_row)
    return {"fig13": fig13, "fig14": fig14}
