"""Command-line interface for the experiment harness.

Regenerates the paper's figures from the shell::

    python -m repro.experiments fig6 fig7            # selected figures
    python -m repro.experiments all                  # everything
    python -m repro.experiments fig13 --paper        # paper-scale parameters
    python -m repro.experiments fig11 --csv out/     # also dump CSV files

Every figure is printed as an ASCII table (the same series the paper
plots); ``--csv`` additionally writes one CSV file per figure.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Iterable, List, Optional

from repro.experiments.config import (
    ChainConfig,
    ComparisonConfig,
    ExtremeNonCoverConfig,
    NonCoverConfig,
    RedundantCoveringConfig,
)
from repro.experiments.fig_chain import run_chain_delivery
from repro.experiments.fig_comparison import run_comparison
from repro.experiments.fig_extreme import run_extreme_non_cover
from repro.experiments.fig_noncover import run_non_cover
from repro.experiments.fig_redundant import run_redundant_covering
from repro.experiments.series import ResultTable

__all__ = ["main", "available_targets"]

#: experiment id -> (runner, config class, produced figure keys)
_RUNNERS = {
    "redundant": (run_redundant_covering, RedundantCoveringConfig, ("fig6", "fig7")),
    "noncover": (run_non_cover, NonCoverConfig, ("fig8", "fig9", "fig10")),
    "extreme": (run_extreme_non_cover, ExtremeNonCoverConfig, ("fig11", "fig12")),
    "comparison": (run_comparison, ComparisonConfig, ("fig13", "fig14")),
    "chain": (run_chain_delivery, ChainConfig, ("eq2",)),
}


def available_targets() -> List[str]:
    """Every figure/experiment name the CLI accepts."""
    targets = ["all"]
    for name, (_, _, figures) in _RUNNERS.items():
        targets.append(name)
        targets.extend(figures)
    return targets


def _experiments_for(targets: Iterable[str]) -> Dict[str, tuple]:
    wanted = set(targets)
    if "all" in wanted:
        return dict(_RUNNERS)
    selected = {}
    for name, entry in _RUNNERS.items():
        _, _, figures = entry
        if name in wanted or wanted.intersection(figures):
            selected[name] = entry
    return selected


def _write_csv(directory: str, key: str, table: ResultTable) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{key}.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.to_csv())
        handle.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of the paper.",
        epilog=(
            "Dynamic workloads (churn, bursts, flash crowds) live in the "
            "scenario harness: `python -m repro.scenarios list`."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=available_targets(),
        help="experiments or figure ids to run (or 'all')",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the paper's full parameters instead of the quick defaults",
    )
    parser.add_argument(
        "--csv",
        metavar="DIRECTORY",
        default=None,
        help="additionally write one CSV file per figure into DIRECTORY",
    )
    arguments = parser.parse_args(argv)

    selected = _experiments_for(arguments.targets)
    if not selected:
        parser.error("no experiment matches the requested targets")

    wanted_figures = set(arguments.targets)
    exit_code = 0
    for name, (runner, config_class, figures) in selected.items():
        config = config_class.paper() if arguments.paper else config_class()
        print(f"== running experiment '{name}' "
              f"({'paper' if arguments.paper else 'default'} scale) ==")
        results = runner(config)
        for key, table in results.items():
            if "all" not in wanted_figures and name not in wanted_figures:
                if key not in wanted_figures:
                    continue
            print()
            print(table.render())
            if arguments.csv:
                path = _write_csv(arguments.csv, key, table)
                print(f"[csv written to {path}]")
        print()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
