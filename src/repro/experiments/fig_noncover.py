"""Figures 8, 9 and 10 — the non-cover scenario (Section 6.2).

The generated set ``S`` overlaps the tested subscription ``s`` on many
attributes but leaves a slice of one attribute uncovered, so ``s`` is never
covered and the whole set is redundant.  The experiment measures

* **Figure 8** — the fraction of (all, redundant) subscriptions removed by
  the MCS reduction,
* **Figure 9** — the theoretical ``log10(d)`` with and without MCS, and
* **Figure 10** — the number of RSPC guesses actually performed by the full
  pipeline (with and without MCS), which is far below the theoretical ``d``
  because the non-cover is usually detected deterministically or with the
  first few guesses.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.conflict_table import ConflictTable
from repro.core.error_model import required_iterations
from repro.core.mcs import minimized_cover_set
from repro.core.subsumption import SubsumptionChecker
from repro.core.witness import estimate_smallest_witness
from repro.experiments.config import NonCoverConfig
from repro.experiments.fig_redundant import _log10_clamped, _mean
from repro.experiments.series import ResultTable
from repro.model.schema import Schema
from repro.utils.rng import ensure_rng
from repro.workloads.scenarios import non_cover_scenario

__all__ = ["run_non_cover"]


def run_non_cover(config: NonCoverConfig = NonCoverConfig()) -> Dict[str, ResultTable]:
    """Run the non-cover sweep.

    Returns ``{"fig8": …, "fig9": …, "fig10": …}``.
    """
    rng = ensure_rng(config.seed)
    fig8 = ResultTable(
        title="Figure 8 — redundant-subscription reduction (non cover)",
        x_label="k",
        notes=f"delta={config.delta:g}, runs/point={config.runs_per_point}",
    )
    fig9 = ResultTable(
        title="Figure 9 — log10(theoretical d), non cover",
        x_label="k",
        notes=f"delta={config.delta:g}, runs/point={config.runs_per_point}",
    )
    fig10 = ResultTable(
        title="Figure 10 — actual RSPC iterations, non cover",
        x_label="k",
        notes=f"delta={config.delta:g}, runs/point={config.runs_per_point}",
    )

    for k in config.k_values:
        fig8_row: Dict[str, float] = {}
        fig9_row: Dict[str, float] = {}
        fig10_row: Dict[str, float] = {}
        for m in config.m_values:
            schema = Schema.uniform_integer(m, 0, config.domain_size)
            reductions = []
            log_d_plain = []
            log_d_mcs = []
            actual_plain = []
            actual_mcs = []
            checker_mcs = SubsumptionChecker(
                delta=config.delta,
                max_iterations=config.max_iterations,
                use_mcs=True,
                rng=rng,
            )
            checker_plain = SubsumptionChecker(
                delta=config.delta,
                max_iterations=config.max_iterations,
                use_mcs=False,
                rng=rng,
            )
            for _ in range(config.runs_per_point):
                instance = non_cover_scenario(schema, k, rng)
                table = ConflictTable(instance.subscription, instance.candidates)
                reduction = minimized_cover_set(table)
                reductions.append(len(reduction.removed_rows) / max(k, 1))

                plain = estimate_smallest_witness(table)
                log_d_plain.append(
                    _log10_clamped(required_iterations(config.delta, plain.rho_w))
                    if plain.rho_w > 0
                    else math.inf
                )
                if reduction.kept_rows:
                    kept = estimate_smallest_witness(table, list(reduction.kept_rows))
                    log_d_mcs.append(
                        _log10_clamped(required_iterations(config.delta, kept.rho_w))
                        if kept.rho_w > 0
                        else math.inf
                    )
                else:
                    log_d_mcs.append(0.0)

                with_mcs = checker_mcs.check(
                    instance.subscription, instance.candidates
                )
                without_mcs = checker_plain.check(
                    instance.subscription, instance.candidates
                )
                actual_mcs.append(with_mcs.iterations_performed)
                actual_plain.append(without_mcs.iterations_performed)
            fig8_row[f"m={m}"] = _mean(reductions)
            fig9_row[f"m={m}"] = _mean(log_d_plain)
            fig9_row[f"m={m};MCS"] = _mean(log_d_mcs)
            fig10_row[f"m={m}"] = _mean(actual_plain)
            fig10_row[f"m={m};MCS"] = _mean(actual_mcs)
        fig8.add_row(k, fig8_row)
        fig9.add_row(k, fig9_row)
        fig10.add_row(k, fig10_row)
    return {"fig8": fig8, "fig9": fig9, "fig10": fig10}
