"""Experiment configurations.

Every experiment has two presets:

* the **default** constructor values — scaled down so that the whole
  benchmark suite finishes in minutes on a laptop;
* the ``paper()`` class method — the exact parameters reported in
  Section 6 of the paper (k = 10…310 step 30, m ∈ {10, 15, 20},
  δ = 10⁻¹⁰, 1000/3000 runs per point, 5000 subscriptions, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.policies import DEFAULT_MERGE_BUDGET

__all__ = [
    "RedundantCoveringConfig",
    "NonCoverConfig",
    "ExtremeNonCoverConfig",
    "ComparisonConfig",
    "ChainConfig",
]

#: the k sweep used by Figures 6–10 (10 … 310 in steps of 30)
PAPER_K_SWEEP: Tuple[int, ...] = tuple(range(10, 311, 30))
#: the attribute counts used by Figures 6–10 and 13–14
PAPER_M_VALUES: Tuple[int, ...] = (10, 15, 20)


@dataclass
class RedundantCoveringConfig:
    """Configuration of the redundant covering experiment (Figures 6–7)."""

    k_values: Sequence[int] = (10, 40, 70, 100, 160, 220, 310)
    m_values: Sequence[int] = (10, 15, 20)
    delta: float = 1e-10
    runs_per_point: int = 10
    domain_size: int = 10_000
    covering_fraction: float = 0.2
    seed: Optional[int] = 20060331

    @classmethod
    def paper(cls) -> "RedundantCoveringConfig":
        """The full Section 6.1 parameters."""
        return cls(
            k_values=PAPER_K_SWEEP,
            m_values=PAPER_M_VALUES,
            delta=1e-10,
            runs_per_point=1000,
        )

    @classmethod
    def smoke(cls) -> "RedundantCoveringConfig":
        """A tiny preset used by the unit tests."""
        return cls(k_values=(10, 40), m_values=(5,), runs_per_point=3)


@dataclass
class NonCoverConfig:
    """Configuration of the non-cover experiment (Figures 8–10)."""

    k_values: Sequence[int] = (10, 40, 70, 100, 160, 220, 310)
    m_values: Sequence[int] = (10, 15, 20)
    delta: float = 1e-10
    runs_per_point: int = 10
    domain_size: int = 10_000
    max_iterations: int = 20_000
    seed: Optional[int] = 20060401

    @classmethod
    def paper(cls) -> "NonCoverConfig":
        """The full Section 6.2 parameters."""
        return cls(
            k_values=PAPER_K_SWEEP,
            m_values=PAPER_M_VALUES,
            delta=1e-10,
            runs_per_point=1000,
        )

    @classmethod
    def smoke(cls) -> "NonCoverConfig":
        """A tiny preset used by the unit tests."""
        return cls(k_values=(10, 40), m_values=(5,), runs_per_point=3)


@dataclass
class ExtremeNonCoverConfig:
    """Configuration of the extreme non-cover experiment (Figures 11–12)."""

    k: int = 50
    m: int = 5
    gap_fractions: Sequence[float] = (0.005, 0.015, 0.025, 0.035, 0.045)
    deltas: Sequence[float] = (1e-3, 1e-6, 1e-10)
    runs_per_point: int = 100
    domain_size: int = 10_000
    max_iterations: int = 50_000
    seed: Optional[int] = 20060402

    @classmethod
    def paper(cls) -> "ExtremeNonCoverConfig":
        """The full Section 6.3 parameters."""
        return cls(
            k=50,
            m=5,
            gap_fractions=tuple(round(0.005 * step, 4) for step in range(1, 10)),
            deltas=(1e-3, 1e-6, 1e-10),
            runs_per_point=3000,
        )

    @classmethod
    def smoke(cls) -> "ExtremeNonCoverConfig":
        """A tiny preset used by the unit tests."""
        return cls(
            k=10, m=3, gap_fractions=(0.01, 0.04), deltas=(1e-3,), runs_per_point=20
        )


@dataclass
class ComparisonConfig:
    """Configuration of the reduction-strategy comparison (Figures 13–14).

    ``strategies`` names the reduction strategies to stream the workload
    through (registry names from
    :data:`repro.core.policies.STRATEGY_NAMES`); the first one is the
    ratio baseline of Figure 14.  The default pair reproduces the paper's
    pair-wise vs group comparison exactly.
    """

    total_subscriptions: int = 1_000
    m_values: Sequence[int] = (10, 15, 20)
    delta: float = 1e-6
    domain_size: int = 10_000
    checkpoint_every: int = 250
    max_iterations: int = 500
    attribute_skew: float = 2.0
    center_skew: float = 1.0
    width_mean_fraction: float = 0.2
    width_std_fraction: float = 0.15
    broad_interest_probability: float = 0.1
    constrained_fraction: float = 0.6
    seed: Optional[int] = 20060403
    strategies: Sequence[str] = ("pairwise", "group")
    merge_budget: float = DEFAULT_MERGE_BUDGET

    @classmethod
    def paper(cls) -> "ComparisonConfig":
        """The full Section 6.4 parameters (5000 subscriptions)."""
        return cls(total_subscriptions=5_000, m_values=PAPER_M_VALUES, delta=1e-6)

    @classmethod
    def smoke(cls) -> "ComparisonConfig":
        """A tiny preset used by the unit tests."""
        return cls(total_subscriptions=60, m_values=(5,), checkpoint_every=20)


@dataclass
class ChainConfig:
    """Configuration of the Eq. 2 broker-chain experiment."""

    chain_lengths: Sequence[int] = (1, 2, 4, 8, 16, 32)
    rho_values: Sequence[float] = (0.05, 0.1, 0.25, 0.5)
    rho_w: float = 0.01
    d: float = 100.0
    simulation_runs: int = 5_000
    seed: Optional[int] = 20060404

    @classmethod
    def paper(cls) -> "ChainConfig":
        """A denser sweep for the report."""
        return cls(
            chain_lengths=(1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64),
            rho_values=(0.01, 0.05, 0.1, 0.25, 0.5, 0.75),
            simulation_runs=20_000,
        )

    @classmethod
    def smoke(cls) -> "ChainConfig":
        """A tiny preset used by the unit tests."""
        return cls(chain_lengths=(1, 4), rho_values=(0.1,), simulation_runs=200)
