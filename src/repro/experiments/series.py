"""Result containers for the experiment harness.

The paper reports its evaluation as line plots (one series per ``m`` or per
error probability).  :class:`Series` holds one such line and
:class:`ResultTable` holds all the series of one figure over a shared
x-axis, with ASCII and CSV renderings used by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Series", "ResultTable"]


@dataclass
class Series:
    """One named line of a figure: y values over the table's x-axis."""

    name: str
    values: List[float] = field(default_factory=list)

    def append(self, value: float) -> None:
        """Add the next y value."""
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)


@dataclass
class ResultTable:
    """All series of one figure over a shared x-axis."""

    title: str
    x_label: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, Series] = field(default_factory=dict)
    notes: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_series(self, name: str) -> Series:
        """Create (or fetch) a series by name."""
        if name not in self.series:
            self.series[name] = Series(name)
        return self.series[name]

    def add_row(self, x: float, values: Mapping[str, float]) -> None:
        """Append one x value together with every series' y value."""
        self.x_values.append(float(x))
        for name, value in values.items():
            self.add_series(name).append(value)

    def column(self, name: str) -> List[float]:
        """Values of one series."""
        return list(self.series[name].values)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, float_format: str = "{:.4g}") -> str:
        """ASCII table: one row per x value, one column per series."""
        headers = [self.x_label] + list(self.series.keys())
        rows: List[List[str]] = []
        for index, x in enumerate(self.x_values):
            row = [float_format.format(x)]
            for series in self.series.values():
                if index < len(series.values):
                    value = series.values[index]
                    if value is None or (isinstance(value, float) and math.isnan(value)):
                        row.append("-")
                    else:
                        row.append(float_format.format(value))
                else:
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(headers[column]), *(len(row[column]) for row in rows))
            if rows
            else len(headers[column])
            for column in range(len(headers))
        ]
        lines = [self.title]
        if self.notes:
            lines.append(self.notes)
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + one line per x value)."""
        headers = [self.x_label] + list(self.series.keys())
        lines = [",".join(headers)]
        for index, x in enumerate(self.x_values):
            cells = [repr(float(x))]
            for series in self.series.values():
                cells.append(
                    repr(float(series.values[index]))
                    if index < len(series.values)
                    else ""
                )
            lines.append(",".join(cells))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
