"""``python -m repro.obs`` dispatches to the observability CLI."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
