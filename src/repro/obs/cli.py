"""Command-line interface of the observability layer.

::

    repro-obs report spans.jsonl          # per-stage/broker/link tables
    repro-obs report spans.jsonl --json   # machine-readable summary

Span files are produced by ``repro-scenarios run --obs-spans PATH`` (or
programmatically via :func:`repro.obs.spans.write_spans`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.report import render_report, summarize
from repro.obs.spans import read_spans

__all__ = ["main"]


def _cmd_report(arguments: argparse.Namespace) -> int:
    recorder = read_spans(arguments.spans)
    if arguments.json:
        print(json.dumps(summarize(recorder), indent=2, sort_keys=True))
    else:
        print(render_report(recorder))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-obs`` / ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Render hop-level causal span files into summary tables.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="summarize a span file written by run --obs-spans"
    )
    report.add_argument("spans", help="path to a span JSONL file")
    report.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    report.set_defaults(handler=_cmd_report)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
