"""Observability subsystem: instruments, causal spans and probes.

``repro.obs`` is the cross-cutting instrumentation layer of the broker
network and the matching engine:

* :mod:`repro.obs.instruments` — a registry of named counters, gauges
  and virtual-time histograms with label support, the single place every
  metric in the system can be discovered and snapshotted from;
* :mod:`repro.obs.spans` — hop-level causal tracing: every publication /
  subscription carries a trace id and emits a span per lifecycle stage
  (injected → enqueued → link-transit → dedup → route-lookup → match →
  deliver), timestamped with the kernel's virtual clock;
* :mod:`repro.obs.probes` — the zero-overhead gate: a module-level
  enable flag plus no-op stubs, so with observability disabled (the
  default) every component behaves — metric- and trace-hash
  byte-identically — exactly as it did before the subsystem existed;
* :mod:`repro.obs.report` — per-broker / per-link / per-stage tables
  over exported span files (the ``repro-obs report`` CLI).

The functional path never depends on this package being active: probes
observe, they do not decide.
"""

from repro.obs.instruments import (
    Counter,
    Gauge,
    Histogram,
    InstrumentRegistry,
)
from repro.obs.probes import ObsProbe, active, disable, install, is_enabled
from repro.obs.spans import Span, SpanRecorder, read_spans, write_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "ObsProbe",
    "Span",
    "SpanRecorder",
    "active",
    "disable",
    "install",
    "is_enabled",
    "read_spans",
    "write_spans",
]
