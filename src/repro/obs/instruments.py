"""The instrument registry: named counters, gauges and histograms.

One :class:`InstrumentRegistry` is the single place every metric of a
running system can be discovered, snapshotted and diffed from.  Three
instrument kinds cover the system's needs:

:class:`Counter`
    A monotonically *written* numeric cell (``inc``); brokers count
    message hops, suppressions and subsumption checks with these.  The
    value is a plain attribute, so hot paths may also use ``+=`` through
    an owning object's property (which is how
    :class:`~repro.broker.metrics.NetworkMetrics` registers its counters
    here without changing its call sites).
:class:`Gauge`
    A point-in-time level (``set`` / ``update_max``): kernel queue
    depths, arena sizes.
:class:`Histogram`
    A sample list (``observe``) with percentile summaries — used for
    virtual-time delivery latencies and per-stage span durations.

Instruments are keyed by ``(name, labels)`` where labels are free-form
``key=value`` pairs (per-broker, per-link, per-strategy, per-stage…), so
``registry.counter("hops", link="B1->B2")`` and the same name with
another link are distinct series.

Snapshot/diff semantics mirror
:class:`~repro.broker.metrics.MetricsSnapshot`: :meth:`snapshot` returns
a plain ``{key: value}`` dictionary, and :meth:`diff` subtracts an
earlier snapshot counter-wise — gauges report their current level,
histograms their sample-count delta — so per-phase accounting works the
same way it does for the network metrics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentRegistry",
    "render_key",
]

#: canonical label form: sorted ``(key, value)`` pairs
Labels = Tuple[Tuple[str, str], ...]


def _labels_of(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_key(name: str, labels: Labels = ()) -> str:
    """The flat string key of an instrument: ``name{k=v,k2=v2}``."""
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A numeric cell that call sites add to."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (counters grow; negative amounts are a bug)."""
        self.value += amount

    @property
    def key(self) -> str:
        """Flat string key (``name{labels}``)."""
        return render_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Counter({self.key!r}, value={self.value!r})"


class Gauge:
    """A point-in-time level."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        """Overwrite the level."""
        self.value = value

    def update_max(self, value: float) -> None:
        """Raise the level to ``value`` when higher (high-water marks)."""
        if value > self.value:
            self.value = value

    @property
    def key(self) -> str:
        """Flat string key (``name{labels}``)."""
        return render_key(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Gauge({self.key!r}, value={self.value!r})"


class Histogram:
    """An observation list with percentile summaries.

    Samples are kept in observation order (a plain list), which is what
    lets :class:`~repro.broker.metrics.NetworkMetrics` register its
    delivery-latency series here while its per-phase diffing keeps
    slicing by index.
    """

    __slots__ = ("name", "labels", "samples")
    kind = "histogram"

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples observed so far."""
        return len(self.samples)

    @property
    def key(self) -> str:
        """Flat string key (``name{labels}``)."""
        return render_key(self.name, self.labels)

    def percentiles(
        self, quantiles: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """``{"p50": …}`` percentile summary (all zeros when empty)."""
        if not self.samples:
            return {f"p{q:g}": 0.0 for q in quantiles}
        ordered = sorted(self.samples)
        last = len(ordered) - 1
        out: Dict[str, float] = {}
        for q in quantiles:
            # Nearest-rank on the sorted samples: cheap, dependency-free
            # and stable for the small-to-medium sample counts spans
            # produce.
            rank = min(last, max(0, round(q / 100.0 * last)))
            out[f"p{q:g}"] = float(ordered[int(rank)])
        return out

    def summary(self) -> Dict[str, float]:
        """Count, mean, max and the standard percentiles."""
        stats = {"count": float(len(self.samples))}
        if self.samples:
            stats["mean"] = sum(self.samples) / len(self.samples)
            stats["max"] = max(self.samples)
        else:
            stats["mean"] = 0.0
            stats["max"] = 0.0
        stats.update(self.percentiles())
        return stats

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Histogram({self.key!r}, count={self.count})"


class InstrumentRegistry:
    """Get-or-create registry of every instrument in a running system."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], Any] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, factory, name: str, labels: Mapping[str, Any]):
        key = (name, _labels_of(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"instrument {render_key(*key)!r} already registered as "
                f"{instrument.kind}, not {factory.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, labels)

    def get(self, name: str, **labels: Any):
        """Look an instrument up, or ``None`` when absent."""
        return self._instruments.get((name, _labels_of(labels)))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Snapshot / diff (MetricsSnapshot-compatible semantics)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{key: value}`` view of every instrument.

        Counters and gauges contribute their value; histograms their
        sample count (the percentile view lives in :meth:`tables`).
        """
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            if instrument.kind == "histogram":
                out[instrument.key] = instrument.count
            else:
                out[instrument.key] = instrument.value
        return out

    def diff(
        self, earlier: Optional[Mapping[str, float]] = None
    ) -> Dict[str, float]:
        """Deltas since an earlier :meth:`snapshot`.

        Counter and histogram-count keys are subtracted; gauge keys
        report their *current* level (levels are not interval
        quantities) — the same convention
        :meth:`~repro.broker.metrics.MetricsSnapshot.diff` uses for its
        bookkeeping fields.  Instruments created after ``earlier`` was
        taken diff against zero.
        """
        earlier = earlier or {}
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            key = instrument.key
            if instrument.kind == "gauge":
                out[key] = instrument.value
            elif instrument.kind == "histogram":
                out[key] = instrument.count - earlier.get(key, 0)
            else:
                out[key] = instrument.value - earlier.get(key, 0)
        return out

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, str, str]]:
        """``(key, kind, rendered value)`` rows, sorted by key."""
        rendered: List[Tuple[str, str, str]] = []
        for instrument in self._instruments.values():
            if instrument.kind == "histogram":
                stats = instrument.summary()
                value = (
                    f"n={stats['count']:g} mean={stats['mean']:g} "
                    f"p50={stats['p50']:g} p95={stats['p95']:g} "
                    f"max={stats['max']:g}"
                )
            else:
                value = f"{instrument.value:g}"
            rendered.append((instrument.key, instrument.kind, value))
        rendered.sort()
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"InstrumentRegistry({len(self._instruments)} instruments)"
