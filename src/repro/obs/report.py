"""Summaries and tables over exported span files.

The functions here take a :class:`~repro.obs.spans.SpanRecorder` (live
or loaded back from JSONL via :func:`~repro.obs.spans.read_spans`) and
condense it into the per-hop views the ``repro-obs report`` CLI
renders:

* per-stage virtual-latency percentiles (how long each lifecycle stage
  takes, in kernel time);
* the hop-count distribution of delivered notifications;
* per-broker stage activity;
* per-link queue-depth high-water marks from the enqueue/delivery
  timeline;
* causal-chain completeness of publication traces (every delivery must
  trace back to an injection; every non-delivering trace must terminate
  at an attributable stage such as a dedup drop or a dead-end match).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.instruments import Histogram
from repro.obs.spans import Span, SpanRecorder
from repro.utils.tables import render_table

__all__ = [
    "broker_stage_table",
    "chain_status",
    "hop_distribution",
    "link_queue_table",
    "render_report",
    "stage_latency_table",
    "summarize",
    "trace_chains",
]

#: stages whose span legitimately ends a publication trace without a
#: delivery, and the status that makes them terminal
_TERMINAL_STAGES = {
    ("dedup", "duplicate"),
    ("match", "dead-end"),
    ("match", "forwarded"),
}


def stage_latency_table(recorder: SpanRecorder) -> List[Dict[str, Any]]:
    """Per-stage virtual-duration summary, ranked by total time.

    Point events (``t0 == t1``) contribute zero-duration samples, so the
    count column doubles as a stage-activity counter.
    """
    histograms: Dict[str, Histogram] = {}
    for span in recorder.spans:
        histogram = histograms.get(span.stage)
        if histogram is None:
            histogram = histograms[span.stage] = Histogram(span.stage)
        histogram.observe(span.duration)
    rows = []
    for stage, histogram in histograms.items():
        stats = histogram.summary()
        rows.append(
            {
                "stage": stage,
                "count": int(stats["count"]),
                "total": sum(histogram.samples),
                "mean": stats["mean"],
                "p50": stats["p50"],
                "p95": stats["p95"],
                "p99": stats["p99"],
                "max": stats["max"],
            }
        )
    rows.sort(key=lambda row: row["total"], reverse=True)
    return rows


def hop_distribution(recorder: SpanRecorder) -> Dict[int, int]:
    """``{hop count: deliveries}`` over every ``deliver`` span."""
    distribution: Dict[int, int] = {}
    for span in recorder.spans:
        if span.stage != "deliver":
            continue
        hops = int(span.detail.get("hops", 0))
        distribution[hops] = distribution.get(hops, 0) + 1
    return dict(sorted(distribution.items()))


def broker_stage_table(recorder: SpanRecorder) -> List[Tuple[str, str, int]]:
    """``(broker, stage, span count)`` rows, sorted by broker then stage."""
    counts: Dict[Tuple[str, str], int] = {}
    for span in recorder.spans:
        if span.broker is None:
            continue
        key = (span.broker, span.stage)
        counts[key] = counts.get(key, 0) + 1
    return [
        (broker, stage, count)
        for (broker, stage), count in sorted(counts.items())
    ]


def link_queue_table(recorder: SpanRecorder) -> List[Dict[str, Any]]:
    """Per-link queue-depth summary from the enqueue/delivery timeline."""
    per_link: Dict[str, List[Tuple[float, int]]] = {}
    for now, link, depth in recorder.queue_samples:
        per_link.setdefault(link, []).append((now, depth))
    rows = []
    for link, samples in sorted(per_link.items()):
        depths = [depth for _, depth in samples]
        rows.append(
            {
                "link": link,
                "samples": len(samples),
                "high_water": max(depths),
                "final_depth": depths[-1],
            }
        )
    return rows


def trace_chains(recorder: SpanRecorder) -> Dict[str, List[Span]]:
    """Spans grouped per trace, in emission (= causal) order."""
    return recorder.traces()


def chain_status(spans: List[Span]) -> str:
    """Classify one trace's causal chain.

    ``complete``
        the chain starts at ``injected`` and reaches at least one
        ``deliver`` leaf;
    ``terminated``
        no delivery, but every path ends at an attributable terminal
        stage (a dedup drop, a dead-end match, or a pure-forwarding
        match on a broker with no local subscriber);
    ``no-injection`` / ``dangling``
        malformed chains — spans without a root, or a trace that simply
        stops mid-flight (what the completeness tests guard against).
    """
    if not spans or spans[0].stage != "injected":
        return "no-injection"
    if any(span.stage == "deliver" for span in spans):
        return "complete"
    if any(
        (span.stage, span.status) in _TERMINAL_STAGES for span in spans
    ):
        return "terminated"
    # Control traces (subscriptions/unsubscriptions) end at decision or
    # match-free stages; publications that end anywhere else dangle.
    if spans[0].kind != "publication":
        return "terminated"
    return "dangling"


def summarize(recorder: SpanRecorder) -> Dict[str, Any]:
    """One machine-readable dictionary with every table of the report."""
    chains = trace_chains(recorder)
    status_counts: Dict[str, int] = {}
    for spans in chains.values():
        status = chain_status(spans)
        status_counts[status] = status_counts.get(status, 0) + 1
    return {
        "spans": len(recorder.spans),
        "traces": len(chains),
        "chain_status": dict(sorted(status_counts.items())),
        "stages": stage_latency_table(recorder),
        "hop_distribution": {
            str(hops): count
            for hops, count in hop_distribution(recorder).items()
        },
        "brokers": [
            {"broker": broker, "stage": stage, "spans": count}
            for broker, stage, count in broker_stage_table(recorder)
        ],
        "links": link_queue_table(recorder),
    }


def render_report(recorder: SpanRecorder) -> str:
    """The full plain-text report of one span file."""
    summary = summarize(recorder)
    sections = [
        f"{summary['spans']} spans across {summary['traces']} traces; "
        + ", ".join(
            f"{count} {status}"
            for status, count in summary["chain_status"].items()
        )
    ]

    stage_rows = [
        [
            row["stage"],
            str(row["count"]),
            f"{row['total']:g}",
            f"{row['mean']:g}",
            f"{row['p50']:g}",
            f"{row['p95']:g}",
            f"{row['max']:g}",
        ]
        for row in summary["stages"]
    ]
    if stage_rows:
        sections.append("Per-stage virtual time")
        sections.append(
            render_table(
                ("stage", "spans", "total", "mean", "p50", "p95", "max"),
                stage_rows,
                right_align_from=1,
            )
        )

    if summary["hop_distribution"]:
        sections.append("Delivery hop-count distribution")
        sections.append(
            render_table(
                ("hops", "deliveries"),
                [
                    [hops, str(count)]
                    for hops, count in summary["hop_distribution"].items()
                ],
                right_align_from=1,
            )
        )

    if summary["brokers"]:
        sections.append("Per-broker stage activity")
        sections.append(
            render_table(
                ("broker", "stage", "spans"),
                [
                    [row["broker"], row["stage"], str(row["spans"])]
                    for row in summary["brokers"]
                ],
                right_align_from=2,
            )
        )

    if summary["links"]:
        sections.append("Per-link queue depth")
        sections.append(
            render_table(
                ("link", "samples", "high water", "final"),
                [
                    [
                        row["link"],
                        str(row["samples"]),
                        str(row["high_water"]),
                        str(row["final_depth"]),
                    ]
                    for row in summary["links"]
                ],
                right_align_from=1,
            )
        )
    return "\n\n".join(sections)
