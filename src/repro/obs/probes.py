"""Zero-overhead observability probes.

The module-level :data:`ACTIVE` slot holds the currently installed
:class:`ObsProbe`, or ``None`` — the default — when observability is
off.  Instrumented components capture the active probe once (at
construction, or per call for module-level hot paths) and guard every
hook with a single ``is None`` test, so the disabled system runs the
exact pre-instrumentation code path: all metrics and trace hashes stay
byte-identical to a system without this package.

A probe aggregates three things:

* an :class:`~repro.obs.instruments.InstrumentRegistry` — the single
  registry every instrumented component reports into;
* an optional :class:`~repro.obs.spans.SpanRecorder` — hop-level causal
  spans (omit it to profile without paying span-object churn);
* wall-clock *stage timers* with self-time attribution: nested stages
  subtract their children, so ``stage_totals`` sums to (almost exactly)
  the instrumented wall time and a ranked per-stage cost table falls
  out of any run — the input of ``benchmarks/profile_network.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs.instruments import InstrumentRegistry
from repro.obs.spans import SpanRecorder

__all__ = [
    "ACTIVE",
    "ObsProbe",
    "active",
    "disable",
    "enabled",
    "install",
    "is_enabled",
]

#: message class name -> trace kind (kept here so the probe layer never
#: imports the broker package, which itself imports ``repro.obs``)
_MESSAGE_KINDS = {
    "SubscriptionMessage": "subscription",
    "UnsubscriptionMessage": "unsubscription",
    "PublicationMessage": "publication",
    "PublicationBatchMessage": "publication",
}


class ObsProbe:
    """One observability session: registry + spans + stage timers."""

    def __init__(
        self,
        registry: Optional[InstrumentRegistry] = None,
        spans: Optional[SpanRecorder] = None,
    ):
        self.registry = registry if registry is not None else InstrumentRegistry()
        self.spans = spans
        #: wall-clock self-time per stage name, seconds
        self.stage_self: Dict[str, float] = {}
        #: number of times each stage ran
        self.stage_calls: Dict[str, int] = {}
        self._stack: List[List] = []

    # ------------------------------------------------------------------
    # Wall-clock stage timing (self-time attribution)
    # ------------------------------------------------------------------
    def stage_push(self, name: str) -> None:
        """Enter a stage (nesting allowed; children are subtracted)."""
        self._stack.append([name, perf_counter(), 0.0])

    def stage_pop(self) -> None:
        """Leave the innermost stage, accumulating its self-time."""
        name, started, child_time = self._stack.pop()
        duration = perf_counter() - started
        self.stage_self[name] = (
            self.stage_self.get(name, 0.0) + duration - child_time
        )
        self.stage_calls[name] = self.stage_calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += duration

    @contextmanager
    def stage(self, name: str):
        """Context-manager form of :meth:`stage_push`/:meth:`stage_pop`."""
        self.stage_push(name)
        try:
            yield
        finally:
            self.stage_pop()

    def stage_totals(self) -> List[Tuple[str, float, int]]:
        """``(stage, self-time seconds, calls)`` ranked by cost."""
        rows = [
            (name, self.stage_self[name], self.stage_calls.get(name, 0))
            for name in self.stage_self
        ]
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    def flush_stages_to_registry(self) -> None:
        """Mirror the stage timers into the instrument registry.

        Self-times land in ``obs.stage_seconds{stage=…}`` counters and
        call counts in ``obs.stage_calls{stage=…}``, so one registry
        snapshot carries the profiling data too.
        """
        for name, seconds in self.stage_self.items():
            self.registry.counter("obs.stage_seconds", stage=name).value = seconds
            self.registry.counter(
                "obs.stage_calls", stage=name
            ).value = self.stage_calls.get(name, 0)

    # ------------------------------------------------------------------
    # Span hooks (no-ops unless a recorder is attached)
    # ------------------------------------------------------------------
    def message_kind(self, message) -> str:
        """Trace kind of a broker message (by class name, import-free)."""
        return _MESSAGE_KINDS.get(type(message).__name__, "message")

    def on_inject(self, message, now: float) -> None:
        """A client operation entered the network: open its trace."""
        spans = self.spans
        if spans is None:
            return
        kind = self.message_kind(message)
        message.trace_id = spans.new_trace(kind)
        detail = {}
        ref = getattr(message, "publication", None)
        if ref is not None:
            detail["publication_id"] = ref.id
        sub = getattr(message, "subscription", None)
        if sub is not None:
            detail["subscription_id"] = sub.id
        sid = getattr(message, "subscription_id", None)
        if sid:
            detail["subscription_id"] = sid
        spans.record(
            message.trace_id,
            kind,
            "injected",
            now,
            broker=message.recipient,
            **detail,
        )

    def on_enqueue(self, message, deliver_at: float, queue_depth: int) -> None:
        """The kernel scheduled a hop for delivery."""
        spans = self.spans
        if spans is None or not message.trace_id:
            return
        link = None
        if message.sender is not None:
            link = f"{message.sender}->{message.recipient}"
            spans.link_enqueued(message.sent_at, link)
        spans.record(
            message.trace_id,
            self.message_kind(message),
            "enqueued",
            message.sent_at,
            deliver_at,
            link=link,
            queue_depth=queue_depth,
        )

    def on_hop_delivered(self, message) -> None:
        """A broker-to-broker hop arrived: record its link transit."""
        spans = self.spans
        if spans is None or message.sender is None or not message.trace_id:
            return
        link = f"{message.sender}->{message.recipient}"
        spans.link_delivered(message.delivered_at, link)
        spans.record(
            message.trace_id,
            self.message_kind(message),
            "link-transit",
            message.sent_at,
            message.delivered_at,
            broker=message.recipient,
            link=link,
            hops=message.hops,
        )


#: the installed probe (``None`` = observability disabled, the default)
ACTIVE: Optional[ObsProbe] = None


def install(probe: Optional[ObsProbe] = None) -> ObsProbe:
    """Install (and return) the active probe; creates one when omitted."""
    global ACTIVE
    if probe is None:
        probe = ObsProbe()
    ACTIVE = probe
    return probe


def disable() -> None:
    """Remove the active probe (observability off again)."""
    global ACTIVE
    ACTIVE = None


def active() -> Optional[ObsProbe]:
    """The installed probe, or ``None`` when observability is off."""
    return ACTIVE


def is_enabled() -> bool:
    """Whether a probe is currently installed."""
    return ACTIVE is not None


@contextmanager
def enabled(probe: Optional[ObsProbe] = None):
    """Context manager installing ``probe`` for the duration of a block.

    Restores whatever was active before, so nested sessions compose.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = probe if probe is not None else ObsProbe()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous
