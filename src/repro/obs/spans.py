"""Hop-level causal tracing.

Every client operation that enters the broker network opens a *trace*;
each lifecycle stage the operation (and the messages it fans out into)
passes through emits a :class:`Span` stamped with the simulation
kernel's virtual clock:

``injected``
    the client operation entered the network (the root of the trace);
``enqueued``
    a message hop was handed to the event kernel;
``link-transit``
    a broker-to-broker hop travelled a link (``t0 = sent_at``,
    ``t1 = delivered_at``);
``dedup``
    the receiving broker consulted its duplicate-suppression window
    (status ``fresh`` or ``duplicate`` — the stage where a looping
    publication's causal chain legitimately terminates);
``route-lookup``
    the routing-table lookup answering "who matches";
``match``
    the per-broker forwarding/delivery decision derived from that
    lookup (how many local matches, which neighbour targets);
``decision``
    a per-link reduction decision for a subscription (forwarded,
    suppressed or merged);
``deliver``
    one notification handed to a local subscriber (the leaf that makes
    a publication trace *complete*).

Spans are plain data: they serialize to JSONL (:func:`write_spans` /
:func:`read_spans`) for the ``repro-scenarios run --obs-spans`` export
and the ``repro-obs report`` renderer.  The recorder also keeps a
per-link queue-depth timeline sampled at every enqueue/delivery, which
is what the report's queue tables are built from.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "SPANS_KIND",
    "SPANS_VERSION",
    "Span",
    "SpanRecorder",
    "read_spans",
    "write_spans",
]

SPANS_KIND = "repro.obs.spans"
SPANS_VERSION = 1

#: trace-id prefix per message kind — ids are deterministic per run
_TRACE_PREFIX = {"publication": "P", "subscription": "S", "unsubscription": "U"}


@dataclass
class Span:
    """One lifecycle stage of one traced operation.

    ``t0``/``t1`` are virtual timestamps from the event kernel; point
    events have ``t0 == t1``.  ``detail`` carries stage-specific payload
    (publication id, subscriber, match counts…).
    """

    trace_id: str
    seq: int
    kind: str
    stage: str
    t0: float
    t1: float
    broker: Optional[str] = None
    link: Optional[str] = None
    status: str = "ok"
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Virtual time spent in the stage."""
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dictionary (JSON-safe)."""
        payload: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "kind": self.kind,
            "stage": self.stage,
            "t0": self.t0,
            "t1": self.t1,
            "status": self.status,
        }
        if self.broker is not None:
            payload["broker"] = self.broker
        if self.link is not None:
            payload["link"] = self.link
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Deserialize a span produced by :meth:`to_dict`."""
        return cls(
            trace_id=payload["trace_id"],
            seq=payload["seq"],
            kind=payload["kind"],
            stage=payload["stage"],
            t0=payload["t0"],
            t1=payload["t1"],
            broker=payload.get("broker"),
            link=payload.get("link"),
            status=payload.get("status", "ok"),
            detail=payload.get("detail", {}),
        )


class SpanRecorder:
    """Accumulates spans and per-link queue-depth samples for one run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        #: ``(virtual time, link, outstanding hops on the link)`` samples
        self.queue_samples: List[Tuple[float, str, int]] = []
        self._seq = 0
        self._trace_counts: Dict[str, int] = {}
        self._link_depth: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def new_trace(self, kind: str) -> str:
        """Open a trace for one client operation; returns its id.

        Ids are deterministic (a per-kind counter), so two runs of the
        same compiled scenario produce identical span files.
        """
        prefix = _TRACE_PREFIX.get(kind, "T")
        number = self._trace_counts.get(kind, 0) + 1
        self._trace_counts[kind] = number
        return f"{prefix}{number:06d}"

    def record(
        self,
        trace_id: str,
        kind: str,
        stage: str,
        t0: float,
        t1: Optional[float] = None,
        broker: Optional[str] = None,
        link: Optional[str] = None,
        status: str = "ok",
        **detail: Any,
    ) -> Span:
        """Append one span (point event when ``t1`` is omitted)."""
        self._seq += 1
        span = Span(
            trace_id=trace_id,
            seq=self._seq,
            kind=kind,
            stage=stage,
            t0=t0,
            t1=t0 if t1 is None else t1,
            broker=broker,
            link=link,
            status=status,
            detail=detail,
        )
        self.spans.append(span)
        return span

    def link_enqueued(self, now: float, link: str) -> None:
        """Sample the link's queue depth after a hop was enqueued."""
        depth = self._link_depth.get(link, 0) + 1
        self._link_depth[link] = depth
        self.queue_samples.append((now, link, depth))

    def link_delivered(self, now: float, link: str) -> None:
        """Sample the link's queue depth after a hop was delivered."""
        depth = max(0, self._link_depth.get(link, 0) - 1)
        self._link_depth[link] = depth
        self.queue_samples.append((now, link, depth))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace id, each group in emission order."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SpanRecorder(spans={len(self.spans)}, "
            f"traces={sum(self._trace_counts.values())})"
        )


# ----------------------------------------------------------------------
# JSONL export / import
# ----------------------------------------------------------------------
def write_spans(
    path: Union[str, os.PathLike], recorder: SpanRecorder
) -> int:
    """Write a recorder's spans (and queue samples) as JSONL.

    Returns the number of spans written.  The file is one header line,
    one line per span, then one line per queue-depth sample.
    """
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "kind": SPANS_KIND,
            "version": SPANS_VERSION,
            "span_count": len(recorder.spans),
            "queue_sample_count": len(recorder.queue_samples),
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for span in recorder.spans:
            payload = span.to_dict()
            payload["type"] = "span"
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        for now, link, depth in recorder.queue_samples:
            handle.write(
                json.dumps(
                    {"type": "queue", "t": now, "link": link, "depth": depth},
                    sort_keys=True,
                )
                + "\n"
            )
    return len(recorder.spans)


def read_spans(path: Union[str, os.PathLike]) -> SpanRecorder:
    """Load a span file written by :func:`write_spans`."""
    recorder = SpanRecorder()
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in (raw.strip() for raw in handle) if line]
    if not lines:
        raise ValueError(f"span file {os.fspath(path)!r} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != SPANS_KIND:
        raise ValueError(
            f"not a span file (kind={header.get('kind')!r})"
        )
    if header.get("version") != SPANS_VERSION:
        raise ValueError(
            f"unsupported span file version {header.get('version')!r}"
        )
    for line in lines[1:]:
        payload = json.loads(line)
        if payload.get("type") == "queue":
            recorder.queue_samples.append(
                (payload["t"], payload["link"], payload["depth"])
            )
            continue
        span = Span.from_dict(payload)
        recorder.spans.append(span)
        recorder._seq = max(recorder._seq, span.seq)
        prefix_count = recorder._trace_counts
        prefix_count[span.kind] = prefix_count.get(span.kind, 0)
    declared = header.get("span_count")
    if declared is not None and declared != len(recorder.spans):
        raise ValueError(
            f"span file declares {declared} spans but contains "
            f"{len(recorder.spans)}"
        )
    return recorder
