"""Workload generators.

Every subscription-generation scenario of the paper's evaluation
(Section 6) is reproduced here, plus the two motivating domain workloads of
Section 3 (the sensor-enriched bicycle rental system and Grid resource
discovery) used by the examples.
"""

from repro.workloads.bike_rental import BikeRentalWorkload, bike_rental_schema
from repro.workloads.comparison import ComparisonWorkload
from repro.workloads.distributions import (
    normal_width,
    pareto_center,
    zipf_weights,
)
from repro.workloads.generators import (
    publication_inside,
    random_publication,
    random_subscription,
    slab_partition,
)
from repro.workloads.grid import GridWorkload, grid_schema
from repro.workloads.scenarios import (
    ScenarioInstance,
    ScenarioName,
    generate_scenario,
    no_intersection_scenario,
    non_cover_scenario,
    extreme_non_cover_scenario,
    pairwise_covering_scenario,
    redundant_covering_scenario,
)

__all__ = [
    "BikeRentalWorkload",
    "ComparisonWorkload",
    "GridWorkload",
    "ScenarioInstance",
    "ScenarioName",
    "bike_rental_schema",
    "extreme_non_cover_scenario",
    "generate_scenario",
    "grid_schema",
    "no_intersection_scenario",
    "non_cover_scenario",
    "normal_width",
    "pairwise_covering_scenario",
    "pareto_center",
    "publication_inside",
    "random_publication",
    "random_subscription",
    "redundant_covering_scenario",
    "slab_partition",
    "zipf_weights",
]
