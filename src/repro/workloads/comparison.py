"""The realistic comparison workload (Section 6.4).

The paper simulates a realistic setting with power-law popularity: popular
attributes are chosen with a Zipf distribution (skew 2.0), range centres
follow a Pareto distribution (skew 1.0) to model "similar interests", and
range sizes follow a normal distribution.  The resulting subscription
stream is used to compare the growth of the active subscription set under
pair-wise and group covering (Figures 13 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng
from repro.workloads.distributions import normal_width, pareto_center, zipf_weights

__all__ = ["ComparisonWorkload"]


@dataclass
class ComparisonWorkload:
    """Stream of popularity-skewed subscriptions over a uniform schema.

    Parameters
    ----------
    schema:
        The attribute space (the paper uses ``m`` ∈ {10, 15, 20} identical
        integer attributes).
    attribute_skew:
        Zipf skew of attribute popularity (2.0 in the paper).
    center_skew:
        Pareto skew of the range-centre distribution (1.0 in the paper).
    width_mean_fraction / width_std_fraction:
        Mean and standard deviation of the constrained range width,
        relative to the attribute's extent.
    broad_interest_probability:
        Probability that a constrained attribute takes a *broad* range
        (30–90 % of the domain) instead of a narrow one, modelling general
        interests; broad subscriptions are what makes covering possible in
        the first place.
    constrained_fraction:
        Maximum fraction of the ``m`` attributes a subscription constrains;
        the actual number is uniform between 1 and that maximum, so the
        stream mixes very general subscriptions (few constraints) with
        specific ones — the "similar but not equal interests" the paper
        simulates.
    rng:
        Seed or generator for the stream.
    """

    schema: Schema
    attribute_skew: float = 2.0
    center_skew: float = 1.0
    width_mean_fraction: float = 0.2
    width_std_fraction: float = 0.15
    broad_interest_probability: float = 0.1
    constrained_fraction: float = 0.6
    rng: RandomSource = None

    def __post_init__(self) -> None:
        self._rng = ensure_rng(self.rng)
        self._weights = zipf_weights(self.schema.m, self.attribute_skew)

    # ------------------------------------------------------------------
    # Subscription stream
    # ------------------------------------------------------------------
    def subscription(self, subscriber: Optional[str] = None) -> Subscription:
        """Generate the next subscription of the stream."""
        m = self.schema.m
        maximum = max(1, int(round(self.constrained_fraction * m)))
        count = int(self._rng.integers(1, maximum + 1))
        # Zipf-weighted choice of which attributes the subscription
        # constrains; popular attributes appear in most subscriptions.
        chosen = self._rng.choice(m, size=min(count, m), replace=False, p=self._weights)
        lows, highs = self.schema.full_bounds()
        for attribute in chosen:
            domain = self.schema.domain(int(attribute))
            extent = domain.upper_bound - domain.lower_bound
            center = pareto_center(
                domain.lower_bound, domain.upper_bound, self.center_skew, self._rng
            )
            if self._rng.random() < self.broad_interest_probability:
                width = extent * float(self._rng.uniform(0.3, 0.9))
            else:
                width = normal_width(
                    mean=self.width_mean_fraction * extent,
                    std=self.width_std_fraction * extent,
                    minimum=1.0 if domain.is_discrete else extent * 1e-6,
                    maximum=extent,
                    rng=self._rng,
                )
            low = max(domain.lower_bound, center - width / 2.0)
            high = min(domain.upper_bound, center + width / 2.0)
            if domain.is_discrete:
                low = float(int(low))
                high = float(int(high))
            lows[int(attribute)] = low
            highs[int(attribute)] = max(high, low)
        return Subscription(self.schema, lows, highs, subscriber=subscriber)

    def subscriptions(self, count: int) -> List[Subscription]:
        """Generate ``count`` subscriptions."""
        return [self.subscription() for _ in range(count)]

    def stream(self, count: int) -> Iterator[Subscription]:
        """Lazily generate ``count`` subscriptions."""
        for _ in range(count):
            yield self.subscription()

    # ------------------------------------------------------------------
    # Publication stream
    # ------------------------------------------------------------------
    def publication(self, publisher: Optional[str] = None) -> Publication:
        """A publication drawn from the same popularity model.

        Publication values follow the same Pareto-centred popularity as the
        subscription centres, so published content tends to fall where the
        subscriptions are.
        """
        values = np.empty(self.schema.m, dtype=float)
        for attribute in range(self.schema.m):
            domain = self.schema.domain(attribute)
            value = pareto_center(
                domain.lower_bound, domain.upper_bound, self.center_skew, self._rng
            )
            if domain.is_discrete:
                value = float(int(value))
            values[attribute] = value
        return Publication(self.schema, values, publisher=publisher)

    def publications(self, count: int) -> List[Publication]:
        """Generate ``count`` publications."""
        return [self.publication() for _ in range(count)]
