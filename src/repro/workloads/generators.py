"""Low-level random generators for subscriptions and publications.

These helpers produce the geometric building blocks that the scenario
generators (:mod:`repro.workloads.scenarios`) compose: random boxes with a
controlled width, boxes intersecting a reference box, publications inside
or outside a box, and slab partitions of a box along one attribute.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.intervals import Interval
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng

__all__ = [
    "random_interval",
    "random_subscription",
    "random_subscription_intersecting",
    "random_publication",
    "publication_inside",
    "slab_partition",
    "expand_to_cover",
    "shrink_inside",
]


def _snap(domain, low: float, high: float) -> Tuple[float, float]:
    """Clip and (for discrete domains) round an interval to the domain."""
    low = max(low, domain.lower_bound)
    high = min(high, domain.upper_bound)
    if domain.is_discrete:
        low = math.floor(low)
        high = math.ceil(high)
        low = max(low, domain.lower_bound)
        high = min(high, domain.upper_bound)
    if low > high:
        low = high
    return float(low), float(high)


def random_interval(
    domain,
    rng: np.random.Generator,
    width_fraction: Tuple[float, float] = (0.05, 0.3),
) -> Interval:
    """A random interval covering a fraction of ``domain``'s extent."""
    extent = domain.upper_bound - domain.lower_bound
    fraction = float(rng.uniform(width_fraction[0], width_fraction[1]))
    width = max(extent * fraction, 0.0)
    start = float(rng.uniform(domain.lower_bound, max(domain.upper_bound - width,
                                                      domain.lower_bound)))
    low, high = _snap(domain, start, start + width)
    return Interval(low, high)


def random_subscription(
    schema: Schema,
    rng: RandomSource = None,
    width_fraction: Tuple[float, float] = (0.05, 0.3),
    subscriber: Optional[str] = None,
) -> Subscription:
    """A random box subscription with per-attribute width in a fraction band."""
    generator = ensure_rng(rng)
    lows = np.empty(schema.m, dtype=float)
    highs = np.empty(schema.m, dtype=float)
    for j, attribute in enumerate(schema.attributes):
        interval = random_interval(attribute.domain, generator, width_fraction)
        lows[j] = interval.low
        highs[j] = interval.high
    return Subscription(schema, lows, highs, subscriber=subscriber)


def random_subscription_intersecting(
    reference: Subscription,
    rng: RandomSource = None,
    width_fraction: Tuple[float, float] = (0.05, 0.3),
    cover_probability: float = 0.0,
) -> Subscription:
    """A random subscription guaranteed to intersect ``reference``.

    Each attribute interval is centred at a random point of the reference's
    interval so the two boxes always share at least that point.  With
    probability ``cover_probability`` an attribute fully covers the
    reference's range on that attribute (useful to build "hard" instances
    where candidates overlap ``s`` on many attributes).
    """
    generator = ensure_rng(rng)
    schema = reference.schema
    lows = np.empty(schema.m, dtype=float)
    highs = np.empty(schema.m, dtype=float)
    for j, attribute in enumerate(schema.attributes):
        domain = attribute.domain
        ref = reference.interval(j)
        if cover_probability > 0 and generator.random() < cover_probability:
            margin = max((domain.upper_bound - domain.lower_bound) * 0.01, 1.0)
            low, high = _snap(domain, ref.low - margin, ref.high + margin)
        else:
            anchor = float(generator.uniform(ref.low, ref.high))
            extent = domain.upper_bound - domain.lower_bound
            fraction = float(
                generator.uniform(width_fraction[0], width_fraction[1])
            )
            width = extent * fraction
            offset = float(generator.uniform(0.0, width)) if width > 0 else 0.0
            low, high = _snap(domain, anchor - offset, anchor - offset + width)
        lows[j] = low
        highs[j] = high
    return Subscription(schema, lows, highs)


def random_publication(
    schema: Schema,
    rng: RandomSource = None,
    publisher: Optional[str] = None,
) -> Publication:
    """A uniformly random publication over the whole attribute space."""
    generator = ensure_rng(rng)
    values = np.empty(schema.m, dtype=float)
    for j, attribute in enumerate(schema.attributes):
        values[j] = attribute.domain.sample(attribute.full_interval(), generator)
    return Publication(schema, values, publisher=publisher)


def publication_inside(
    subscription: Subscription,
    rng: RandomSource = None,
    publisher: Optional[str] = None,
) -> Publication:
    """A uniformly random publication matching ``subscription``."""
    generator = ensure_rng(rng)
    return Publication(
        subscription.schema,
        subscription.sample_point(generator),
        publisher=publisher,
    )


def slab_partition(
    subscription: Subscription,
    count: int,
    attribute: int = 0,
) -> List[Subscription]:
    """Partition a box into ``count`` slabs along one attribute.

    The slabs jointly cover the box exactly (no overlap beyond shared
    boundaries on continuous domains, disjoint consecutive integers on
    discrete ones) — the basic construction for group-covering instances
    where no single slab covers the whole box.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    schema = subscription.schema
    domain = schema.domain(attribute)
    interval = subscription.interval(attribute)
    slabs: List[Subscription] = []

    def _make_slab(low: float, high: float) -> None:
        lows = subscription.lows.copy()
        highs = subscription.highs.copy()
        lows[attribute] = low
        highs[attribute] = high
        slabs.append(Subscription(schema, lows, highs))

    if domain.is_discrete:
        total_points = int(interval.high - interval.low) + 1
        pieces = min(count, total_points)
        base, extra = divmod(total_points, pieces)
        low = interval.low
        for index in range(pieces):
            size = base + (1 if index < extra else 0)
            high = low + size - 1
            _make_slab(low, high)
            low = high + 1
    else:
        span = interval.high - interval.low
        edges = [interval.low + span * index / count for index in range(count + 1)]
        edges[-1] = interval.high
        for index in range(count):
            _make_slab(edges[index], edges[index + 1])
    return slabs


def expand_to_cover(
    subscription: Subscription,
    margin_fraction: float = 0.05,
) -> Subscription:
    """A box slightly larger than ``subscription`` on every attribute."""
    schema = subscription.schema
    lows = subscription.lows.copy()
    highs = subscription.highs.copy()
    for j, attribute in enumerate(schema.attributes):
        domain = attribute.domain
        extent = domain.upper_bound - domain.lower_bound
        margin = max(extent * margin_fraction, 1.0 if domain.is_discrete else 0.0)
        lows[j] = max(domain.lower_bound, lows[j] - margin)
        highs[j] = min(domain.upper_bound, highs[j] + margin)
    return Subscription(schema, lows, highs)


def shrink_inside(
    subscription: Subscription,
    rng: RandomSource = None,
    shrink_fraction: Tuple[float, float] = (0.1, 0.5),
) -> Subscription:
    """A random box strictly inside ``subscription``.

    At least one attribute is strictly narrower, so the result never equals
    the input; it is always pair-wise covered by it.
    """
    generator = ensure_rng(rng)
    schema = subscription.schema
    lows = subscription.lows.copy()
    highs = subscription.highs.copy()
    shrunk_any = False
    for j, attribute in enumerate(schema.attributes):
        domain = attribute.domain
        interval = subscription.interval(j)
        span = interval.high - interval.low
        if span <= (1.0 if domain.is_discrete else 1e-9):
            continue
        fraction = float(generator.uniform(*shrink_fraction))
        shrink = span * fraction
        low = interval.low + float(generator.uniform(0.0, shrink))
        high = interval.high - (shrink - (low - interval.low))
        low, high = _snap(domain, low, max(high, low))
        if low > interval.low or high < interval.high:
            shrunk_any = True
        lows[j] = low
        highs[j] = high
    if not shrunk_any:
        return Subscription(schema, lows, highs)
    return Subscription(schema, lows, highs)
