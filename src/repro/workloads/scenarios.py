"""Subscription-generation scenarios of the evaluation (Section 6).

Each generator produces a :class:`ScenarioInstance` — a new subscription
``s`` together with the pre-existing set ``S`` — engineered so that the
instance falls in one of the paper's categories:

=======================  =============================================
Scenario                 Property of the instance
=======================  =============================================
``pairwise_covering``    some single ``s_i`` covers ``s`` (1.a)
``redundant_covering``   ``S`` covers ``s`` jointly, never singly, and
                         ~80 % of ``S`` is redundant (1.b)
``no_intersection``      no ``s_i`` even intersects ``s`` (2.a)
``non_cover``            ``S`` overlaps ``s`` heavily but leaves a gap
                         on one attribute (2.b)
``extreme_non_cover``    ``S`` covers everything except a narrow slice
                         of controlled relative width (2.c)
=======================  =============================================

The generators follow the construction rules stated in the paper: every
subscription is satisfiable, every ``s_i`` intersects ``s``, the ``s_i``
overlap each other on most attributes, and no pair-wise subsumption exists
in the "difficult" scenarios (so the classical baseline cannot reduce the
set at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng
from repro.workloads.generators import (
    expand_to_cover,
    random_subscription,
    random_subscription_intersecting,
    slab_partition,
)

__all__ = [
    "ScenarioName",
    "ScenarioInstance",
    "pairwise_covering_scenario",
    "redundant_covering_scenario",
    "no_intersection_scenario",
    "non_cover_scenario",
    "extreme_non_cover_scenario",
    "generate_scenario",
]


class ScenarioName(str, Enum):
    """The subscription-generation scenarios of Section 6."""

    PAIRWISE_COVERING = "pairwise_covering"
    REDUNDANT_COVERING = "redundant_covering"
    NO_INTERSECTION = "no_intersection"
    NON_COVER = "non_cover"
    EXTREME_NON_COVER = "extreme_non_cover"


@dataclass
class ScenarioInstance:
    """One generated instance of a subsumption question.

    Attributes
    ----------
    subscription:
        The new subscription ``s`` whose coverage is to be decided.
    candidates:
        The existing subscription set ``S``.
    expected_covered:
        Ground-truth answer by construction (``None`` when unknown).
    redundant_ids:
        Identifiers of the candidates that are redundant for the cover
        decision (used to measure the MCS reduction of Figures 6 and 8).
    metadata:
        Scenario-specific parameters (gap fraction, covering-group size…).
    """

    subscription: Subscription
    candidates: List[Subscription]
    expected_covered: Optional[bool]
    redundant_ids: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of candidate subscriptions."""
        return len(self.candidates)


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _base_subscription(
    schema: Schema, rng: np.random.Generator
) -> Subscription:
    """A moderately sized subscription used as the tested ``s``."""
    return random_subscription(schema, rng, width_fraction=(0.15, 0.35))


def _avoid_full_cover(
    candidate: Subscription,
    reference: Subscription,
    rng: np.random.Generator,
) -> Subscription:
    """Ensure ``candidate`` does not pair-wise cover ``reference``.

    When it accidentally does, its first-attribute range is replaced by a
    strict sub-range of the reference so the candidate only partly covers
    it (keeping the instance free of pair-wise subsumption).
    """
    if not candidate.covers(reference):
        return candidate
    schema = reference.schema
    domain = schema.domain(0)
    interval = reference.interval(0)
    span = interval.high - interval.low
    if span <= (1.0 if domain.is_discrete else 1e-9):
        # Degenerate reference range; shrink on another attribute instead.
        for attribute in range(1, schema.m):
            interval = reference.interval(attribute)
            span = interval.high - interval.low
            if span > (1.0 if schema.domain(attribute).is_discrete else 1e-9):
                return _shrink_on_attribute(candidate, reference, attribute, rng)
        return candidate
    return _shrink_on_attribute(candidate, reference, 0, rng)


def _shrink_on_attribute(
    candidate: Subscription,
    reference: Subscription,
    attribute: int,
    rng: np.random.Generator,
) -> Subscription:
    domain = reference.schema.domain(attribute)
    interval = reference.interval(attribute)
    span = interval.high - interval.low
    cut = span * float(rng.uniform(0.2, 0.6))
    lows = candidate.lows.copy()
    highs = candidate.highs.copy()
    if rng.random() < 0.5:
        highs[attribute] = interval.high - cut
        lows[attribute] = min(lows[attribute], highs[attribute])
    else:
        lows[attribute] = interval.low + cut
        highs[attribute] = max(highs[attribute], lows[attribute])
    if domain.is_discrete:
        lows[attribute] = math.floor(lows[attribute])
        highs[attribute] = math.ceil(highs[attribute])
    return Subscription(candidate.schema, lows, highs)


# ----------------------------------------------------------------------
# Scenario 1.a — pair-wise covering
# ----------------------------------------------------------------------
def pairwise_covering_scenario(
    schema: Schema,
    k: int,
    rng: RandomSource = None,
) -> ScenarioInstance:
    """``s`` is entirely covered by at least one single candidate."""
    if k < 1:
        raise ValueError("k must be at least 1")
    generator = ensure_rng(rng)
    subscription = _base_subscription(schema, generator)
    coverer = expand_to_cover(subscription, margin_fraction=0.05)
    others = [
        random_subscription_intersecting(subscription, generator)
        for _ in range(k - 1)
    ]
    candidates = others + [coverer]
    positions = generator.permutation(len(candidates))
    candidates = [candidates[i] for i in positions]
    return ScenarioInstance(
        subscription=subscription,
        candidates=candidates,
        expected_covered=True,
        redundant_ids=tuple(c.id for c in candidates if c.id != coverer.id),
        metadata={"scenario": ScenarioName.PAIRWISE_COVERING.value},
    )


# ----------------------------------------------------------------------
# Scenario 1.b — redundant covering
# ----------------------------------------------------------------------
def redundant_covering_scenario(
    schema: Schema,
    k: int,
    rng: RandomSource = None,
    covering_fraction: float = 0.2,
    slab_overlap_fraction: float = 0.02,
    one_sided_fraction: float = 1.0,
    contrarian_probability: float = 0.02,
) -> ScenarioInstance:
    """``S`` covers ``s`` jointly (never singly); ~80 % of ``S`` is redundant.

    The first ``covering_fraction`` of the candidates partition ``s`` into
    slabs along the first attribute (each covering ``s`` completely on all
    other attributes), so their union covers ``s`` but none does so alone.

    The remaining candidates only partly cover ``s`` and are therefore
    redundant for the cover decision — exactly the setting of Figure 6.
    Following the paper's "similar but not equal interests" motivation, a
    fraction ``one_sided_fraction`` of the redundant subscriptions differ
    from ``s`` along a single non-covering attribute only (they cover ``s``
    on every other attribute but stop short on one side of that attribute,
    the side being shared by subscribers interested in the same attribute),
    while the rest are unstructured partial overlaps of ``s``.  With
    probability ``contrarian_probability`` a one-sided subscription uses the
    *opposite* side of its attribute, which makes some conflict-table
    entries conflict and keeps the MCS reduction below 100 %, reproducing
    the 80–100 % band of Figure 6.
    """
    if k < 2:
        raise ValueError("the redundant covering scenario needs k >= 2")
    generator = ensure_rng(rng)
    subscription = _base_subscription(schema, generator)

    covering_count = max(2, int(round(covering_fraction * k)))
    covering_count = min(covering_count, k)
    slabs = slab_partition(subscription, covering_count, attribute=0)
    covering: List[Subscription] = []
    domain0 = schema.domain(0)
    span0 = subscription.interval(0).span
    overlap = span0 * slab_overlap_fraction
    for slab in slabs:
        lows = slab.lows.copy()
        highs = slab.highs.copy()
        # Small overlap between neighbouring slabs and a small margin on the
        # other attributes make the covering group look like organic,
        # similar-interest subscriptions rather than an exact partition.
        lows[0] = max(domain0.lower_bound, lows[0] - overlap)
        highs[0] = min(domain0.upper_bound, highs[0] + overlap)
        for attribute in range(1, schema.m):
            domain = schema.domain(attribute)
            extent = domain.upper_bound - domain.lower_bound
            margin = extent * 0.01
            lows[attribute] = max(domain.lower_bound, lows[attribute] - margin)
            highs[attribute] = min(domain.upper_bound, highs[attribute] + margin)
        if domain0.is_discrete:
            lows[0] = math.floor(lows[0])
            highs[0] = math.ceil(highs[0])
        covering.append(Subscription(schema, lows, highs))

    # Per-instance choice of which side the one-sided subscribers of each
    # attribute share (e.g. everybody interested in "price" asks for
    # "price <= c", everybody interested in "date" for "date >= d").
    shared_side_is_lower = generator.random(schema.m) < 0.5

    redundant: List[Subscription] = []
    for _ in range(k - len(covering)):
        if schema.m > 1 and generator.random() < one_sided_fraction:
            sides = shared_side_is_lower
            if generator.random() < contrarian_probability:
                sides = ~shared_side_is_lower
            candidate = _one_sided_partial_cover(subscription, sides, generator)
        else:
            candidate = random_subscription_intersecting(
                subscription, generator, cover_probability=0.5
            )
            candidate = _avoid_full_cover(candidate, subscription, generator)
        redundant.append(candidate)

    candidates = covering + redundant
    return ScenarioInstance(
        subscription=subscription,
        candidates=candidates,
        expected_covered=True,
        redundant_ids=tuple(c.id for c in redundant),
        metadata={
            "scenario": ScenarioName.REDUNDANT_COVERING.value,
            "covering_count": len(covering),
            "redundant_count": len(redundant),
        },
    )


def _one_sided_partial_cover(
    reference: Subscription,
    shared_side_is_lower: np.ndarray,
    rng: np.random.Generator,
) -> Subscription:
    """A candidate covering ``reference`` on all attributes but one.

    On the chosen attribute (never the first one, which carries the
    covering slabs) the candidate keeps only the lower or upper part of the
    reference's range; the side is shared by every one-sided candidate of
    that attribute so that their conflict-table entries do not conflict
    with each other.
    """
    schema = reference.schema
    attribute = int(rng.integers(1, schema.m))
    domain = schema.domain(attribute)
    interval = reference.interval(attribute)
    span = interval.high - interval.low
    cut = interval.low + span * float(rng.uniform(0.2, 0.8))
    if domain.is_discrete:
        cut = float(round(cut))

    lows = reference.lows.copy()
    highs = reference.highs.copy()
    for other in range(schema.m):
        if other == attribute:
            continue
        other_domain = schema.domain(other)
        extent = other_domain.upper_bound - other_domain.lower_bound
        margin = extent * float(rng.uniform(0.0, 0.02))
        lows[other] = max(other_domain.lower_bound, lows[other] - margin)
        highs[other] = min(other_domain.upper_bound, highs[other] + margin)

    tick = 1.0 if domain.is_discrete else max(span * 1e-9, 1e-12)
    if shared_side_is_lower[attribute]:
        highs[attribute] = min(cut, interval.high - tick)
        lows[attribute] = max(domain.lower_bound, interval.low - span * 0.02)
    else:
        lows[attribute] = max(cut, interval.low + tick)
        highs[attribute] = min(domain.upper_bound, interval.high + span * 0.02)
    if domain.is_discrete:
        lows[attribute] = math.floor(lows[attribute])
        highs[attribute] = math.ceil(highs[attribute])
    if lows[attribute] > highs[attribute]:
        lows[attribute] = highs[attribute]
    return Subscription(schema, lows, highs)


# ----------------------------------------------------------------------
# Scenario 2.a — no intersection
# ----------------------------------------------------------------------
def no_intersection_scenario(
    schema: Schema,
    k: int,
    rng: RandomSource = None,
) -> ScenarioInstance:
    """No candidate intersects ``s`` at all."""
    if k < 1:
        raise ValueError("k must be at least 1")
    generator = ensure_rng(rng)
    subscription = _base_subscription(schema, generator)

    candidates: List[Subscription] = []
    for _ in range(k):
        candidate = random_subscription_intersecting(subscription, generator)
        attribute = int(generator.integers(0, schema.m))
        candidate = _push_outside(candidate, subscription, attribute, generator)
        candidates.append(candidate)
    return ScenarioInstance(
        subscription=subscription,
        candidates=candidates,
        expected_covered=False,
        redundant_ids=tuple(c.id for c in candidates),
        metadata={"scenario": ScenarioName.NO_INTERSECTION.value},
    )


def _push_outside(
    candidate: Subscription,
    reference: Subscription,
    attribute: int,
    rng: np.random.Generator,
) -> Subscription:
    """Move ``candidate`` fully outside ``reference`` on one attribute."""
    schema = reference.schema
    domain = schema.domain(attribute)
    ref = reference.interval(attribute)
    tick = 1.0 if domain.is_discrete else max(
        (domain.upper_bound - domain.lower_bound) * 1e-6, 1e-9
    )
    room_below = ref.low - domain.lower_bound
    room_above = domain.upper_bound - ref.high
    lows = candidate.lows.copy()
    highs = candidate.highs.copy()
    go_below = room_below >= room_above
    if go_below and room_below > tick:
        high = ref.low - tick
        low = max(domain.lower_bound, high - room_below * float(rng.uniform(0.2, 0.8)))
    elif room_above > tick:
        low = ref.high + tick
        high = min(domain.upper_bound, low + room_above * float(rng.uniform(0.2, 0.8)))
    else:
        # The reference spans (almost) the whole domain on this attribute;
        # fall back to the other side even if the slice is a single point.
        if room_below >= tick:
            low = domain.lower_bound
            high = ref.low - tick
        else:
            low = ref.high + tick
            high = domain.upper_bound
    if domain.is_discrete:
        low = math.ceil(low)
        high = math.floor(high)
    low = min(max(low, domain.lower_bound), domain.upper_bound)
    high = min(max(high, low), domain.upper_bound)
    lows[attribute] = low
    highs[attribute] = high
    return Subscription(schema, lows, highs)


# ----------------------------------------------------------------------
# Scenario 2.b — non-cover with a forced gap
# ----------------------------------------------------------------------
def non_cover_scenario(
    schema: Schema,
    k: int,
    rng: RandomSource = None,
    gap_fraction: Optional[float] = None,
    cover_probability: float = 0.7,
) -> ScenarioInstance:
    """``S`` overlaps ``s`` on many attributes but leaves a gap on one.

    A slice of ``s`` on the first attribute (``gap_fraction`` of its span,
    random in ``[0.05, 0.2]`` when not given) is kept clear of every
    candidate, so ``s`` is never covered; everything else is generated to
    overlap heavily, which is the difficult setting of Figures 8–10.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    generator = ensure_rng(rng)
    subscription = _base_subscription(schema, generator)
    fraction = (
        float(generator.uniform(0.05, 0.2)) if gap_fraction is None else gap_fraction
    )
    gap_low, gap_high = _carve_gap(subscription, 0, fraction, generator)

    candidates: List[Subscription] = []
    for _ in range(k):
        candidate = random_subscription_intersecting(
            subscription, generator, cover_probability=cover_probability
        )
        candidate = _avoid_gap(candidate, subscription, 0, gap_low, gap_high, generator)
        candidate = _avoid_full_cover(candidate, subscription, generator)
        candidates.append(candidate)

    return ScenarioInstance(
        subscription=subscription,
        candidates=candidates,
        expected_covered=False,
        redundant_ids=tuple(c.id for c in candidates),
        metadata={
            "scenario": ScenarioName.NON_COVER.value,
            "gap_fraction": fraction,
            "gap": (gap_low, gap_high),
        },
    )


def _carve_gap(
    subscription: Subscription,
    attribute: int,
    fraction: float,
    rng: np.random.Generator,
) -> Tuple[float, float]:
    """Choose a gap strictly inside ``s``'s range on ``attribute``."""
    domain = subscription.schema.domain(attribute)
    interval = subscription.interval(attribute)
    span = interval.high - interval.low
    width = max(span * fraction, 1.0 if domain.is_discrete else span * 1e-6)
    margin = max(span * 0.05, 1.0 if domain.is_discrete else span * 1e-6)
    start_low = interval.low + margin
    start_high = max(interval.high - margin - width, start_low)
    gap_low = float(rng.uniform(start_low, start_high))
    gap_high = gap_low + width
    if domain.is_discrete:
        gap_low = math.floor(gap_low)
        gap_high = math.ceil(gap_high)
        gap_high = max(gap_high, gap_low)
    gap_high = min(gap_high, interval.high - (1.0 if domain.is_discrete else 0.0))
    gap_low = max(gap_low, interval.low + (1.0 if domain.is_discrete else 0.0))
    if gap_low > gap_high:
        gap_low = gap_high
    return gap_low, gap_high


def _avoid_gap(
    candidate: Subscription,
    reference: Subscription,
    attribute: int,
    gap_low: float,
    gap_high: float,
    rng: np.random.Generator,
) -> Subscription:
    """Clip ``candidate`` so it stays clear of the gap on ``attribute``."""
    schema = reference.schema
    domain = schema.domain(attribute)
    ref = reference.interval(attribute)
    tick = 1.0 if domain.is_discrete else max(
        (domain.upper_bound - domain.lower_bound) * 1e-9, 1e-12
    )
    lows = candidate.lows.copy()
    highs = candidate.highs.copy()
    left_room = gap_low - tick >= ref.low
    right_room = gap_high + tick <= ref.high
    go_left = left_room and (not right_room or rng.random() < 0.5)
    if go_left:
        low = min(lows[attribute], ref.low)
        high = gap_low - tick
        low = min(low, high)
    else:
        low = gap_high + tick
        high = max(highs[attribute], ref.high)
        high = max(high, low)
    if domain.is_discrete:
        low = math.floor(low)
        high = math.ceil(high)
    low = max(low, domain.lower_bound)
    high = min(high, domain.upper_bound)
    if low > high:
        low = high
    lows[attribute] = low
    highs[attribute] = high
    return Subscription(schema, lows, highs)


# ----------------------------------------------------------------------
# Scenario 2.c — extreme non-cover
# ----------------------------------------------------------------------
def extreme_non_cover_scenario(
    schema: Schema,
    k: int,
    gap_fraction: float,
    rng: RandomSource = None,
) -> ScenarioInstance:
    """``S`` covers ``s`` entirely except a narrow slice on one attribute.

    ``gap_fraction`` is the width of the uncovered slice relative to ``s``'s
    span on the gap attribute (0.5 %–4.5 % in Figures 11 and 12).  The
    candidates *tile* the part of ``s`` left of the gap and the part right
    of it (with small random overlaps between neighbouring tiles), and each
    covers ``s`` completely on every other attribute.  As in the paper, the
    candidates intersect ``s`` and (within each side) intersect each other,
    no pair-wise subsumption exists, and — because neighbouring tiles make
    every conflict-table entry conflict with another one — the MCS
    reduction cannot discard any candidate, so the probabilistic RSPC test
    is genuinely exercised and may produce false "covered" decisions when
    the gap is small (exactly the Figure 11/12 setting).
    """
    if k < 4:
        raise ValueError("the extreme non-cover scenario needs k >= 4")
    if not 0.0 < gap_fraction < 1.0:
        raise ValueError("gap_fraction must be in (0, 1)")
    generator = ensure_rng(rng)
    subscription = _base_subscription(schema, generator)
    gap_low, gap_high = _carve_gap(subscription, 0, gap_fraction, generator)

    domain0 = schema.domain(0)
    tick = 1.0 if domain0.is_discrete else max(
        (domain0.upper_bound - domain0.lower_bound) * 1e-9, 1e-12
    )
    ref0 = subscription.interval(0)

    def _wide_on_other_attributes() -> Tuple[np.ndarray, np.ndarray]:
        lows = subscription.lows.copy()
        highs = subscription.highs.copy()
        for attribute in range(1, schema.m):
            domain = schema.domain(attribute)
            extent = domain.upper_bound - domain.lower_bound
            margin = extent * float(generator.uniform(0.0, 0.02))
            lows[attribute] = max(domain.lower_bound, lows[attribute] - margin)
            highs[attribute] = min(domain.upper_bound, highs[attribute] + margin)
        return lows, highs

    def _tile_region(region_low: float, region_high: float, pieces: int) -> List[Tuple[float, float]]:
        """Contiguous (slightly overlapping) tiles of [region_low, region_high]."""
        if region_low > region_high or pieces < 1:
            return []
        if domain0.is_discrete:
            total = int(region_high - region_low) + 1
            pieces = max(1, min(pieces, total))
            base, extra = divmod(total, pieces)
            tiles = []
            low = region_low
            for index in range(pieces):
                size = base + (1 if index < extra else 0)
                high = low + size - 1
                tiles.append((low, high))
                low = high + 1
        else:
            span = region_high - region_low
            edges = [region_low + span * i / pieces for i in range(pieces + 1)]
            tiles = [(edges[i], edges[i + 1]) for i in range(pieces)]
        # Small random overlap with the neighbouring tile (never into the gap
        # or outside the region).
        overlapped = []
        span = region_high - region_low
        for low, high in tiles:
            stretch = span * float(generator.uniform(0.0, 0.02))
            new_low = max(region_low, low - stretch)
            new_high = min(region_high, high + stretch)
            if domain0.is_discrete:
                new_low = math.floor(new_low)
                new_high = math.ceil(new_high)
                new_low = max(new_low, region_low)
                new_high = min(new_high, region_high)
            overlapped.append((new_low, new_high))
        return overlapped

    left_low, left_high = ref0.low, gap_low - tick
    right_low, right_high = gap_high + tick, ref0.high
    if domain0.is_discrete:
        left_high = math.floor(left_high)
        right_low = math.ceil(right_low)

    n_left = k // 2
    n_right = k - n_left
    tiles = [
        (low, high, "left") for low, high in _tile_region(left_low, left_high, n_left)
    ] + [
        (low, high, "right")
        for low, high in _tile_region(right_low, right_high, n_right)
    ]

    candidates: List[Subscription] = []
    for low, high, _side in tiles:
        lows, highs = _wide_on_other_attributes()
        lows[0] = low
        highs[0] = max(high, low)
        candidates.append(Subscription(schema, lows, highs))

    # Discrete regions narrower than the requested tile count yield fewer
    # tiles; pad with duplicated random tiles so the instance has exactly k
    # candidates (the duplicates are redundant but harmless).
    while len(candidates) < k and tiles:
        low, high, _side = tiles[int(generator.integers(0, len(tiles)))]
        lows, highs = _wide_on_other_attributes()
        lows[0] = low
        highs[0] = max(high, low)
        candidates.append(Subscription(schema, lows, highs))

    positions = generator.permutation(len(candidates))
    candidates = [candidates[i] for i in positions]
    return ScenarioInstance(
        subscription=subscription,
        candidates=candidates,
        expected_covered=False,
        redundant_ids=tuple(c.id for c in candidates),
        metadata={
            "scenario": ScenarioName.EXTREME_NON_COVER.value,
            "gap_fraction": gap_fraction,
            "gap": (gap_low, gap_high),
        },
    )


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def generate_scenario(
    name: ScenarioName,
    schema: Schema,
    k: int,
    rng: RandomSource = None,
    **kwargs: Any,
) -> ScenarioInstance:
    """Generate an instance of the named scenario."""
    name = ScenarioName(name)
    if name is ScenarioName.PAIRWISE_COVERING:
        return pairwise_covering_scenario(schema, k, rng)
    if name is ScenarioName.REDUNDANT_COVERING:
        return redundant_covering_scenario(schema, k, rng, **kwargs)
    if name is ScenarioName.NO_INTERSECTION:
        return no_intersection_scenario(schema, k, rng)
    if name is ScenarioName.NON_COVER:
        return non_cover_scenario(schema, k, rng, **kwargs)
    if name is ScenarioName.EXTREME_NON_COVER:
        return extreme_non_cover_scenario(schema, k, rng=rng, **kwargs)
    raise ValueError(f"unknown scenario {name!r}")  # pragma: no cover
