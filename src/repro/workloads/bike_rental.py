"""The sensor-enriched bicycle rental workload (Section 3, Table 1).

The motivating scenario of the paper: rental posts publish the bicycles
they detect in their vicinity; registered users subscribe with their rental
preferences extended by contextual information.  The schema mirrors
Table 1: bike identifier, frame size, brand, rental-post identifier and a
time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.model.attributes import (
    Attribute,
    CategoricalDomain,
    IntegerDomain,
    TimestampDomain,
)
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["bike_rental_schema", "BikeRentalWorkload", "BRANDS"]

#: bicycle brands available in the rental fleet (ordered, finite set)
BRANDS = ("X", "Y", "Z", "W", "V")


def bike_rental_schema(
    day: str = "2006-03-31",
    posts: int = 1_000,
    bikes: int = 10_000,
) -> Schema:
    """The Table 1 attribute space for one rental day.

    Attributes: ``bID`` (bike identifier range encoding the bike category),
    ``size`` (frame size in inches), ``brand`` (finite label set), ``rpID``
    (rental-post identifier encoding an area) and ``date`` (time window at
    one-minute granularity).
    """
    return Schema(
        [
            Attribute("bID", IntegerDomain(1, bikes), "bike identifier / category"),
            Attribute("size", IntegerDomain(14, 23), "frame size in inches"),
            Attribute("brand", CategoricalDomain(BRANDS), "bicycle brand"),
            Attribute("rpID", IntegerDomain(1, posts), "rental post identifier"),
            Attribute(
                "date",
                TimestampDomain(
                    f"{day}T00:00:00", f"{day}T23:59:59", granularity_seconds=60
                ),
                "availability window",
            ),
        ],
        name="bike-rental",
    )


@dataclass
class BikeRentalWorkload:
    """Generator of bike-rental subscriptions and publications.

    Subscriptions model user preferences (a bike-category range, a size
    range, optionally a brand, an area of rental posts and a time window);
    publications model a rental post detecting an available bicycle.

    The generator follows the paper's "similar but not equal interests"
    assumption: users cluster around a handful of popular rental areas and
    bike categories, and a fraction of them have *broad* preferences (any
    brand, any size, whole day, large area).  The structure is what makes
    subscription covering — pair-wise and group-wise — actually occur, as
    it would in a real deployment.
    """

    schema: Schema = None  # type: ignore[assignment]
    rng: RandomSource = None
    #: number of popular rental areas users cluster around
    hotspot_count: int = 10
    #: fraction of users with broad, covering-friendly preferences
    broad_user_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.schema is None:
            self.schema = bike_rental_schema()
        self._rng = ensure_rng(self.rng)
        posts = int(self.schema.domain("rpID").upper_bound)
        self._hotspots = self._rng.integers(1, posts + 1, size=self.hotspot_count)
        bikes = int(self.schema.domain("bID").upper_bound)
        #: bike categories are contiguous identifier blocks (e.g. city bikes,
        #: mountain bikes, ...), mirroring the paper's bID interpretation
        self._category_width = max(bikes // 10, 1)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscription(self, subscriber: Optional[str] = None) -> Subscription:
        """A random user preference subscription."""
        rng = self._rng
        bid_domain = self.schema.domain("bID")
        post_domain = self.schema.domain("rpID")
        date_domain = self.schema.domain("date")
        bikes = int(bid_domain.upper_bound)
        posts = int(post_domain.upper_bound)
        day_start = int(date_domain.lower_bound)
        day_end = int(date_domain.upper_bound)

        hotspot = int(self._hotspots[int(rng.integers(0, len(self._hotspots)))])
        broad = rng.random() < self.broad_user_fraction

        constraints = {}
        if broad:
            # Broad preferences: any bike of a whole category group (or any
            # bike at all), any usual size, any brand, a large area around a
            # popular hotspot and (mostly) the whole day.
            if rng.random() < 0.5:
                constraints["bID"] = (1, bikes)
            else:
                block = int(rng.integers(0, 5)) * 2 * self._category_width + 1
                constraints["bID"] = (block, min(block + 2 * self._category_width, bikes))
            constraints["size"] = (14, 23) if rng.random() < 0.5 else (16, 21)
            area = int(rng.integers(100, 300))
            constraints["rpID"] = (
                max(1, hotspot - area),
                min(posts, hotspot + area),
            )
            if rng.random() < 0.3:
                window = (day_start, day_end)
            else:
                start = day_start + int(rng.integers(0, 6 * 60))
                window = (start, min(day_end, start + 16 * 60))
            constraints["date"] = self._window(window[0], window[1] - window[0])
        else:
            # Specific preferences: one category block (or a slice of it),
            # a narrow size range, often a brand, a small area around a
            # hotspot and a few-hour window.
            block = int(rng.integers(0, 10)) * self._category_width + 1
            if rng.random() < 0.5:
                constraints["bID"] = (block, min(block + self._category_width - 1, bikes))
            else:
                offset = int(rng.integers(0, self._category_width // 2))
                constraints["bID"] = (
                    block + offset,
                    min(block + offset + self._category_width // 2, bikes),
                )
            size_low = int(rng.integers(16, 21))
            constraints["size"] = (size_low, min(size_low + int(rng.integers(0, 3)), 23))
            area = int(rng.integers(5, 60))
            constraints["rpID"] = (
                max(1, hotspot - area),
                min(posts, hotspot + area),
            )
            window_minutes = int(rng.integers(60, 8 * 60))
            window_start = int(
                rng.integers(day_start, max(day_end - window_minutes, day_start) + 1)
            )
            constraints["date"] = self._window(window_start, window_minutes)
            if rng.random() < 0.6:
                constraints["brand"] = BRANDS[int(rng.integers(0, len(BRANDS)))]
        return Subscription.from_constraints(
            self.schema, constraints, subscriber=subscriber
        )

    def _window(self, start_tick: int, minutes: int):
        from repro.model.intervals import Interval

        return Interval(float(start_tick), float(start_tick + minutes))

    def subscriptions(self, count: int, prefix: str = "user") -> List[Subscription]:
        """``count`` subscriptions attributed to numbered subscribers."""
        return [
            self.subscription(subscriber=f"{prefix}-{index + 1}")
            for index in range(count)
        ]

    # ------------------------------------------------------------------
    # Publications
    # ------------------------------------------------------------------
    def publication(self, publisher: Optional[str] = None) -> Publication:
        """A rental post announcing an available bicycle."""
        rng = self._rng
        values = {
            "bID": int(rng.integers(1, int(self.schema.domain("bID").upper_bound) + 1)),
            "size": int(rng.integers(14, 24)),
            "brand": BRANDS[int(rng.integers(0, len(BRANDS)))],
            "rpID": int(
                rng.integers(1, int(self.schema.domain("rpID").upper_bound) + 1)
            ),
            "date": self.schema.domain("date").decode(
                float(
                    rng.integers(
                        int(self.schema.domain("date").lower_bound),
                        int(self.schema.domain("date").upper_bound) + 1,
                    )
                )
            ),
        }
        return Publication.from_values(self.schema, values, publisher=publisher)

    def publications(self, count: int, prefix: str = "post") -> List[Publication]:
        """``count`` publications attributed to numbered rental posts."""
        return [
            self.publication(publisher=f"{prefix}-{index + 1}")
            for index in range(count)
        ]

    def matching_publication(
        self, subscription: Subscription, publisher: Optional[str] = None
    ) -> Publication:
        """A publication guaranteed to match ``subscription``.

        Models a rental post inside the subscriber's area announcing a
        bicycle from the requested category during the requested window —
        the event the subscriber is waiting for.
        """
        values = subscription.sample_point(self._rng)
        return Publication(self.schema, values, publisher=publisher)
