"""Grid resource-discovery workload (Section 3, Table 2).

Services announce their capabilities through subscriptions (CPU cycles,
disk, memory, service domain, availability window); jobs publish their
requirements.  A match means the job can be scheduled on the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.model.attributes import (
    Attribute,
    CategoricalDomain,
    IntegerDomain,
    TimestampDomain,
)
from repro.model.intervals import Interval
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["grid_schema", "GridWorkload", "SERVICE_DOMAINS"]

#: ordered service domains (``a.service.org`` … in Table 2)
SERVICE_DOMAINS = (
    "a.service.org",
    "b.service.org",
    "c.service.org",
    "d.compute.org",
    "e.compute.org",
    "f.storage.org",
)


def grid_schema(day: str = "2006-03-31") -> Schema:
    """The Table 2 attribute space for Grid resource discovery."""
    return Schema(
        [
            Attribute("CPUcycles", IntegerDomain(500, 10_000), "available MHz"),
            Attribute("disk", IntegerDomain(1, 1_000), "available disk (kB)"),
            Attribute("memory", IntegerDomain(1, 64), "available memory (GB)"),
            Attribute("service", CategoricalDomain(SERVICE_DOMAINS), "service domain"),
            Attribute(
                "time",
                TimestampDomain(
                    f"{day}T00:00:00", f"{day}T23:59:59", granularity_seconds=60
                ),
                "availability window",
            ),
        ],
        name="grid-discovery",
    )


#: service classes and their nominal capability envelopes
#: (CPU MHz range, disk kB range, max memory GB)
SERVICE_CLASSES = {
    "small": ((500, 2_500), (1, 100), 8),
    "medium": ((2_000, 6_000), (50, 500), 32),
    "large": ((5_000, 10_000), (200, 1_000), 64),
    "general": ((500, 10_000), (1, 1_000), 64),
}


@dataclass
class GridWorkload:
    """Generator of Grid service subscriptions and job publications.

    Services belong to a small number of capability classes (small, medium,
    large plus a few general-purpose machines) with per-service jitter,
    mirroring how real clusters are provisioned.  The class structure makes
    service announcements overlap and cover each other — the situation in
    which the paper's group subsumption pays off for resource discovery.
    """

    schema: Schema = None  # type: ignore[assignment]
    rng: RandomSource = None
    #: fraction of general-purpose services (they cover the class-specific ones)
    general_fraction: float = 0.2
    #: fraction of services available around the clock
    always_on_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.schema is None:
            self.schema = grid_schema()
        self._rng = ensure_rng(self.rng)

    # ------------------------------------------------------------------
    # Service announcements (subscriptions)
    # ------------------------------------------------------------------
    def service_subscription(self, service_id: Optional[str] = None) -> Subscription:
        """A service announcing the job profiles it can accept."""
        rng = self._rng
        if rng.random() < self.general_fraction:
            class_name = "general"
        else:
            class_name = ("small", "medium", "large")[int(rng.integers(0, 3))]
        (cpu_lo, cpu_hi), (disk_lo, disk_hi), memory_max = SERVICE_CLASSES[class_name]

        def jitter(low: int, high: int, spread: float = 0.1):
            width = high - low
            wobble_low = int(rng.integers(0, max(int(width * spread), 1) + 1))
            wobble_high = int(rng.integers(0, max(int(width * spread), 1) + 1))
            return low + wobble_low, high - wobble_high

        cpu_low, cpu_high = jitter(cpu_lo, cpu_hi)
        disk_low, disk_high = jitter(disk_lo, disk_hi)
        memory_high = max(1, memory_max - int(rng.integers(0, max(memory_max // 8, 1))))
        domain_index = int(rng.integers(0, len(SERVICE_DOMAINS)))

        time_domain = self.schema.domain("time")
        day_start = int(time_domain.lower_bound)
        day_end = int(time_domain.upper_bound)
        if rng.random() < self.always_on_fraction:
            window = Interval(float(day_start), float(day_end))
        else:
            window_minutes = int(rng.integers(4 * 60, 18 * 60))
            window_start = int(
                rng.integers(day_start, max(day_end - window_minutes, day_start) + 1)
            )
            window = Interval(
                float(window_start), float(window_start + window_minutes)
            )
        return Subscription.from_constraints(
            self.schema,
            {
                "CPUcycles": (cpu_low, max(cpu_high, cpu_low)),
                "disk": (disk_low, max(disk_high, disk_low)),
                "memory": (1, memory_high),
                "service": SERVICE_DOMAINS[domain_index],
                "time": window,
            },
            subscriber=service_id,
            metadata={"service_class": class_name},
        )

    def service_subscriptions(
        self, count: int, prefix: str = "service"
    ) -> List[Subscription]:
        """``count`` service announcements."""
        return [
            self.service_subscription(service_id=f"{prefix}-{index + 1}")
            for index in range(count)
        ]

    # ------------------------------------------------------------------
    # Job requests (publications)
    # ------------------------------------------------------------------
    def job_publication(self, job_id: Optional[str] = None) -> Publication:
        """A job describing the resources it needs."""
        rng = self._rng
        time_domain = self.schema.domain("time")
        values = {
            "CPUcycles": int(rng.integers(500, 10_001)),
            "disk": int(rng.integers(1, 1_001)),
            "memory": int(rng.integers(1, 65)),
            "service": SERVICE_DOMAINS[int(rng.integers(0, len(SERVICE_DOMAINS)))],
            "time": time_domain.decode(
                float(
                    rng.integers(
                        int(time_domain.lower_bound),
                        int(time_domain.upper_bound) + 1,
                    )
                )
            ),
        }
        return Publication.from_values(self.schema, values, publisher=job_id)

    def job_publications(self, count: int, prefix: str = "job") -> List[Publication]:
        """``count`` job requests."""
        return [
            self.job_publication(job_id=f"{prefix}-{index + 1}")
            for index in range(count)
        ]

    def matching_job(
        self, service: Subscription, job_id: Optional[str] = None
    ) -> Publication:
        """A job request guaranteed to fit the given service announcement."""
        values = service.sample_point(self._rng)
        return Publication(self.schema, values, publisher=job_id)
