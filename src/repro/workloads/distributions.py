"""Popularity and size distributions used by the comparison workload.

Section 6.4 of the paper simulates a realistic subscription stream with
power-law popularity: attributes are selected with a Zipf distribution
(skew 2.0), range centres follow a Pareto distribution (skew 1.0) to model
similar interests, and range sizes follow a normal distribution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive

__all__ = ["zipf_weights", "sample_zipf_ranks", "pareto_center", "normal_width"]


def zipf_weights(count: int, skew: float = 2.0) -> np.ndarray:
    """Normalised Zipf probabilities for ``count`` ranks.

    Rank ``r`` (1-based) receives weight proportional to ``1 / r**skew``.
    """
    require_positive(count, "count")
    require_positive(skew, "skew")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = 1.0 / np.power(ranks, skew)
    return weights / weights.sum()


def sample_zipf_ranks(
    count: int,
    size: int,
    skew: float = 2.0,
    rng: RandomSource = None,
) -> np.ndarray:
    """Sample ``size`` ranks in ``[0, count)`` with Zipf(skew) popularity."""
    generator = ensure_rng(rng)
    weights = zipf_weights(count, skew)
    return generator.choice(count, size=size, p=weights)


def pareto_center(
    lower: float,
    upper: float,
    skew: float = 1.0,
    rng: RandomSource = None,
) -> float:
    """Sample a range centre with a Pareto(skew) bias toward ``lower``.

    The heavy-tailed Pareto sample is folded into the ``[lower, upper]``
    domain so that most centres cluster near the popular (low) end of the
    domain, modelling "similar interests".
    """
    if upper < lower:
        raise ValueError("upper must not be smaller than lower")
    require_positive(skew, "skew")
    generator = ensure_rng(rng)
    raw = generator.pareto(skew)  # >= 0, heavy tailed
    # Fold the tail back into [0, 1): values beyond 1 wrap around so the
    # domain stays fully reachable while staying low-biased.
    fraction = raw % 1.0
    return lower + fraction * (upper - lower)


def normal_width(
    mean: float,
    std: float,
    minimum: float = 1.0,
    maximum: float = float("inf"),
    rng: RandomSource = None,
) -> float:
    """Sample a range width from a clipped normal distribution."""
    require_positive(mean, "mean")
    if std < 0:
        raise ValueError("std must be non-negative")
    generator = ensure_rng(rng)
    width = generator.normal(mean, std)
    return float(min(max(abs(width), minimum), maximum))
