"""Exception hierarchy for the data model layer."""


class ModelError(Exception):
    """Base class for all data-model errors."""


class DomainError(ModelError):
    """A value or interval is incompatible with an attribute domain."""


class SchemaError(ModelError):
    """A schema is malformed or an attribute lookup failed."""


class ValidationError(ModelError):
    """A subscription or publication violates its schema."""


class SerializationError(ModelError):
    """A serialized representation could not be parsed or produced."""
