"""Attribute domains.

The paper assumes every predicate constrains an attribute whose values are
"elements from (ordered) finite sets" — bike identifiers, rental-post
identifiers, frame sizes, brands, dates.  We provide four concrete domains
and encode each one onto a numeric axis so that the core algorithms work on
plain ``[low, high]`` intervals:

``IntegerDomain``
    Ordered integers ``lower … upper``.  The witness-counting functions
    (``I(s)``, ``I(sw)``) use exact point counts on these domains, matching
    the paper's integer-solution counting in Proposition 2.

``ContinuousDomain``
    A real interval with a configurable *resolution* used as the unit for
    measure computations (the paper's analysis carries over by replacing
    point counts with Lebesgue measure).

``CategoricalDomain``
    A finite set of labels mapped to consecutive integer codes, as suggested
    by the paper ("brand would be given as an element from a finite set").

``TimestampDomain``
    ISO-8601 timestamps mapped to integer seconds since the Unix epoch at a
    configurable granularity, used for the date attributes of the motivating
    scenarios (Tables 1 and 2).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.model.errors import DomainError
from repro.model.intervals import Interval

__all__ = [
    "AttributeDomain",
    "Attribute",
    "IntegerDomain",
    "ContinuousDomain",
    "CategoricalDomain",
    "TimestampDomain",
]


class AttributeDomain(ABC):
    """Abstract base class of every attribute domain.

    A domain maps externally visible values onto an internal numeric axis
    and knows how to measure intervals and sample points on that axis.
    """

    #: whether the internal axis is discrete (integer points)
    is_discrete: bool = True

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def lower_bound(self) -> float:
        """Smallest encoded value of the domain."""

    @property
    @abstractmethod
    def upper_bound(self) -> float:
        """Largest encoded value of the domain."""

    def full_interval(self) -> Interval:
        """Return the interval spanning the entire domain."""
        return Interval(self.lower_bound, self.upper_bound)

    @property
    def extent(self) -> float:
        """Measure of the whole domain."""
        return self.measure(self.full_interval())

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @abstractmethod
    def encode(self, value: Any) -> float:
        """Encode an external value to the internal numeric axis."""

    @abstractmethod
    def decode(self, encoded: float) -> Any:
        """Decode an internal numeric value back to the external form."""

    def encode_interval(self, low: Any, high: Any) -> Interval:
        """Encode a pair of external bounds into a clipped interval."""
        interval = Interval(self.encode(low), self.encode(high))
        if interval.is_empty:
            raise DomainError(
                f"interval [{low!r}, {high!r}] is empty after encoding"
            )
        return self.clip(interval)

    def contains_value(self, value: Any) -> bool:
        """Whether the external value belongs to the domain."""
        try:
            encoded = self.encode(value)
        except DomainError:
            return False
        return self.lower_bound <= encoded <= self.upper_bound

    # ------------------------------------------------------------------
    # Geometry on the internal axis
    # ------------------------------------------------------------------
    def clip(self, interval: Interval) -> Interval:
        """Clip an interval to the domain bounds."""
        return interval.clamp(self.lower_bound, self.upper_bound)

    def snap(self, interval: Interval) -> Interval:
        """Snap interval endpoints to representable domain values.

        Discrete domains round the lower endpoint up and the upper endpoint
        down so the snapped interval contains exactly the representable
        points of the original.
        """
        if interval.is_empty:
            return Interval.empty()
        if not self.is_discrete:
            return interval
        low = math.ceil(interval.low) if math.isfinite(interval.low) else interval.low
        high = (
            math.floor(interval.high) if math.isfinite(interval.high) else interval.high
        )
        if low > high:
            return Interval.empty()
        return Interval(float(low), float(high))

    @abstractmethod
    def measure(self, interval: Interval) -> float:
        """Measure of an interval: point count (discrete) or length."""

    @abstractmethod
    def sample(self, interval: Interval, rng: Any) -> float:
        """Sample a uniformly random encoded value inside ``interval``.

        ``rng`` is a :class:`numpy.random.Generator` (or any object with
        compatible ``integers``/``uniform`` methods).
        """

    def gap_measure(self, width: float) -> float:
        """Measure of an axis-aligned gap of raw width ``width``.

        Used by the ``rho_w`` estimator (Algorithm 2): on discrete domains a
        raw width of ``w`` corresponds to ``w`` integer points (the points
        strictly on one side of a bound), on continuous domains to length
        ``w``.
        """
        if width <= 0:
            return 0.0
        return float(width)

    # ------------------------------------------------------------------
    # Serialization helpers
    # ------------------------------------------------------------------
    @abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Serializable description of the domain."""

    def describe(self) -> str:
        """Short human-readable description."""
        return f"{type(self).__name__}[{self.lower_bound:g}, {self.upper_bound:g}]"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


@dataclass(frozen=True)
class IntegerDomain(AttributeDomain):
    """Ordered integer domain ``[lower, upper]``."""

    lower: int
    upper: int

    is_discrete = True

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise DomainError(
                f"IntegerDomain lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def lower_bound(self) -> float:
        return float(self.lower)

    @property
    def upper_bound(self) -> float:
        return float(self.upper)

    @property
    def cardinality(self) -> int:
        """Number of integer points in the domain."""
        return self.upper - self.lower + 1

    def encode(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DomainError(f"cannot encode {value!r} on an integer domain")
        return float(value)

    def decode(self, encoded: float) -> int:
        return int(round(encoded))

    def measure(self, interval: Interval) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            return 0.0
        return snapped.high - snapped.low + 1.0

    def sample(self, interval: Interval, rng: Any) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            raise DomainError("cannot sample from an empty interval")
        return float(rng.integers(int(snapped.low), int(snapped.high) + 1))

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "integer", "lower": self.lower, "upper": self.upper}


@dataclass(frozen=True)
class ContinuousDomain(AttributeDomain):
    """Real-valued domain ``[lower, upper]``.

    ``resolution`` is the smallest meaningful gap width; it floors the gap
    measure so that the point-witness probability never collapses to zero
    because of floating-point noise.
    """

    lower: float
    upper: float
    resolution: float = 1e-9

    is_discrete = False

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise DomainError(
                f"ContinuousDomain lower bound {self.lower} exceeds upper bound {self.upper}"
            )
        if self.resolution <= 0:
            raise DomainError("resolution must be positive")

    @property
    def lower_bound(self) -> float:
        return float(self.lower)

    @property
    def upper_bound(self) -> float:
        return float(self.upper)

    def encode(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DomainError(f"cannot encode {value!r} on a continuous domain")
        return float(value)

    def decode(self, encoded: float) -> float:
        return float(encoded)

    def measure(self, interval: Interval) -> float:
        clipped = self.clip(interval)
        if clipped.is_empty:
            return 0.0
        return max(clipped.span, self.resolution)

    def sample(self, interval: Interval, rng: Any) -> float:
        clipped = self.clip(interval)
        if clipped.is_empty:
            raise DomainError("cannot sample from an empty interval")
        if clipped.is_point:
            return clipped.low
        return float(rng.uniform(clipped.low, clipped.high))

    def gap_measure(self, width: float) -> float:
        if width <= 0:
            return 0.0
        return max(float(width), self.resolution)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "continuous",
            "lower": self.lower,
            "upper": self.upper,
            "resolution": self.resolution,
        }


class CategoricalDomain(AttributeDomain):
    """Finite ordered set of labels mapped to consecutive integer codes."""

    is_discrete = True

    def __init__(self, values: Sequence[Any]):
        if not values:
            raise DomainError("CategoricalDomain requires at least one value")
        self._values: Tuple[Any, ...] = tuple(values)
        if len(set(self._values)) != len(self._values):
            raise DomainError("CategoricalDomain values must be unique")
        self._codes: Dict[Any, int] = {v: i for i, v in enumerate(self._values)}

    @property
    def values(self) -> Tuple[Any, ...]:
        """The ordered labels of the domain."""
        return self._values

    @property
    def cardinality(self) -> int:
        """Number of labels."""
        return len(self._values)

    @property
    def lower_bound(self) -> float:
        return 0.0

    @property
    def upper_bound(self) -> float:
        return float(len(self._values) - 1)

    def encode(self, value: Any) -> float:
        if value in self._codes:
            return float(self._codes[value])
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            # Already a code (used internally when sampling).
            code = float(value)
            if 0 <= code <= self.upper_bound:
                return code
        raise DomainError(f"{value!r} is not a member of the categorical domain")

    def decode(self, encoded: float) -> Any:
        index = int(round(encoded))
        if not 0 <= index < len(self._values):
            raise DomainError(f"code {encoded!r} outside the categorical domain")
        return self._values[index]

    def measure(self, interval: Interval) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            return 0.0
        return snapped.high - snapped.low + 1.0

    def sample(self, interval: Interval, rng: Any) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            raise DomainError("cannot sample from an empty interval")
        return float(rng.integers(int(snapped.low), int(snapped.high) + 1))

    def encode_members(self, members: Sequence[Any]) -> Interval:
        """Encode a contiguous run of labels into an interval.

        Raises :class:`DomainError` when the labels are not contiguous in the
        domain order (the range-based model cannot express holes).
        """
        codes = sorted(self._codes[m] for m in members)
        if not codes:
            raise DomainError("cannot encode an empty member list")
        for a, b in zip(codes, codes[1:]):
            if b != a + 1:
                raise DomainError(
                    "categorical members must be contiguous in domain order"
                )
        return Interval(float(codes[0]), float(codes[-1]))

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "categorical", "values": list(self._values)}

    def describe(self) -> str:
        return f"CategoricalDomain({len(self._values)} values)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CategoricalDomain) and self._values == other._values

    def __hash__(self) -> int:
        return hash(("categorical", self._values))


class TimestampDomain(AttributeDomain):
    """ISO-8601 timestamps mapped to integer epoch seconds."""

    is_discrete = True

    def __init__(
        self,
        start: Union[str, datetime],
        end: Union[str, datetime],
        granularity_seconds: int = 1,
    ):
        if granularity_seconds <= 0:
            raise DomainError("granularity must be a positive number of seconds")
        self._granularity = int(granularity_seconds)
        self._start = self._parse(start)
        self._end = self._parse(end)
        if self._start > self._end:
            raise DomainError("TimestampDomain start is after end")

    @staticmethod
    def _parse(value: Union[str, datetime, int, float]) -> int:
        if isinstance(value, datetime):
            dt = value
        elif isinstance(value, str):
            try:
                dt = datetime.fromisoformat(value)
            except ValueError as exc:
                raise DomainError(f"cannot parse timestamp {value!r}") from exc
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            return int(value)
        else:
            raise DomainError(f"cannot parse timestamp {value!r}")
        if dt.tzinfo is None:
            dt = dt.replace(tzinfo=timezone.utc)
        return int(dt.timestamp())

    @property
    def granularity_seconds(self) -> int:
        """Tick size of the internal axis, in seconds."""
        return self._granularity

    @property
    def lower_bound(self) -> float:
        return float(self._start // self._granularity)

    @property
    def upper_bound(self) -> float:
        return float(self._end // self._granularity)

    def encode(self, value: Any) -> float:
        seconds = self._parse(value)
        return float(seconds // self._granularity)

    def decode(self, encoded: float) -> datetime:
        seconds = int(round(encoded)) * self._granularity
        return datetime.fromtimestamp(seconds, tz=timezone.utc)

    def measure(self, interval: Interval) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            return 0.0
        return snapped.high - snapped.low + 1.0

    def sample(self, interval: Interval, rng: Any) -> float:
        snapped = self.snap(self.clip(interval))
        if snapped.is_empty:
            raise DomainError("cannot sample from an empty interval")
        return float(rng.integers(int(snapped.low), int(snapped.high) + 1))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "timestamp",
            "start": self.decode(self.lower_bound).isoformat(),
            "end": self.decode(self.upper_bound).isoformat(),
            "granularity_seconds": self._granularity,
        }

    def describe(self) -> str:
        return (
            f"TimestampDomain[{self.decode(self.lower_bound).isoformat()}, "
            f"{self.decode(self.upper_bound).isoformat()}]"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TimestampDomain)
            and self._start == other._start
            and self._end == other._end
            and self._granularity == other._granularity
        )

    def __hash__(self) -> int:
        return hash(("timestamp", self._start, self._end, self._granularity))


@dataclass(frozen=True)
class Attribute:
    """A named attribute with its domain."""

    name: str
    domain: AttributeDomain
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise DomainError("attribute name must be non-empty")

    def full_interval(self) -> Interval:
        """Interval spanning the attribute's whole domain."""
        return self.domain.full_interval()

    def to_dict(self) -> Dict[str, Any]:
        """Serializable description of the attribute."""
        payload = {"name": self.name, "domain": self.domain.to_dict()}
        if self.description:
            payload["description"] = self.description
        return payload


def domain_from_dict(payload: Dict[str, Any]) -> AttributeDomain:
    """Inverse of ``AttributeDomain.to_dict``."""
    kind = payload.get("type")
    if kind == "integer":
        return IntegerDomain(int(payload["lower"]), int(payload["upper"]))
    if kind == "continuous":
        return ContinuousDomain(
            float(payload["lower"]),
            float(payload["upper"]),
            float(payload.get("resolution", 1e-9)),
        )
    if kind == "categorical":
        return CategoricalDomain(payload["values"])
    if kind == "timestamp":
        return TimestampDomain(
            payload["start"],
            payload["end"],
            int(payload.get("granularity_seconds", 1)),
        )
    raise DomainError(f"unknown domain type {kind!r}")
