"""Fluent builder for subscriptions.

The builder offers a small DSL mirroring the verbose subscriptions of the
paper's motivating scenario (Section 3), e.g.::

    subscription = (
        SubscriptionBuilder(schema, subscriber="alice")
        .between("bID", 1000, 1999)
        .equals("size", 19)
        .equals("brand", "X")
        .between("rpID", 820, 840)
        .between("date", "2006-03-31T16:00:00", "2006-03-31T20:00:00")
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.model.errors import ValidationError
from repro.model.intervals import Interval
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = ["SubscriptionBuilder"]


class SubscriptionBuilder:
    """Accumulates per-attribute constraints and builds a subscription."""

    def __init__(
        self,
        schema: Schema,
        subscriber: Optional[str] = None,
        subscription_id: Optional[str] = None,
    ):
        self._schema = schema
        self._subscriber = subscriber
        self._subscription_id = subscription_id
        self._constraints: Dict[str, Any] = {}
        self._metadata: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Constraint setters
    # ------------------------------------------------------------------
    def between(self, attribute: str, low: Any, high: Any) -> "SubscriptionBuilder":
        """Constrain ``attribute`` to the inclusive range ``[low, high]``."""
        self._check_attribute(attribute)
        self._merge(attribute, (low, high))
        return self

    def equals(self, attribute: str, value: Any) -> "SubscriptionBuilder":
        """Constrain ``attribute`` to a single value."""
        self._check_attribute(attribute)
        self._merge(attribute, (value, value))
        return self

    def at_least(self, attribute: str, value: Any) -> "SubscriptionBuilder":
        """Constrain ``attribute`` to be at least ``value``."""
        self._check_attribute(attribute)
        domain = self._schema.domain(attribute)
        self._merge(attribute, Interval(domain.encode(value), domain.upper_bound))
        return self

    def at_most(self, attribute: str, value: Any) -> "SubscriptionBuilder":
        """Constrain ``attribute`` to be at most ``value``."""
        self._check_attribute(attribute)
        domain = self._schema.domain(attribute)
        self._merge(attribute, Interval(domain.lower_bound, domain.encode(value)))
        return self

    def one_of(self, attribute: str, values: Sequence[Any]) -> "SubscriptionBuilder":
        """Constrain a categorical ``attribute`` to a contiguous label run."""
        self._check_attribute(attribute)
        domain = self._schema.domain(attribute)
        encode_members = getattr(domain, "encode_members", None)
        if encode_members is None:
            raise ValidationError(
                f"one_of requires a categorical domain for {attribute!r}"
            )
        self._merge(attribute, encode_members(list(values)))
        return self

    def any(self, attribute: str) -> "SubscriptionBuilder":
        """Explicitly mark ``attribute`` as unconstrained."""
        self._check_attribute(attribute)
        self._constraints[attribute] = None
        return self

    def with_metadata(self, **metadata: Any) -> "SubscriptionBuilder":
        """Attach free-form metadata to the resulting subscription."""
        self._metadata.update(metadata)
        return self

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_attribute(self, attribute: str) -> None:
        if attribute not in self._schema:
            raise ValidationError(
                f"unknown attribute {attribute!r} for schema {self._schema.name!r}"
            )

    def _merge(self, attribute: str, spec: Any) -> None:
        domain = self._schema.domain(attribute)
        if isinstance(spec, Interval):
            new = domain.clip(spec)
        else:
            new = domain.encode_interval(spec[0], spec[1])
        existing = self._constraints.get(attribute)
        if isinstance(existing, Interval):
            new = existing.intersection(new)
        if new.is_empty:
            raise ValidationError(
                f"conjunction of constraints on {attribute!r} is unsatisfiable"
            )
        self._constraints[attribute] = new

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Subscription:
        """Materialise the accumulated constraints into a subscription."""
        return Subscription.from_constraints(
            self._schema,
            self._constraints,
            subscription_id=self._subscription_id,
            subscriber=self._subscriber,
            metadata=self._metadata,
        )
