"""Serialization of the data model to plain dictionaries and JSON.

Brokers in the distributed simulator exchange subscriptions and
publications as messages; serialization keeps those messages inspectable
and allows workloads to be persisted and replayed.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.model.attributes import Attribute, domain_from_dict
from repro.model.errors import SerializationError
from repro.model.publications import Publication
from repro.model.schema import Schema
from repro.model.subscriptions import Subscription

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "subscription_to_dict",
    "subscription_from_dict",
    "subscription_to_json",
    "subscription_from_json",
    "publication_to_dict",
    "publication_from_dict",
]


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialize a schema."""
    return schema.to_dict()


def schema_from_dict(payload: Dict[str, Any]) -> Schema:
    """Deserialize a schema produced by :func:`schema_to_dict`."""
    try:
        attributes = [
            Attribute(
                item["name"],
                domain_from_dict(item["domain"]),
                item.get("description", ""),
            )
            for item in payload["attributes"]
        ]
        return Schema(attributes, name=payload.get("name", "schema"))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed schema payload: {exc}") from exc


def subscription_to_dict(subscription: Subscription) -> Dict[str, Any]:
    """Serialize a subscription (bounds are stored in encoded form)."""
    return {
        "id": subscription.id,
        "subscriber": subscription.subscriber,
        "lows": [float(v) for v in subscription.lows],
        "highs": [float(v) for v in subscription.highs],
        "metadata": dict(subscription.metadata),
    }


def subscription_from_dict(payload: Dict[str, Any], schema: Schema) -> Subscription:
    """Deserialize a subscription produced by :func:`subscription_to_dict`."""
    try:
        return Subscription(
            schema,
            payload["lows"],
            payload["highs"],
            subscription_id=payload.get("id"),
            subscriber=payload.get("subscriber"),
            metadata=payload.get("metadata"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed subscription payload: {exc}") from exc


def subscription_to_json(subscription: Subscription) -> str:
    """Serialize a subscription to a JSON string."""
    return json.dumps(subscription_to_dict(subscription), sort_keys=True)


def subscription_from_json(payload: str, schema: Schema) -> Subscription:
    """Deserialize a subscription from a JSON string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return subscription_from_dict(data, schema)


def publication_to_dict(publication: Publication) -> Dict[str, Any]:
    """Serialize a publication (values are stored in encoded form)."""
    return {
        "id": publication.id,
        "publisher": publication.publisher,
        "values": [float(v) for v in publication.values],
        "metadata": dict(publication.metadata),
    }


def publication_from_dict(payload: Dict[str, Any], schema: Schema) -> Publication:
    """Deserialize a publication produced by :func:`publication_to_dict`."""
    try:
        return Publication(
            schema,
            payload["values"],
            publication_id=payload.get("id"),
            publisher=payload.get("publisher"),
            metadata=payload.get("metadata"),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed publication payload: {exc}") from exc
