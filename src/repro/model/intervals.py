"""Closed numeric intervals.

An :class:`Interval` is the building block of every subscription: the paper
models each simple predicate pair ``x_j >= low`` and ``x_j <= high`` as a
closed range on attribute ``x_j``.  Unbounded sides are represented with
``-inf`` / ``+inf`` which the paper interprets as "the attribute is not
significant for this subscription".

The interval is domain-agnostic: whether its endpoints are integer codes,
category codes or timestamps is decided by the attribute domain that
produced it (see :mod:`repro.model.attributes`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` over the reals.

    An interval with ``low > high`` is *empty*.  The canonical empty interval
    is :meth:`Interval.empty`.

    Parameters
    ----------
    low:
        Lower endpoint (inclusive).  ``-inf`` means unbounded below.
    high:
        Upper endpoint (inclusive).  ``+inf`` means unbounded above.
    """

    low: float
    high: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "Interval":
        """Return the canonical empty interval."""
        return Interval(math.inf, -math.inf)

    @staticmethod
    def unbounded() -> "Interval":
        """Return the interval covering the whole real line."""
        return Interval(-math.inf, math.inf)

    @staticmethod
    def point(value: float) -> "Interval":
        """Return the degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def hull(intervals: Iterable["Interval"]) -> "Interval":
        """Return the smallest interval containing every non-empty input.

        Returns the empty interval when all inputs are empty (or there are
        no inputs at all).
        """
        low = math.inf
        high = -math.inf
        for interval in intervals:
            if interval.is_empty:
                continue
            low = min(low, interval.low)
            high = max(high, interval.high)
        if low > high:
            return Interval.empty()
        return Interval(low, high)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the interval contains no point."""
        return self.low > self.high

    @property
    def is_point(self) -> bool:
        """Whether the interval is a single point."""
        return self.low == self.high and not self.is_empty

    @property
    def is_bounded(self) -> bool:
        """Whether both endpoints are finite."""
        return math.isfinite(self.low) and math.isfinite(self.high)

    @property
    def span(self) -> float:
        """Length ``high - low`` (0 for points, ``-inf``-free for empties)."""
        if self.is_empty:
            return 0.0
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is entirely inside ``self``.

        The empty interval is contained in everything.
        """
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.low <= other.low and other.high <= self.high

    # ``covers`` is the publish/subscribe term for containment.
    covers = contains_interval

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.low <= other.high and other.low <= self.high

    def overlaps_strictly(self, other: "Interval") -> bool:
        """Whether the intersection has positive length."""
        if self.is_empty or other.is_empty:
            return False
        return min(self.high, other.high) > max(self.low, other.low)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval":
        """Return the intersection of the two intervals (possibly empty)."""
        if self.is_empty or other.is_empty:
            return Interval.empty()
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return Interval.empty()
        return Interval(low, high)

    def union_hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both inputs."""
        return Interval.hull((self, other))

    def clamp(self, low: float, high: float) -> "Interval":
        """Return the interval clipped to ``[low, high]``."""
        return self.intersection(Interval(low, high))

    def shift(self, offset: float) -> "Interval":
        """Return the interval translated by ``offset``."""
        if self.is_empty:
            return Interval.empty()
        return Interval(self.low + offset, self.high + offset)

    def expand(self, amount: float) -> "Interval":
        """Return the interval grown by ``amount`` on each side."""
        if self.is_empty:
            return Interval.empty()
        return Interval(self.low - amount, self.high + amount)

    def split(self, value: float) -> Tuple["Interval", "Interval"]:
        """Split at ``value`` into ``[low, value]`` and ``[value, high]``.

        Parts that would be empty are returned as the canonical empty
        interval.
        """
        if self.is_empty:
            return Interval.empty(), Interval.empty()
        left = Interval(self.low, min(self.high, value))
        right = Interval(max(self.low, value), self.high)
        if left.low > left.high:
            left = Interval.empty()
        if right.low > right.high:
            right = Interval.empty()
        return left, right

    def difference(self, other: "Interval") -> Tuple["Interval", ...]:
        """Return ``self`` minus ``other`` as a tuple of 0, 1 or 2 intervals.

        The result treats intervals as subsets of the real line; callers on
        discrete domains should re-snap endpoints through the domain.
        """
        if self.is_empty:
            return ()
        if other.is_empty or not self.intersects(other):
            return (self,)
        pieces = []
        if self.low < other.low:
            pieces.append(Interval(self.low, other.low))
        if other.high < self.high:
            pieces.append(Interval(other.high, self.high))
        return tuple(pieces)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def midpoint(self) -> float:
        """Midpoint of a bounded, non-empty interval."""
        if self.is_empty:
            raise ValueError("empty interval has no midpoint")
        if not self.is_bounded:
            raise ValueError("unbounded interval has no midpoint")
        return (self.low + self.high) / 2.0

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(low, high)``."""
        return (self.low, self.high)

    def __iter__(self) -> Iterator[float]:
        yield self.low
        yield self.high

    def __contains__(self, value: object) -> bool:
        if isinstance(value, Interval):
            return self.contains_interval(value)
        if isinstance(value, (int, float)):
            return self.contains(float(value))
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        if self.is_empty:
            return "Interval.empty()"
        return f"Interval({self.low!r}, {self.high!r})"

    def pretty(self, precision: Optional[int] = None) -> str:
        """Human-readable ``[low, high]`` string."""
        if self.is_empty:
            return "[]"
        if precision is None:
            return f"[{self.low:g}, {self.high:g}]"
        return f"[{self.low:.{precision}f}, {self.high:.{precision}f}]"
