"""Data model for content-based publish/subscribe.

Publications are points in an ``m``-dimensional attribute space and
subscriptions are conjunctions of range predicates, i.e. axis-aligned
hyper-rectangles (convex polyhedra in the paper's terminology).  Attribute
values come from *domains* (integer ranges, continuous ranges, finite
categorical sets, timestamps) that all encode to numbers so the core
algorithms can treat every subscription uniformly as a box of
``[low, high]`` intervals.
"""

from repro.model.attributes import (
    Attribute,
    AttributeDomain,
    CategoricalDomain,
    ContinuousDomain,
    IntegerDomain,
    TimestampDomain,
)
from repro.model.builders import SubscriptionBuilder
from repro.model.errors import (
    DomainError,
    ModelError,
    SchemaError,
    SerializationError,
    ValidationError,
)
from repro.model.intervals import Interval
from repro.model.predicates import Operator, Predicate
from repro.model.publications import ImprecisePublication, Publication
from repro.model.schema import Schema
from repro.model.serialization import (
    publication_from_dict,
    publication_to_dict,
    schema_from_dict,
    schema_to_dict,
    subscription_from_dict,
    subscription_from_json,
    subscription_to_dict,
    subscription_to_json,
)
from repro.model.subscriptions import Subscription

__all__ = [
    "Attribute",
    "AttributeDomain",
    "CategoricalDomain",
    "ContinuousDomain",
    "DomainError",
    "ImprecisePublication",
    "IntegerDomain",
    "Interval",
    "ModelError",
    "Operator",
    "Predicate",
    "Publication",
    "Schema",
    "SchemaError",
    "SerializationError",
    "Subscription",
    "SubscriptionBuilder",
    "TimestampDomain",
    "ValidationError",
    "publication_from_dict",
    "publication_to_dict",
    "schema_from_dict",
    "schema_to_dict",
    "subscription_from_dict",
    "subscription_from_json",
    "subscription_to_dict",
    "subscription_to_json",
]
