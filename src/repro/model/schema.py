"""Subscription-space schemas.

A :class:`Schema` fixes the ordered list of ``m`` attributes (the paper's
``x_1 … x_m``) over which subscriptions and publications are defined.  The
paper assumes every subscription constrains the same ``m`` attributes, with
an unconstrained attribute represented by the bounds ``(-inf, +inf)``; a
schema makes that convention explicit and supplies the per-attribute
domains used for measuring and sampling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.model.attributes import (
    Attribute,
    AttributeDomain,
    CategoricalDomain,
    ContinuousDomain,
    IntegerDomain,
    TimestampDomain,
)
from repro.model.errors import SchemaError
from repro.model.intervals import Interval

__all__ = ["Schema", "SchemaVectors"]


class SchemaVectors:
    """Per-attribute domain facts as NumPy arrays, computed once per schema.

    The vectorised pipeline stages (conflict-table gap measures, RSPC
    sampling-plan hoisting) need per-attribute discreteness and measure
    resolutions as arrays rather than through per-cell domain method
    calls.  ``vectorisable`` is ``True`` only when every domain is one of
    the built-in types whose measure semantics the vectorised code
    replicates bit-for-bit; callers must fall back to the per-object
    code path otherwise (e.g. for user-defined domains overriding
    ``measure``).
    """

    __slots__ = ("discrete", "resolution", "vectorisable")

    _EXACT_TYPES = (IntegerDomain, CategoricalDomain, TimestampDomain, ContinuousDomain)

    def __init__(self, attributes: Tuple[Attribute, ...]):
        self.discrete = np.array(
            [a.domain.is_discrete for a in attributes], dtype=bool
        )
        self.resolution = np.array(
            [
                a.domain.resolution if isinstance(a.domain, ContinuousDomain) else 0.0
                for a in attributes
            ],
            dtype=float,
        )
        self.vectorisable = all(
            type(a.domain) in self._EXACT_TYPES for a in attributes
        )


class Schema:
    """An ordered collection of named attributes.

    Parameters
    ----------
    attributes:
        Either :class:`Attribute` instances or ``(name, domain)`` pairs.
    name:
        Optional human-readable name for the schema.
    """

    def __init__(
        self,
        attributes: Iterable[Union[Attribute, Tuple[str, AttributeDomain]]],
        name: str = "schema",
    ):
        attrs: List[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            else:
                attr_name, domain = item
                attrs.append(Attribute(attr_name, domain))
        if not attrs:
            raise SchemaError("a schema requires at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(attrs)}
        self.name = name
        self._vectors: Optional[SchemaVectors] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def uniform_integer(
        m: int,
        lower: int = 0,
        upper: int = 10_000,
        prefix: str = "x",
        name: str = "uniform",
    ) -> "Schema":
        """Build a schema of ``m`` identical integer attributes.

        This is the setting used throughout the paper's evaluation: ``m``
        range attributes over a common integer domain.
        """
        if m <= 0:
            raise SchemaError("m must be positive")
        attributes = [
            Attribute(f"{prefix}{j + 1}", IntegerDomain(lower, upper))
            for j in range(m)
        ]
        return Schema(attributes, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The schema's attributes in order."""
        return self._attributes

    @property
    def m(self) -> int:
        """Number of attributes (the paper's ``m``)."""
        return len(self._attributes)

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in order."""
        return tuple(a.name for a in self._attributes)

    @property
    def domains(self) -> Tuple[AttributeDomain, ...]:
        """Attribute domains in order."""
        return tuple(a.domain for a in self._attributes)

    def index_of(self, name: str) -> int:
        """Position of the attribute called ``name``."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    def attribute(self, key: Union[str, int]) -> Attribute:
        """Look up an attribute by name or position."""
        if isinstance(key, str):
            return self._attributes[self.index_of(key)]
        if isinstance(key, int):
            if not 0 <= key < self.m:
                raise SchemaError(f"attribute index {key} out of range")
            return self._attributes[key]
        raise SchemaError(f"invalid attribute key {key!r}")

    def domain(self, key: Union[str, int]) -> AttributeDomain:
        """Domain of the attribute identified by ``key``."""
        return self.attribute(key).domain

    def __len__(self) -> int:
        return self.m

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Schema({self.name!r}, m={self.m})"

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def vectors(self) -> SchemaVectors:
        """Cached per-attribute domain arrays for the vectorised stages."""
        if self._vectors is None:
            self._vectors = SchemaVectors(self._attributes)
        return self._vectors

    def full_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-attribute domain bounds as ``(lows, highs)`` arrays."""
        lows = np.array([a.domain.lower_bound for a in self._attributes], dtype=float)
        highs = np.array([a.domain.upper_bound for a in self._attributes], dtype=float)
        return lows, highs

    def full_intervals(self) -> List[Interval]:
        """Per-attribute domain intervals."""
        return [a.full_interval() for a in self._attributes]

    def measure(self, lows: np.ndarray, highs: np.ndarray) -> float:
        """Measure (``I(.)``) of the box described by ``lows``/``highs``."""
        total = 1.0
        for j, attr in enumerate(self._attributes):
            total *= attr.domain.measure(Interval(float(lows[j]), float(highs[j])))
            if total == 0.0:
                return 0.0
        return total

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_point(self, values: Mapping[str, Any]) -> np.ndarray:
        """Encode a full assignment of attribute values to a point array."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise SchemaError(f"missing values for attributes: {missing}")
        point = np.empty(self.m, dtype=float)
        for j, attr in enumerate(self._attributes):
            point[j] = attr.domain.encode(values[attr.name])
        return point

    def decode_point(self, point: Sequence[float]) -> Dict[str, Any]:
        """Decode a point array back to a name→value mapping."""
        if len(point) != self.m:
            raise SchemaError(
                f"point has {len(point)} coordinates, schema expects {self.m}"
            )
        return {
            attr.name: attr.domain.decode(float(point[j]))
            for j, attr in enumerate(self._attributes)
        }

    def encode_constraints(
        self, constraints: Mapping[str, Any]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode per-attribute constraints to ``(lows, highs)`` arrays.

        Each constraint value may be a single value (equality), a
        ``(low, high)`` pair, an :class:`Interval`, or ``None`` / ``"*"`` for
        "unconstrained".  Unlisted attributes are unconstrained and take the
        full domain range, following the paper's convention.
        """
        lows, highs = self.full_bounds()
        for name, spec in constraints.items():
            j = self.index_of(name)
            domain = self._attributes[j].domain
            interval = self._encode_constraint(domain, spec)
            lows[j] = interval.low
            highs[j] = interval.high
        return lows, highs

    @staticmethod
    def _encode_constraint(domain: AttributeDomain, spec: Any) -> Interval:
        if spec is None or (isinstance(spec, str) and spec == "*"):
            return domain.full_interval()
        if isinstance(spec, Interval):
            return domain.clip(spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            return domain.encode_interval(spec[0], spec[1])
        if isinstance(spec, list) and len(spec) == 2:
            return domain.encode_interval(spec[0], spec[1])
        encoded = domain.encode(spec)
        return Interval(encoded, encoded)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serializable description of the schema."""
        return {
            "name": self.name,
            "attributes": [a.to_dict() for a in self._attributes],
        }
