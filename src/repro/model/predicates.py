"""Simple predicates.

The paper (Definition 1) models a subscription as a conjunction of *simple
predicates*, each a linear constraint over one attribute.  We support the
comparison operators needed to express the paper's examples and the usual
publish/subscribe languages (Siena-style):

=================  ====================================
Operator           Meaning
=================  ====================================
``EQ``             ``x == value``
``GE`` / ``GT``    ``x >= value`` / ``x > value``
``LE`` / ``LT``    ``x <= value`` / ``x < value``
``BETWEEN``        ``low <= x <= high``
``ANY``            attribute unconstrained (``*``)
``IN``             member of a contiguous label run
=================  ====================================

Predicates are compiled to closed intervals on the attribute's encoded axis
by :meth:`Predicate.to_interval`; conjunctions of predicates on the same
attribute intersect their intervals (see
:meth:`repro.model.subscriptions.Subscription.from_predicates`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.model.attributes import AttributeDomain, CategoricalDomain
from repro.model.errors import ValidationError
from repro.model.intervals import Interval

__all__ = ["Operator", "Predicate"]


class Operator(str, Enum):
    """Comparison operators available in subscription predicates."""

    EQ = "eq"
    GE = "ge"
    GT = "gt"
    LE = "le"
    LT = "lt"
    BETWEEN = "between"
    ANY = "any"
    IN = "in"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Predicate:
    """A constraint on a single attribute.

    Parameters
    ----------
    attribute:
        Attribute name the predicate constrains.
    operator:
        One of :class:`Operator`.
    value:
        Operand.  ``BETWEEN`` expects a ``(low, high)`` pair, ``IN`` a
        sequence of labels, ``ANY`` ignores the operand.
    """

    attribute: str
    operator: Operator
    value: Any = None

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def eq(attribute: str, value: Any) -> "Predicate":
        """``attribute == value``."""
        return Predicate(attribute, Operator.EQ, value)

    @staticmethod
    def ge(attribute: str, value: Any) -> "Predicate":
        """``attribute >= value``."""
        return Predicate(attribute, Operator.GE, value)

    @staticmethod
    def gt(attribute: str, value: Any) -> "Predicate":
        """``attribute > value``."""
        return Predicate(attribute, Operator.GT, value)

    @staticmethod
    def le(attribute: str, value: Any) -> "Predicate":
        """``attribute <= value``."""
        return Predicate(attribute, Operator.LE, value)

    @staticmethod
    def lt(attribute: str, value: Any) -> "Predicate":
        """``attribute < value``."""
        return Predicate(attribute, Operator.LT, value)

    @staticmethod
    def between(attribute: str, low: Any, high: Any) -> "Predicate":
        """``low <= attribute <= high``."""
        return Predicate(attribute, Operator.BETWEEN, (low, high))

    @staticmethod
    def any(attribute: str) -> "Predicate":
        """Attribute is unconstrained (``*``)."""
        return Predicate(attribute, Operator.ANY, None)

    @staticmethod
    def member_of(attribute: str, values: Sequence[Any]) -> "Predicate":
        """Attribute is one of ``values`` (contiguous labels)."""
        return Predicate(attribute, Operator.IN, tuple(values))

    # ------------------------------------------------------------------
    # Compilation to intervals
    # ------------------------------------------------------------------
    def to_interval(self, domain: AttributeDomain) -> Interval:
        """Compile the predicate to a closed interval on ``domain``.

        Strict comparisons on discrete domains shrink by one tick; on
        continuous domains they are treated as their closed counterparts
        (a measure-zero difference).
        """
        if self.operator is Operator.ANY:
            return domain.full_interval()

        if self.operator is Operator.IN:
            if not isinstance(domain, CategoricalDomain):
                raise ValidationError(
                    f"IN predicate on {self.attribute!r} requires a categorical domain"
                )
            return domain.encode_members(list(self.value))

        if self.operator is Operator.BETWEEN:
            low, high = self.value
            return domain.encode_interval(low, high)

        encoded = domain.encode(self.value)
        tick = 1.0 if domain.is_discrete else 0.0
        if self.operator is Operator.EQ:
            interval = Interval(encoded, encoded)
        elif self.operator is Operator.GE:
            interval = Interval(encoded, domain.upper_bound)
        elif self.operator is Operator.GT:
            interval = Interval(encoded + tick, domain.upper_bound)
        elif self.operator is Operator.LE:
            interval = Interval(domain.lower_bound, encoded)
        elif self.operator is Operator.LT:
            interval = Interval(domain.lower_bound, encoded - tick)
        else:  # pragma: no cover - exhaustive enum
            raise ValidationError(f"unsupported operator {self.operator!r}")
        clipped = domain.clip(interval)
        if clipped.is_empty and not interval.is_empty and self.operator in (
            Operator.GT,
            Operator.LT,
        ):
            # A strict comparison pointing outside the domain selects nothing.
            return Interval.empty()
        return clipped

    # ------------------------------------------------------------------
    # Evaluation on concrete values
    # ------------------------------------------------------------------
    def matches(self, value: Any, domain: AttributeDomain) -> bool:
        """Whether the external ``value`` satisfies the predicate."""
        interval = self.to_interval(domain)
        if interval.is_empty:
            return False
        return interval.contains(domain.encode(value))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serializable description of the predicate."""
        value: Any = self.value
        if isinstance(value, tuple):
            value = list(value)
        return {"attribute": self.attribute, "operator": self.operator.value, "value": value}

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Predicate":
        """Inverse of :meth:`to_dict`."""
        operator = Operator(payload["operator"])
        value = payload.get("value")
        if operator in (Operator.BETWEEN, Operator.IN) and isinstance(value, list):
            value = tuple(value)
        return Predicate(payload["attribute"], operator, value)

    def __str__(self) -> str:
        if self.operator is Operator.ANY:
            return f"{self.attribute} = *"
        if self.operator is Operator.BETWEEN:
            low, high = self.value
            return f"{low!r} <= {self.attribute} <= {high!r}"
        if self.operator is Operator.IN:
            return f"{self.attribute} in {list(self.value)!r}"
        symbol = {
            Operator.EQ: "==",
            Operator.GE: ">=",
            Operator.GT: ">",
            Operator.LE: "<=",
            Operator.LT: "<",
        }[self.operator]
        return f"{self.attribute} {symbol} {self.value!r}"
