"""Unit tests for :mod:`repro.model.schema`."""

import numpy as np
import pytest

from repro.model.attributes import Attribute, CategoricalDomain, IntegerDomain
from repro.model.errors import SchemaError
from repro.model.intervals import Interval
from repro.model.schema import Schema


@pytest.fixture
def mixed_schema():
    return Schema(
        [
            Attribute("price", IntegerDomain(0, 1000)),
            Attribute("brand", CategoricalDomain(["X", "Y", "Z"])),
            ("stock", IntegerDomain(0, 50)),
        ],
        name="mixed",
    )


class TestConstruction:
    def test_uniform_integer(self):
        schema = Schema.uniform_integer(4, 0, 99)
        assert schema.m == 4
        assert schema.names == ("x1", "x2", "x3", "x4")
        assert schema.domain(0).upper_bound == 99.0

    def test_uniform_integer_rejects_non_positive_m(self):
        with pytest.raises(SchemaError):
            Schema.uniform_integer(0)

    def test_requires_attributes(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema([("a", IntegerDomain(0, 1)), ("a", IntegerDomain(0, 2))])

    def test_accepts_tuples_and_attributes(self, mixed_schema):
        assert mixed_schema.m == 3
        assert mixed_schema.names == ("price", "brand", "stock")


class TestLookups:
    def test_index_of(self, mixed_schema):
        assert mixed_schema.index_of("brand") == 1

    def test_index_of_unknown_raises(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.index_of("missing")

    def test_attribute_by_index_and_name(self, mixed_schema):
        assert mixed_schema.attribute(0).name == "price"
        assert mixed_schema.attribute("stock").name == "stock"

    def test_attribute_invalid_index(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.attribute(7)

    def test_attribute_invalid_key_type(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.attribute(1.5)

    def test_contains_len_iter(self, mixed_schema):
        assert "price" in mixed_schema
        assert "missing" not in mixed_schema
        assert len(mixed_schema) == 3
        assert [a.name for a in mixed_schema] == ["price", "brand", "stock"]

    def test_equality_and_hash(self):
        a = Schema.uniform_integer(2, 0, 10)
        b = Schema.uniform_integer(2, 0, 10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema.uniform_integer(3, 0, 10)


class TestGeometry:
    def test_full_bounds(self, mixed_schema):
        lows, highs = mixed_schema.full_bounds()
        assert lows.tolist() == [0.0, 0.0, 0.0]
        assert highs.tolist() == [1000.0, 2.0, 50.0]

    def test_full_intervals(self, mixed_schema):
        intervals = mixed_schema.full_intervals()
        assert intervals[0] == Interval(0, 1000)

    def test_measure(self, mixed_schema):
        lows = np.array([0.0, 0.0, 0.0])
        highs = np.array([9.0, 1.0, 4.0])
        assert mixed_schema.measure(lows, highs) == 10 * 2 * 5

    def test_measure_empty(self, mixed_schema):
        lows = np.array([5.0, 0.0, 0.0])
        highs = np.array([4.0, 1.0, 4.0])
        assert mixed_schema.measure(lows, highs) == 0.0


class TestEncoding:
    def test_encode_decode_point(self, mixed_schema):
        point = mixed_schema.encode_point({"price": 100, "brand": "Y", "stock": 5})
        assert point.tolist() == [100.0, 1.0, 5.0]
        decoded = mixed_schema.decode_point(point)
        assert decoded == {"price": 100, "brand": "Y", "stock": 5}

    def test_encode_point_missing_attribute(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.encode_point({"price": 100})

    def test_decode_point_wrong_length(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.decode_point([1.0, 2.0])

    def test_encode_constraints_defaults_to_full_range(self, mixed_schema):
        lows, highs = mixed_schema.encode_constraints({"price": (10, 20)})
        assert lows[0] == 10.0 and highs[0] == 20.0
        assert lows[1] == 0.0 and highs[1] == 2.0

    def test_encode_constraints_single_value(self, mixed_schema):
        lows, highs = mixed_schema.encode_constraints({"brand": "Z"})
        assert lows[1] == highs[1] == 2.0

    def test_encode_constraints_star(self, mixed_schema):
        lows, highs = mixed_schema.encode_constraints({"price": "*"})
        assert lows[0] == 0.0 and highs[0] == 1000.0

    def test_encode_constraints_interval(self, mixed_schema):
        lows, highs = mixed_schema.encode_constraints({"price": Interval(5, 7)})
        assert lows[0] == 5.0 and highs[0] == 7.0

    def test_to_dict(self, mixed_schema):
        payload = mixed_schema.to_dict()
        assert payload["name"] == "mixed"
        assert len(payload["attributes"]) == 3
