"""Unit tests for the evaluation scenarios (:mod:`repro.workloads.scenarios`).

Every scenario generator is validated against the exact oracle: the
instances it produces must have the cover/non-cover property the paper's
evaluation relies on, plus the structural side conditions (no pair-wise
subsumption in the difficult scenarios, intersection with ``s``, …).
"""

import numpy as np
import pytest

from repro.core.exact import exact_group_cover
from repro.core.pairwise import PairwiseCoverageChecker
from repro.model import Schema
from repro.workloads.scenarios import (
    ScenarioInstance,
    ScenarioName,
    extreme_non_cover_scenario,
    generate_scenario,
    no_intersection_scenario,
    non_cover_scenario,
    pairwise_covering_scenario,
    redundant_covering_scenario,
)


@pytest.fixture
def schema():
    return Schema.uniform_integer(4, 0, 10_000)


class TestPairwiseCoveringScenario:
    @pytest.mark.parametrize("seed", range(3))
    def test_properties(self, schema, seed):
        instance = pairwise_covering_scenario(schema, 12, seed)
        assert instance.k == 12
        assert instance.expected_covered is True
        assert exact_group_cover(instance.subscription, instance.candidates)
        assert PairwiseCoverageChecker.check(
            instance.subscription, instance.candidates
        ).covered
        assert len(instance.redundant_ids) == 11

    def test_invalid_k(self, schema):
        with pytest.raises(ValueError):
            pairwise_covering_scenario(schema, 0)


class TestRedundantCoveringScenario:
    @pytest.mark.parametrize("seed", range(3))
    def test_union_covers_but_no_single_candidate(self, schema, seed):
        instance = redundant_covering_scenario(schema, 20, seed)
        assert instance.expected_covered is True
        assert exact_group_cover(instance.subscription, instance.candidates)
        assert not PairwiseCoverageChecker.check(
            instance.subscription, instance.candidates
        ).covered

    def test_redundant_fraction(self, schema):
        instance = redundant_covering_scenario(schema, 30, 1, covering_fraction=0.2)
        assert instance.metadata["covering_count"] == 6
        assert instance.metadata["redundant_count"] == 24
        assert len(instance.redundant_ids) == 24

    def test_all_candidates_intersect_s(self, schema):
        instance = redundant_covering_scenario(schema, 25, 2)
        assert all(
            instance.subscription.intersects(candidate)
            for candidate in instance.candidates
        )

    def test_covering_group_alone_suffices(self, schema):
        instance = redundant_covering_scenario(schema, 20, 3)
        redundant = set(instance.redundant_ids)
        covering_only = [
            candidate
            for candidate in instance.candidates
            if candidate.id not in redundant
        ]
        assert exact_group_cover(instance.subscription, covering_only)

    def test_invalid_k(self, schema):
        with pytest.raises(ValueError):
            redundant_covering_scenario(schema, 1)


class TestNoIntersectionScenario:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_candidate_intersects(self, schema, seed):
        instance = no_intersection_scenario(schema, 15, seed)
        assert instance.expected_covered is False
        assert not any(
            instance.subscription.intersects(candidate)
            for candidate in instance.candidates
        )
        assert not exact_group_cover(instance.subscription, instance.candidates)


class TestNonCoverScenario:
    @pytest.mark.parametrize("seed", range(3))
    def test_gap_left_uncovered(self, schema, seed):
        instance = non_cover_scenario(schema, 15, seed)
        assert instance.expected_covered is False
        assert not exact_group_cover(instance.subscription, instance.candidates)
        assert not PairwiseCoverageChecker.check(
            instance.subscription, instance.candidates
        ).covered
        gap_low, gap_high = instance.metadata["gap"]
        # No candidate reaches into the gap on the first attribute.
        for candidate in instance.candidates:
            interval = candidate.interval(0)
            assert interval.high < gap_low or interval.low > gap_high

    def test_all_candidates_intersect_s(self, schema):
        instance = non_cover_scenario(schema, 15, 4)
        assert all(
            instance.subscription.intersects(candidate)
            for candidate in instance.candidates
        )

    def test_explicit_gap_fraction_recorded(self, schema):
        instance = non_cover_scenario(schema, 10, 5, gap_fraction=0.1)
        assert instance.metadata["gap_fraction"] == 0.1


class TestExtremeNonCoverScenario:
    @pytest.mark.parametrize("gap", [0.005, 0.02, 0.045])
    def test_only_the_gap_is_uncovered(self, schema, gap):
        from repro.core.exact import uncovered_region

        instance = extreme_non_cover_scenario(schema, 20, gap, 7)
        assert not exact_group_cover(instance.subscription, instance.candidates)
        gap_low, gap_high = instance.metadata["gap"]
        region = uncovered_region(instance.subscription, instance.candidates)
        assert region
        for piece in region:
            assert piece.interval(0).low >= gap_low
            assert piece.interval(0).high <= gap_high
            # On all other attributes the uncovered slice spans s entirely.
            for attribute in range(1, schema.m):
                assert piece.interval(attribute) == instance.subscription.interval(
                    attribute
                )

    def test_no_pairwise_subsumption(self, schema):
        instance = extreme_non_cover_scenario(schema, 20, 0.02, 8)
        assert not PairwiseCoverageChecker.check(
            instance.subscription, instance.candidates
        ).covered

    def test_mcs_cannot_discard_the_tiling(self, schema):
        """The tiles conflict with their neighbours, so MCS keeps them all;
        this is what forces RSPC to actually run in Figures 11 and 12."""
        from repro.core.conflict_table import ConflictTable
        from repro.core.mcs import minimized_cover_set

        instance = extreme_non_cover_scenario(schema, 20, 0.02, 9)
        table = ConflictTable(instance.subscription, instance.candidates)
        reduction = minimized_cover_set(table)
        assert reduction.reduced_size >= instance.k // 2

    def test_candidate_count(self, schema):
        instance = extreme_non_cover_scenario(schema, 24, 0.03, 10)
        assert instance.k == 24

    def test_invalid_arguments(self, schema):
        with pytest.raises(ValueError):
            extreme_non_cover_scenario(schema, 2, 0.02)
        with pytest.raises(ValueError):
            extreme_non_cover_scenario(schema, 10, 1.5)


class TestDispatcher:
    def test_generate_by_name(self, schema):
        for name in ScenarioName:
            kwargs = {"gap_fraction": 0.02} if name is ScenarioName.EXTREME_NON_COVER else {}
            instance = generate_scenario(name, schema, 10, 3, **kwargs)
            assert isinstance(instance, ScenarioInstance)
            assert instance.metadata["scenario"] == name.value

    def test_generate_accepts_string_names(self, schema):
        instance = generate_scenario("non_cover", schema, 8, 1)
        assert instance.metadata["scenario"] == "non_cover"

    def test_expected_answer_matches_oracle_for_all_scenarios(self, schema):
        rng = np.random.default_rng(123)
        for name in ScenarioName:
            kwargs = {"gap_fraction": 0.03} if name is ScenarioName.EXTREME_NON_COVER else {}
            for _ in range(3):
                instance = generate_scenario(name, schema, 12, rng, **kwargs)
                assert instance.expected_covered == exact_group_cover(
                    instance.subscription, instance.candidates
                ), name
