"""Tests of the observability subsystem (``repro.obs``).

Three layers are covered:

* the instrument registry and span primitives in isolation;
* the zero-overhead guarantee — with no probe installed, every policy's
  network run reproduces the committed pre-observability traces and
  metric reports byte for byte (``tests/data/pre_obs``);
* causal completeness — in a span-enabled run every delivered
  notification has a full injected→deliver chain and every
  non-delivering publication terminates at an attributable stage.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.broker.metrics import _latency_stats, NetworkMetrics
from repro.broker.network import BrokerNetwork
from repro.obs.instruments import Histogram, InstrumentRegistry
from repro.obs.probes import ObsProbe, active, disable, enabled, install
from repro.obs.report import chain_status, render_report, summarize
from repro.obs.spans import SpanRecorder, read_spans, write_spans
from repro.scenarios import catalog  # noqa: F401 - populates the registry
from repro.scenarios.cli import main as scenarios_main
from repro.scenarios.events import compile_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.trace import write_trace

PRE_OBS = Path(__file__).parent / "data" / "pre_obs"

#: the committed pre-observability goldens: every reduction strategy on
#: t0-smoke plus the churn-heavy t1 tier on the default policy
GOLDENS = [
    ("t0-smoke", "none"),
    ("t0-smoke", "pairwise"),
    ("t0-smoke", "group"),
    ("t0-smoke", "merging"),
    ("t0-smoke", "hybrid"),
    ("t1-churn", "group"),
]

#: keys stripped from golden reports (wall-clock dependent)
VOLATILE = {"wall_time", "events_per_second"}


def _strip(obj):
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items() if k not in VOLATILE}
    if isinstance(obj, list):
        return [_strip(v) for v in obj]
    return obj


def _compiled(scenario: str, policy: str):
    spec = dataclasses.replace(get_scenario(scenario), policy=policy)
    return spec, compile_scenario(spec, 7)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_get_or_create_and_labels(self):
        registry = InstrumentRegistry()
        a = registry.counter("hops", link="B1->B2")
        b = registry.counter("hops", link="B1->B2")
        c = registry.counter("hops", link="B2->B3")
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3
        assert a.key == "hops{link=B1->B2}"
        assert len(registry) == 2

    def test_kind_clash_raises(self):
        registry = InstrumentRegistry()
        registry.counter("depth")
        with pytest.raises(TypeError):
            registry.gauge("depth")

    def test_gauge_update_max(self):
        gauge = InstrumentRegistry().gauge("queue")
        gauge.update_max(5)
        gauge.update_max(3)
        assert gauge.value == 5
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_percentiles_and_empty(self):
        histogram = Histogram("lat")
        assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        stats = histogram.summary()
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["max"] == 4.0

    def test_snapshot_diff_semantics(self):
        registry = InstrumentRegistry()
        counter = registry.counter("msgs")
        gauge = registry.gauge("depth")
        histogram = registry.histogram("lat")
        counter.inc(5)
        gauge.set(7)
        histogram.observe(1.0)
        before = registry.snapshot()
        counter.inc(3)
        gauge.set(2)
        histogram.observe(1.0)
        delta = registry.diff(before)
        assert delta["msgs"] == 3          # counters subtract
        assert delta["depth"] == 2         # gauges report current level
        assert delta["lat"] == 1           # histograms diff sample counts


# ----------------------------------------------------------------------
# Probe gating / stage timers
# ----------------------------------------------------------------------
class TestProbes:
    def test_disabled_by_default(self):
        assert active() is None

    def test_install_and_disable(self):
        probe = install()
        try:
            assert active() is probe
        finally:
            disable()
        assert active() is None

    def test_enabled_restores_previous(self):
        outer = ObsProbe()
        with enabled(outer):
            with enabled() as inner:
                assert active() is inner
            assert active() is outer
        assert active() is None

    def test_stage_self_time_subtracts_children(self):
        probe = ObsProbe()
        probe.stage_push("outer")
        probe.stage_push("inner")
        probe.stage_pop()
        probe.stage_pop()
        totals = dict(
            (stage, seconds) for stage, seconds, _ in probe.stage_totals()
        )
        assert set(totals) == {"outer", "inner"}
        # outer's self-time excludes inner's duration, so the two are
        # independent non-negative quantities
        assert totals["outer"] >= 0.0 and totals["inner"] >= 0.0
        probe.flush_stages_to_registry()
        assert probe.registry.get("obs.stage_calls", stage="inner").value == 1

    def test_metrics_share_probe_registry(self):
        probe = ObsProbe()
        with enabled(probe):
            network = BrokerNetwork([("B1", "B2")])
        network.metrics.notifications += 3
        assert (
            probe.registry.get("network.notifications").value == 3
        )


# ----------------------------------------------------------------------
# Latency-stats satellite
# ----------------------------------------------------------------------
class TestLatencyStats:
    def test_empty_input_yields_stable_zero_dict(self):
        stats = _latency_stats([])
        assert stats == {
            "delivery_latency_p50": 0.0,
            "delivery_latency_p95": 0.0,
            "delivery_latency_p99": 0.0,
            "delivery_latency_mean": 0.0,
            "delivery_latency_max": 0.0,
        }
        # a fresh dict each call — mutating one must not leak
        stats["delivery_latency_p50"] = 9.0
        assert _latency_stats([])["delivery_latency_p50"] == 0.0

    def test_non_empty_unchanged(self):
        stats = _latency_stats([1.0, 3.0])
        assert stats["delivery_latency_mean"] == pytest.approx(2.0)
        assert stats["delivery_latency_max"] == 3.0

    def test_registry_backed_metrics_preserve_list_semantics(self):
        metrics = NetworkMetrics(track_latency=True)
        assert metrics.delivery_latencies == []
        metrics.delivery_latencies.extend([0.5, 1.5])
        assert metrics.delivery_latencies[1:] == [1.5]
        assert metrics.registry.get("network.delivery_latency").count == 2


# ----------------------------------------------------------------------
# Differential: obs-disabled runs are byte-identical to pre-obs goldens
# ----------------------------------------------------------------------
class TestPreObsByteIdentity:
    @pytest.mark.parametrize("scenario,policy", GOLDENS)
    def test_trace_bytes_identical(self, tmp_path, scenario, policy):
        assert active() is None, "another test leaked an installed probe"
        _, compiled = _compiled(scenario, policy)
        path = tmp_path / "trace.jsonl"
        write_trace(path, compiled, backend="network")
        golden = (PRE_OBS / f"{scenario}-{policy}.jsonl").read_bytes()
        assert path.read_bytes() == golden

    @pytest.mark.parametrize("scenario,policy", GOLDENS)
    def test_report_identical(self, scenario, policy):
        assert active() is None, "another test leaked an installed probe"
        spec, compiled = _compiled(scenario, policy)
        report = ScenarioRunner(spec, seed=7, backend="network").run(compiled)
        golden = json.loads(
            (PRE_OBS / f"{scenario}-{policy}.report.json").read_text()
        )
        produced = _strip(json.loads(json.dumps(report.to_dict())))
        assert produced == _strip(golden)

    def test_observed_run_reports_same_metrics(self):
        # Observability must be purely observational: the same scenario
        # with a span-recording probe attached reports identical metrics
        # and trace hash.
        spec, compiled = _compiled("t0-smoke", "group")
        baseline = ScenarioRunner(spec, seed=7, backend="network").run(compiled)
        probe = ObsProbe(spans=SpanRecorder())
        observed = ScenarioRunner(
            spec, seed=7, backend="network", obs=probe
        ).run(compiled)
        assert observed.trace_hash == baseline.trace_hash
        assert observed.totals == baseline.totals
        assert [p.metrics for p in observed.phases] == [
            p.metrics for p in baseline.phases
        ]
        assert len(probe.spans.spans) > 0


# ----------------------------------------------------------------------
# Span completeness
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def churn_spans():
    """One span-enabled t1-churn run shared by the completeness tests."""
    spec, compiled = _compiled("t1-churn", "group")
    recorder = SpanRecorder()
    probe = ObsProbe(spans=recorder)
    report = ScenarioRunner(spec, seed=7, backend="network", obs=probe).run(
        compiled
    )
    return report, recorder


class TestSpanCompleteness:
    def test_every_delivery_has_full_causal_chain(self, churn_spans):
        report, recorder = churn_spans
        chains = recorder.traces()
        deliver_count = 0
        for spans in chains.values():
            stages = [span.stage for span in spans]
            for span in spans:
                if span.stage != "deliver":
                    continue
                deliver_count += 1
                assert stages[0] == "injected"
                assert "match" in stages and "route-lookup" in stages
        # every notification the metrics counted is present as a leaf
        assert deliver_count == report.totals["notifications"]

    def test_publication_chains_all_attributable(self, churn_spans):
        _, recorder = churn_spans
        statuses = {
            trace_id: chain_status(spans)
            for trace_id, spans in recorder.traces().items()
            if spans and spans[0].kind == "publication"
        }
        assert statuses, "no publication traces recorded"
        dangling = [t for t, s in statuses.items() if s not in ("complete", "terminated")]
        assert dangling == []

    def test_trace_ids_deterministic(self):
        spec, compiled = _compiled("t0-smoke", "group")
        recorders = []
        for _ in range(2):
            recorder = SpanRecorder()
            ScenarioRunner(
                spec, seed=7, backend="network", obs=ObsProbe(spans=recorder)
            ).run(compiled)
            recorders.append(recorder)
        first, second = recorders
        assert [s.to_dict() for s in first.spans] == [
            s.to_dict() for s in second.spans
        ]


# ----------------------------------------------------------------------
# JSONL round-trip + report rendering
# ----------------------------------------------------------------------
class TestSpanFiles:
    def test_roundtrip(self, tmp_path, churn_spans):
        _, recorder = churn_spans
        path = tmp_path / "spans.jsonl"
        written = write_spans(path, recorder)
        loaded = read_spans(path)
        assert written == len(recorder.spans)
        assert [s.to_dict() for s in loaded.spans] == [
            s.to_dict() for s in recorder.spans
        ]
        assert loaded.queue_samples == recorder.queue_samples

    def test_report_renders(self, churn_spans):
        _, recorder = churn_spans
        text = render_report(recorder)
        assert "Per-stage virtual time" in text
        assert "hop-count distribution" in text
        summary = summarize(recorder)
        assert summary["spans"] == len(recorder.spans)
        assert summary["chain_status"].get("dangling", 0) == 0

    def test_read_rejects_non_span_file(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ValueError):
            read_spans(path)


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCli:
    def test_run_obs_spans_and_metrics_json(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.json"
        code = scenarios_main(
            [
                "run",
                "t0-smoke",
                "--seed",
                "7",
                "--obs-spans",
                str(spans),
                "--metrics-json",
                str(metrics),
            ]
        )
        assert code == 0
        assert spans.exists() and metrics.exists()
        loaded = read_spans(spans)
        assert len(loaded.spans) > 0
        payload = json.loads(metrics.read_text())
        assert payload["scenario"] == "t0-smoke"
        assert payload["totals"]["notifications"] >= 0
        assert [phase["name"] for phase in payload["phases"]]
        capsys.readouterr()

    def test_obs_report_cli(self, tmp_path, capsys, churn_spans):
        from repro.obs.cli import main as obs_main

        _, recorder = churn_spans
        path = tmp_path / "spans.jsonl"
        write_spans(path, recorder)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "traces" in out
        assert obs_main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"] == len(recorder.spans)

    def test_obs_report_missing_file(self, capsys):
        from repro.obs.cli import main as obs_main

        assert obs_main(["report", "/nonexistent/spans.jsonl"]) == 2
        capsys.readouterr()
