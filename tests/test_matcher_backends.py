"""Tests for the pluggable matcher backends and their threading.

Covers the backend protocol itself, the incremental (tombstoned)
vectorised indexes, the engine's backend delegation — including the
property-style differential sweep asserting that ``linear``, ``counting``
and ``selectivity`` agree on every :class:`MatchResult` under churn — the
incremental (no-rebuild) cover-forest unsubscription path, and the
backend selection threaded through the broker and scenario layers.
"""

import dataclasses

import numpy as np
import pytest

from repro.broker.network import BrokerNetwork
from repro.broker.routing import RouteEntry, RoutingTable, SourceKind
from repro.core.store import CoveringPolicyName
from repro.core.subsumption import SubsumptionChecker
from repro.matching.backends import BACKEND_NAMES, make_backend
from repro.matching.counting_index import CountingIndex
from repro.matching.engine import MatchingEngine
from repro.matching.selectivity_index import SelectivityIndex
from repro.model import Publication, Schema, Subscription
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    make_workload,
    read_trace,
    write_trace,
)
from repro.scenarios.cli import main as scenarios_main
from repro.workloads.generators import random_publication, random_subscription


@pytest.fixture
def schema():
    return Schema.uniform_integer(3, 0, 200)


def box(schema, sid, x1, x2, subscriber=None):
    return Subscription.from_constraints(
        schema, {"x1": x1, "x2": x2}, subscription_id=sid, subscriber=subscriber
    )


# ----------------------------------------------------------------------
# Backend protocol
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestBackendProtocol:
    def test_add_remove_contains(self, name, schema):
        backend = make_backend(name)
        assert backend.name == name
        first = box(schema, "a", (0, 50), (0, 50))
        backend.add(first)
        backend.add(box(schema, "b", (60, 90), (60, 90)))
        assert len(backend) == 2
        assert "a" in backend and "missing" not in backend
        with pytest.raises(ValueError):
            backend.add(first)
        assert backend.remove("a")
        assert not backend.remove("a")
        assert len(backend) == 1

    def test_match_candidates_and_tests(self, name, schema):
        backend = make_backend(name)
        backend.add(box(schema, "a", (0, 50), (0, 50)))
        backend.add(box(schema, "b", (40, 90), (0, 100)))
        backend.add(box(schema, "c", (150, 180), (150, 180)))
        publication = Publication.from_values(schema, {"x1": 45, "x2": 20, "x3": 0})
        matched, tests = backend.match_candidates(publication)
        # Insertion order, whatever the backend.
        assert [s.id for s in matched] == ["a", "b"]
        assert tests == 3

    def test_empty_backend(self, name, schema):
        backend = make_backend(name)
        publication = Publication.from_values(schema, {"x1": 1, "x2": 1, "x3": 1})
        assert backend.match_candidates(publication) == ([], 0)
        assert backend.match_batch([publication]) == [([], 0)]

    def test_match_batch_equals_sequential(self, name, schema):
        rng = np.random.default_rng(5)
        backend = make_backend(name)
        for index in range(40):
            backend.add(
                random_subscription(schema, rng).replace(
                    subscription_id=f"s{index}"
                )
            )
        publications = [random_publication(schema, rng) for _ in range(25)]
        sequential = [backend.match_candidates(p) for p in publications]
        batch = backend.match_batch(publications)
        for (seq_subs, seq_tests), (batch_subs, batch_tests) in zip(
            sequential, batch
        ):
            assert [s.id for s in seq_subs] == [s.id for s in batch_subs]
            assert seq_tests == batch_tests

    def test_unknown_backend_rejected(self, name, schema):
        with pytest.raises(ValueError):
            make_backend(name + "-bogus")


# ----------------------------------------------------------------------
# Incremental vectorised indexes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("index_class", [CountingIndex, SelectivityIndex])
class TestIncrementalIndexes:
    def test_tombstones_then_compaction(self, index_class, schema):
        rng = np.random.default_rng(2)
        index = index_class(schema)
        subscriptions = [
            random_subscription(schema, rng).replace(subscription_id=f"s{i}")
            for i in range(64)
        ]
        index.add_all(subscriptions)
        for i in range(0, 64, 2):
            assert index.remove(f"s{i}")
        assert len(index) == 32
        # Tombstones were compacted away once they rivalled the live rows.
        assert index._dead == 0
        assert index._size == 32
        survivors = [s for i, s in enumerate(subscriptions) if i % 2]
        for _ in range(30):
            publication = random_publication(schema, rng)
            expected = [s.id for s in survivors if s.matches(publication)]
            assert [s.id for s in index.match(publication)] == expected

    def test_interleaved_add_remove_matches_bruteforce(self, index_class, schema):
        rng = np.random.default_rng(9)
        index = index_class(schema)
        live = {}
        counter = 0
        for _ in range(300):
            roll = rng.random()
            if roll < 0.55 or not live:
                sid = f"s{counter}"
                counter += 1
                subscription = random_subscription(schema, rng).replace(
                    subscription_id=sid
                )
                index.add(subscription)
                live[sid] = subscription
            elif roll < 0.8:
                victim = list(live)[int(rng.integers(0, len(live)))]
                assert index.remove(victim)
                del live[victim]
            else:
                publication = random_publication(schema, rng)
                expected = {
                    sid for sid, s in live.items() if s.matches(publication)
                }
                assert {s.id for s in index.match(publication)} == expected
        assert len(index) == len(live)

    def test_match_batch_chunked(self, index_class, schema, monkeypatch):
        # Force tiny chunks so the chunking loop itself is exercised.
        monkeypatch.setattr(
            "repro.matching.counting_index._BATCH_CELL_BUDGET", 1
        )
        rng = np.random.default_rng(4)
        index = index_class(schema)
        for i in range(20):
            index.add(
                random_subscription(schema, rng).replace(subscription_id=f"s{i}")
            )
        publications = [random_publication(schema, rng) for _ in range(10)]
        batch = index.match_batch(publications)
        for publication, matched in zip(publications, batch):
            assert [s.id for s in matched] == [
                s.id for s in index.match(publication)
            ]


class TestSelectivityIncrementalOrder:
    def test_order_tracks_removals(self, schema):
        index = SelectivityIndex(schema)
        index.add(box(schema, "narrow-x2", "*", (10, 12)))
        index.add(box(schema, "narrow-x1", (10, 12), "*"))
        index.add(box(schema, "narrow-x2-too", "*", (40, 42)))
        assert index.attribute_order[0] == "x2"
        index.remove("narrow-x2")
        index.remove("narrow-x2-too")
        assert index.attribute_order[0] == "x1"


# ----------------------------------------------------------------------
# Engine differential sweep (satellite: linear / counting / selectivity
# must agree on MatchResults under churny randomised workloads)
# ----------------------------------------------------------------------
def _fresh_engines(policy, seed):
    return {
        name: MatchingEngine(
            policy=policy,
            checker=SubsumptionChecker(delta=1e-9, max_iterations=2000, rng=seed),
            backend=name,
        )
        for name in BACKEND_NAMES
    }


@pytest.mark.parametrize("workload_name", ["bike-rental", "grid"])
@pytest.mark.parametrize(
    "policy", [CoveringPolicyName.PAIRWISE, CoveringPolicyName.GROUP]
)
@pytest.mark.parametrize("seed", [0, 1])
def test_backends_agree_under_churn(workload_name, policy, seed):
    """Property-style sweep: all backends produce identical MatchResults."""
    rng = np.random.default_rng(seed)
    workload = make_workload(workload_name, {}, np.random.default_rng(seed + 100))
    engines = _fresh_engines(policy, seed)
    live = []
    counter = 0
    for _ in range(220):
        roll = rng.random()
        if roll < 0.45 or not live:
            counter += 1
            subscription = workload.subscription(
                subscriber=f"client-{counter % 9}"
            ).replace(subscription_id=f"s{counter:04d}")
            for engine in engines.values():
                engine.subscribe(subscription)
            live.append(subscription.id)
        elif roll < 0.65:
            victim = live.pop(int(rng.integers(0, len(live))))
            for engine in engines.values():
                engine.unsubscribe(victim)
        else:
            publication = workload.publication()
            results = {
                name: engine.match(publication)
                for name, engine in engines.items()
            }
            reference = results["linear"]
            for name, result in results.items():
                assert set(result.matched_ids) == set(reference.matched_ids), (
                    name,
                    publication.id,
                )
                assert set(result.subscribers) == set(reference.subscribers), name
            # The two vectorised backends also agree on the test counters
            # (both charge one test per candidate row consulted).
            counting, selectivity = results["counting"], results["selectivity"]
            assert counting.active_tests == selectivity.active_tests
            assert counting.covered_tests == selectivity.covered_tests
    sizes = {name: len(engine) for name, engine in engines.items()}
    assert len(set(sizes.values())) == 1


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_duplicate_subscribe_rejected_before_mutation(backend, schema):
    """A duplicate id must fail loudly and leave no state behind."""
    engine = MatchingEngine(policy=CoveringPolicyName.PAIRWISE, backend=backend)
    subscription = box(schema, "dup", (0, 50), (0, 50), subscriber="amy")
    engine.subscribe(subscription)
    with pytest.raises(ValueError):
        engine.subscribe(subscription)
    assert len(engine) == 1
    engine.unsubscribe("dup")
    assert len(engine) == 0
    publication = Publication.from_values(schema, {"x1": 10, "x2": 10, "x3": 0})
    assert engine.match(publication).matched_ids == ()


def test_engine_match_batch_equals_sequential(schema):
    rng = np.random.default_rng(3)
    subscriptions = [
        random_subscription(schema, rng).replace(
            subscription_id=f"s{i}", subscriber=f"c{i % 5}"
        )
        for i in range(60)
    ]
    publications = [random_publication(schema, rng) for _ in range(40)]
    for backend in BACKEND_NAMES:
        sequential = MatchingEngine(
            policy=CoveringPolicyName.PAIRWISE, backend=backend
        )
        batched = MatchingEngine(
            policy=CoveringPolicyName.PAIRWISE, backend=backend
        )
        sequential.subscribe_all(subscriptions)
        batched.subscribe_all(subscriptions)
        expected = [sequential.match(p) for p in publications]
        actual = batched.match_batch(publications)
        for one, other in zip(expected, actual):
            assert one.matched_ids == other.matched_ids
            assert one.subscribers == other.subscribers
            assert one.active_tests == other.active_tests
            assert one.covered_tests == other.covered_tests
        assert sequential.stats == batched.stats


# ----------------------------------------------------------------------
# Incremental cover-forest unsubscription (satellite: no full rebuild)
# ----------------------------------------------------------------------
class TestIncrementalForestUnsubscribe:
    def test_no_rebuild_method_and_same_forest_object(self, schema):
        engine = MatchingEngine(policy=CoveringPolicyName.PAIRWISE)
        # The seed's rebuild-on-unsubscribe entry point is gone for good.
        assert not hasattr(engine, "_rebuild_forest")
        engine.subscribe(box(schema, "small", (10, 20), (10, 20)))
        engine.subscribe(box(schema, "mid", (5, 40), (5, 40)))
        engine.subscribe(box(schema, "big", (0, 50), (0, 50)))
        forest = engine._forest
        assert engine._forest.depth("small") == 2
        engine.unsubscribe("mid")
        assert engine._forest is forest
        # The chain was spliced, not rebuilt: small now hangs off big.
        assert engine._forest.depth("small") == 1

    def test_unsubscribe_keeps_matching_lossless(self, schema):
        """Random churn: the incrementally maintained engine never diverges
        from brute force over the live subscriptions (pairwise policy is
        deterministic, hence lossless)."""
        rng = np.random.default_rng(12)
        engine = MatchingEngine(policy=CoveringPolicyName.PAIRWISE)
        forest = engine._forest
        live = {}
        for index in range(150):
            subscription = random_subscription(
                schema, rng, width_fraction=(0.2, 0.7)
            ).replace(subscription_id=f"s{index}", subscriber=f"c{index % 11}")
            engine.subscribe(subscription)
            live[subscription.id] = subscription
        order = list(live)
        rng.shuffle(order)
        for victim in order[:120]:
            engine.unsubscribe(victim)
            del live[victim]
            if len(live) % 10 == 0:
                for _ in range(5):
                    publication = random_publication(schema, rng)
                    expected = {
                        s.subscriber
                        for s in live.values()
                        if s.matches(publication)
                    }
                    assert set(engine.match(publication).subscribers) == expected
        assert engine._forest is forest
        assert len(engine) == len(live)

    def test_group_policy_churn_stays_consistent(self, schema):
        """Group-covered buckets survive incremental removal of coverers."""
        rng = np.random.default_rng(21)
        engine = MatchingEngine(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-9, max_iterations=2000, rng=0),
        )
        oracle = MatchingEngine(
            policy=CoveringPolicyName.GROUP,
            checker=SubsumptionChecker(delta=1e-9, max_iterations=2000, rng=0),
            backend="counting",
        )
        live = []
        for index in range(120):
            subscription = random_subscription(
                schema, rng, width_fraction=(0.3, 0.8)
            ).replace(subscription_id=f"s{index}", subscriber=f"c{index % 7}")
            engine.subscribe(subscription)
            oracle.subscribe(subscription)
            live.append(subscription.id)
            if index % 3 == 2:
                victim = live.pop(int(rng.integers(0, len(live))))
                engine.unsubscribe(victim)
                oracle.unsubscribe(victim)
            if index % 10 == 9:
                publication = random_publication(schema, rng)
                assert set(engine.match(publication).matched_ids) == set(
                    oracle.match(publication).matched_ids
                )


# ----------------------------------------------------------------------
# Broker-layer threading
# ----------------------------------------------------------------------
class TestRoutingTableBackends:
    def test_matching_entries_identical_across_backends(self, schema):
        rng = np.random.default_rng(8)
        tables = {
            name: RoutingTable(matcher_backend=name) for name in BACKEND_NAMES
        }
        for index in range(50):
            subscription = random_subscription(schema, rng).replace(
                subscription_id=f"s{index}"
            )
            entry = RouteEntry(
                subscription=subscription,
                source_kind=SourceKind.LOCAL,
                source_id=f"c{index}",
                origin="B1",
            )
            for table in tables.values():
                assert table.add(entry)
        for index in range(0, 50, 3):
            for table in tables.values():
                table.remove(f"s{index}")
        for _ in range(30):
            publication = random_publication(schema, rng)
            reference = [
                e.subscription.id
                for e in tables["linear"].matching_entries(publication)
            ]
            for name, table in tables.items():
                assert [
                    e.subscription.id for e in table.matching_entries(publication)
                ] == reference, name

    def test_network_metrics_identical_across_backends(self):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=3)
        reports = {
            name: ScenarioRunner(backend="network", engine_backend=name).run(
                compiled
            )
            for name in BACKEND_NAMES
        }
        reference = reports["linear"]
        for name, report in reports.items():
            assert report.phase_metrics() == reference.phase_metrics(), name
            assert report.totals == reference.totals, name
            assert report.engine_backend == name


# ----------------------------------------------------------------------
# Scenario-layer threading, traces and replay
# ----------------------------------------------------------------------
class TestScenarioThreading:
    def test_spec_round_trip_preserves_engine_backend(self):
        spec = dataclasses.replace(
            get_scenario("t0-smoke"), engine_backend="counting"
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.engine_backend == "counting"
        assert clone.to_dict() == spec.to_dict()

    def test_default_backend_keeps_pre_seam_serialization(self):
        """Specs (and therefore trace hashes) predating the backend seam
        must be unaffected: the default backend is omitted from to_dict."""
        payload = get_scenario("t0-smoke").to_dict()
        assert "engine_backend" not in payload
        assert ScenarioSpec.from_dict(payload).engine_backend == "linear"

    def test_spec_rejects_unknown_engine_backend(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                get_scenario("t0-smoke"), engine_backend="quantum"
            )

    def test_trace_records_engine_backend_and_replays_exactly(self, tmp_path):
        spec = dataclasses.replace(
            get_scenario("t0-smoke"), engine_backend="selectivity"
        )
        compiled = compile_scenario(spec, seed=11)
        path = tmp_path / "run.jsonl"
        write_trace(path, compiled, backend="engine")
        loaded = read_trace(path)
        assert loaded.recorded_engine_backend == "selectivity"
        assert loaded.spec.engine_backend == "selectivity"
        original = ScenarioRunner(backend="engine").run(compiled)
        replayed = ScenarioRunner(backend="engine").run(loaded)
        assert original.engine_backend == "selectivity"
        assert replayed.engine_backend == "selectivity"
        assert replayed.phase_metrics() == original.phase_metrics()
        assert replayed.totals == original.totals
        assert replayed.trace_hash == original.trace_hash

    def test_engine_backend_changes_trace_hash(self):
        base = compile_scenario(get_scenario("t0-smoke"), seed=11)
        variant = compile_scenario(
            dataclasses.replace(
                get_scenario("t0-smoke"), engine_backend="counting"
            ),
            seed=11,
        )
        assert base.trace_hash() != variant.trace_hash()

    def test_runner_override_beats_spec(self):
        compiled = compile_scenario(get_scenario("t0-smoke"), seed=2)
        report = ScenarioRunner(
            backend="engine", engine_backend="counting"
        ).run(compiled)
        assert report.engine_backend == "counting"
        assert report.to_dict()["engine_backend"] == "counting"

    def test_cli_engine_backend_run_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        assert (
            scenarios_main(
                [
                    "run",
                    "t0-smoke",
                    "--seed",
                    "7",
                    "--engine-backend",
                    "selectivity",
                    "--trace",
                    str(trace),
                    "--json",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert '"engine_backend": "selectivity"' in captured.out
        assert scenarios_main(["replay", str(trace), "--json"]) == 0
        replay_out = capsys.readouterr().out
        assert '"engine_backend": "selectivity"' in replay_out
